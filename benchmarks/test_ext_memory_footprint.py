"""Extension benchmark: memory footprints of the restore policies
(paper §7.3).

The paper reports FaaSnap's footprint (anonymous memory + page cache)
averages ~6% more than stock Firecracker snapshots across the §6.2
experiments, because the prefetched working set would mostly have been
demand-loaded anyway. This regenerates that comparison.
"""

from repro.core import FaaSnapPlatform, Policy
from repro.metrics import geometric_mean, render_table
from repro.workloads import get_profile
from repro.workloads.base import INPUT_A

FUNCTIONS = ("hello-world", "json", "image", "chameleon")
POLICIES = (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP, Policy.CACHED)


def test_memory_footprints(bench_once):
    def run():
        platform = FaaSnapPlatform()
        footprints = {}
        for name in FUNCTIONS:
            handle = platform.register_function(get_profile(name))
            test_input = get_profile(name).input_b()
            for policy in POLICIES:
                result = platform.invoke(
                    handle, test_input, policy, record_input=INPUT_A
                )
                footprints[(name, policy)] = result.memory_footprint_mb
        return footprints

    footprints = bench_once(run)
    rows = []
    for name in FUNCTIONS:
        rows.append(
            [name] + [footprints[(name, policy)] for policy in POLICIES]
        )
    print()
    print(
        render_table(
            ["function"] + [p.value + "_MB" for p in POLICIES],
            rows,
            title="Memory footprint after one invocation (anon + page cache, 7.3)",
        )
    )

    ratios = []
    for name in FUNCTIONS:
        firecracker = footprints[(name, Policy.FIRECRACKER)]
        faasnap = footprints[(name, Policy.FAASNAP)]
        ratios.append(faasnap / firecracker)
        # FaaSnap's prefetching does not blow up memory: within 35% of
        # Firecracker for every function (paper: ~6% average, and
        # sometimes *less* than Firecracker).
        assert faasnap < 1.35 * firecracker, name
    # ... and close to parity on average.
    assert 0.75 < geometric_mean(ratios) < 1.25

    # Cached deliberately wastes memory (whole snapshot resident): it
    # is an upper bound for every function.
    for name in FUNCTIONS:
        cached = footprints[(name, Policy.CACHED)]
        for policy in (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP):
            assert footprints[(name, policy)] <= cached * 1.05, (name, policy)
