"""Extension benchmark: sensitivity of FaaSnap's design constants.

DESIGN.md calls out three empirically-chosen constants from the
paper: the working-set group size N = 1024 (§4.3), the 32-page
region-merge threshold (§4.6), and the kernel readahead window
FaaSnap's host page recording piggybacks on (§4.4). These sweeps
verify the paper's choices are robust operating points on our
substrate, not knife-edge tunings.
"""

import dataclasses

from repro.core import FaaSnapPlatform, Policy
from repro.core.restore import PlatformConfig
from repro.metrics import render_table
from repro.workloads import get_profile
from repro.workloads.base import INPUT_A

FUNCTION = "image"


def measure(config: PlatformConfig) -> dict:
    platform = FaaSnapPlatform(config)
    profile = get_profile(FUNCTION)
    handle = platform.register_function(profile)
    result = platform.invoke(
        handle, profile.input_b(), Policy.FAASNAP, record_input=INPUT_A
    )
    artifacts = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    return {
        "total_ms": result.total_ms,
        "regions": artifacts.loading_set.region_count,
        "loading_mb": artifacts.loading_set.size_mb,
    }


def test_group_size_sweep(bench_once):
    sizes = (128, 1024, 8192)

    def run():
        return {
            size: measure(
                dataclasses.replace(PlatformConfig(), group_pages=size)
            )
            for size in sizes
        }

    results = bench_once(run)
    print()
    print(
        render_table(
            ["group_pages", "total_ms"],
            [[size, results[size]["total_ms"]] for size in sizes],
            title="Working-set group size N (paper picks 1024, 4.3)",
        )
    )
    best = min(r["total_ms"] for r in results.values())
    assert results[1024]["total_ms"] <= best * 1.15


def test_merge_gap_sweep(bench_once):
    gaps = (0, 8, 32, 128)

    def run():
        return {
            gap: measure(
                dataclasses.replace(PlatformConfig(), loading_merge_gap=gap)
            )
            for gap in gaps
        }

    results = bench_once(run)
    print()
    print(
        render_table(
            ["merge_gap", "total_ms", "regions", "loading_MB"],
            [
                [
                    gap,
                    results[gap]["total_ms"],
                    results[gap]["regions"],
                    results[gap]["loading_mb"],
                ]
                for gap in gaps
            ],
            title="Loading-set region merge gap (paper picks 32, 4.6)",
        )
    )
    # Larger gaps monotonically reduce regions and grow the file.
    for small, large in zip(gaps, gaps[1:]):
        assert results[large]["regions"] <= results[small]["regions"]
        assert results[large]["loading_mb"] >= results[small]["loading_mb"]
    # The paper's 32 gets (nearly) all of the region reduction...
    assert results[32]["regions"] < 0.5 * results[0]["regions"]
    # ... without the data blow-up an aggressive gap causes.
    assert results[32]["loading_mb"] < 1.6 * results[0]["loading_mb"]
    # End-to-end, 32 is within 15% of the best point in the sweep.
    best = min(r["total_ms"] for r in results.values())
    assert results[32]["total_ms"] <= best * 1.15


def test_readahead_window_sweep(bench_once):
    windows = (2, 8, 32)

    def run():
        out = {}
        for window in windows:
            host = PlatformConfig().host.with_overrides(
                readahead_pages=window,
                readahead_max_pages=max(64, window),
            )
            out[window] = measure(
                dataclasses.replace(PlatformConfig(), host=host)
            )
        return out

    results = bench_once(run)
    print()
    print(
        render_table(
            ["readahead_pages", "total_ms"],
            [[w, results[w]["total_ms"]] for w in windows],
            title="Host readahead base window (FaaSnap on image, A->B)",
        )
    )
    # FaaSnap stays effective across the kernel's plausible window
    # range: spread between best and worst < 40%.
    totals = [r["total_ms"] for r in results.values()]
    assert max(totals) < 1.4 * min(totals)
