"""Benchmark: regenerate Figure 1 (invocation time breakdown)."""

from benchmarks.conftest import full_sweeps
from repro.core.policies import Policy
from repro.experiments import fig1_breakdown


def test_fig1_breakdown(bench_once):
    functions = (
        fig1_breakdown.FUNCTIONS
        if full_sweeps()
        else ["hello-world", "image", "mmap"]
    )
    result = bench_once(fig1_breakdown.run, functions=functions)
    print()
    print(fig1_breakdown.format_table(result))

    grid = result.grid
    for function in functions:
        totals = {
            policy: grid.get(function, policy).total_ms
            for policy in fig1_breakdown.POLICIES
        }
        # Warm is always fastest, stock Firecracker always slowest.
        assert totals[Policy.WARM] == min(totals.values()), function
        assert totals[Policy.FIRECRACKER] == max(totals.values()), function

    # hello-world: warm finishes in single-digit ms (paper: 4 ms) and
    # Firecracker takes >100 ms (paper: ~229 ms).
    hello_warm = grid.get("hello-world", Policy.WARM).total_ms
    hello_fc = grid.get("hello-world", Policy.FIRECRACKER).total_ms
    assert hello_warm < 10
    assert hello_fc > 100

    # REAP's setup dominates for large working sets (read-list/mmap).
    if "mmap" in functions:
        reap = grid.get("mmap", Policy.REAP)
        assert reap.setup_ms > 5 * grid.get("mmap", Policy.FIRECRACKER).setup_ms

    # image-diff (changed input) hurts REAP relative to same-input image.
    if "image" in functions:
        same = grid.get("image", Policy.REAP, content_id=1).total_ms
        diff = [
            c
            for c in grid.cells
            if c.function == "image-diff" and c.policy is Policy.REAP
        ][0].total_ms
        assert diff > 1.3 * same
