"""Extension benchmark: tiered snapshot storage (paper §7.2).

The paper's future-work proposal: keep the small loading-set file on
the local SSD and the large memory file on remote storage. This
benchmark quantifies both sides of that trade on the simulated
substrate:

* **latency** — concurrent paging already overlaps the loading-set
  read with VMM setup and guest compute, so moving the loading file
  to local SSD recovers latency only when the loader is
  supply-limited; what remote storage irreducibly costs is the major
  faults on the *memory file* (out-of-loading-set pages of a changed
  input), which tiering by design does not move.
* **capacity** — the local-SSD bytes a tiered layout needs (just the
  loading-set file) are an order of magnitude smaller than keeping
  the whole snapshot local.
"""

import dataclasses

from repro.core import FaaSnapPlatform, Policy
from repro.core.restore import PlatformConfig
from repro.metrics import render_table
from repro.storage.filestore import PAGE_SIZE
from repro.storage.presets import EBS_IO2
from repro.workloads import get_profile
from repro.workloads.base import INPUT_A

FUNCTION = "image"


def measure(config: PlatformConfig, test_input):
    platform = FaaSnapPlatform(config)
    profile = get_profile(FUNCTION)
    handle = platform.register_function(profile)
    result = platform.invoke(
        handle, test_input, Policy.FAASNAP, record_input=INPUT_A
    )
    artifacts = platform.ensure_record(handle, INPUT_A, Policy.FAASNAP)
    return result, artifacts


def test_tiered_storage(bench_once):
    def run():
        profile = get_profile(FUNCTION)
        rows = {}
        for layout, config in [
            ("local", PlatformConfig()),
            ("remote", dataclasses.replace(PlatformConfig(), device=EBS_IO2)),
            (
                "tiered",
                dataclasses.replace(
                    PlatformConfig(), device=EBS_IO2, tiered_storage=True
                ),
            ),
        ]:
            same_result, artifacts = measure(config, INPUT_A)
            changed_result, _ = measure(config, profile.input_b())
            local_bytes = 0
            if layout == "local":
                local_bytes = (
                    artifacts.warm_snapshot.memory_file.size_bytes
                    + artifacts.loading_file.size_bytes
                )
            elif layout == "tiered":
                local_bytes = artifacts.loading_file.size_bytes
            rows[layout] = {
                "same_ms": same_result.total_ms,
                "changed_ms": changed_result.total_ms,
                "local_ssd_mb": local_bytes / 1e6,
                "nonzero_snapshot_mb": len(
                    artifacts.warm_snapshot.memory_file.pages
                )
                * PAGE_SIZE
                / 1e6,
            }
        return rows

    rows = bench_once(run)
    print()
    print(
        render_table(
            ["layout", "same_input_ms", "changed_input_ms", "local_SSD_MB"],
            [
                [k, v["same_ms"], v["changed_ms"], v["local_ssd_mb"]]
                for k, v in rows.items()
            ],
            title="FaaSnap image under snapshot storage tiers (paper 7.2)",
        )
    )

    local, remote, tiered = rows["local"], rows["remote"], rows["tiered"]

    # Latency sanity: local <= tiered <= remote for both inputs.
    assert local["same_ms"] <= tiered["same_ms"] * 1.01
    assert tiered["same_ms"] <= remote["same_ms"] * 1.01
    assert local["changed_ms"] <= tiered["changed_ms"] * 1.01
    assert tiered["changed_ms"] <= remote["changed_ms"] * 1.01

    # Concurrent paging hides the loading-set read even on EBS for a
    # stable input: remote costs < 10% over local.
    assert remote["same_ms"] < 1.1 * local["same_ms"]

    # The irreducible remote cost is the changed-input major faults on
    # the memory file — tiering does not (and cannot) remove it.
    assert remote["changed_ms"] > 1.2 * local["changed_ms"]
    assert tiered["changed_ms"] > 1.1 * local["changed_ms"]

    # The capacity win: a tiered layout needs >5x less local SSD than
    # keeping the snapshot local, because the loading-set file is much
    # smaller than the snapshot's resident pages.
    assert tiered["local_ssd_mb"] > 0
    assert tiered["local_ssd_mb"] * 5 < local["local_ssd_mb"]
    assert (
        tiered["local_ssd_mb"] < local["nonzero_snapshot_mb"]
    ), "loading set should be smaller than the snapshot's non-zero pages"
