"""Benchmark: regenerate Table 3 (performance analysis)."""

from benchmarks.conftest import full_sweeps
from repro.core.policies import Policy
from repro.experiments import table3_analysis


def test_table3_analysis(bench_once):
    functions = table3_analysis.FUNCTIONS if full_sweeps() else ("image",)
    result = bench_once(table3_analysis.run, functions=functions)
    print()
    print(table3_analysis.format_table(result))

    for function in functions:
        reap = result.get(Policy.REAP, function)
        faasnap = result.get(Policy.FAASNAP, function)
        # FaaSnap wins end to end for both functions (paper: 1408 vs
        # 1070 ms for ffmpeg, 480 vs 136 ms for image).
        assert faasnap.total_ms < reap.total_ms, function
        # REAP's page-fault waiting time dominates its loss on image
        # (paper: 342 vs 109 ms).
        if function == "image":
            assert reap.fault_wait_ms > 2 * faasnap.fault_wait_ms
            # FaaSnap's sparser-access loading set fetches more bytes
            # than REAP's exact working set for image (paper: 88 MB vs
            # 22 MB) yet still wins.
            assert faasnap.fetch_mb > reap.fetch_mb
        if function == "ffmpeg":
            # ffmpeg: FaaSnap's win comes from the shorter fetch
            # (paper: 107 vs 257 ms).
            assert faasnap.fetch_ms < reap.fetch_ms
