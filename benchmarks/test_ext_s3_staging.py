"""Extension benchmark: S3 snapshot tier with staging (paper §7.2).

"Snapshots for functions further down the invocation frequency
distribution can be stored in the slowest tier object storage such as
S3. Providers can also access snapshots in a hierarchical caching
scheme." This quantifies that scheme: serving page faults from S3
directly versus staging the bundle to local SSD once and serving from
there.
"""

import dataclasses

from repro.core import Policy
from repro.core.daemon import FaaSnapPlatform
from repro.core.restore import PlatformConfig, invocation_process
from repro.core.staging import SnapshotStager
from repro.metrics import render_table
from repro.storage import BlockDevice, FileStore
from repro.storage.presets import NVME_LOCAL, S3_OBJECT
from repro.workloads import get_profile
from repro.workloads.base import INPUT_A

FUNCTION = "json"


def test_s3_staging(bench_once):
    def run():
        config = dataclasses.replace(PlatformConfig(), device=S3_OBJECT)
        platform = FaaSnapPlatform(config)
        profile = get_profile(FUNCTION)
        handle = platform.register_function(profile)
        test_input = profile.input_b()
        out = {}
        for policy in (Policy.FIRECRACKER, Policy.FAASNAP):
            artifacts = platform.ensure_record(handle, INPUT_A, policy)
            platform.drop_caches()
            direct = platform.env.run(
                until=platform.env.process(
                    invocation_process(
                        platform.env,
                        platform.config,
                        platform.store,
                        platform.cache,
                        None,
                        artifacts,
                        test_input,
                        policy,
                        f"s3.{policy.value}",
                    )
                )
            )
            out[f"{policy.value} direct-from-S3"] = {
                "total_ms": direct.total_ms,
                "staging_ms": 0.0,
            }
        # Hierarchical: stage the FaaSnap bundle to local SSD once.
        faasnap_artifacts = platform.ensure_record(
            handle, INPUT_A, Policy.FAASNAP
        )
        local_store = FileStore(
            platform.env, BlockDevice(platform.env, NVME_LOCAL)
        )
        stager = SnapshotStager(platform.env, local_store)
        staged_artifacts = platform.env.run(
            until=platform.env.process(
                stager.stage_artifacts(faasnap_artifacts)
            )
        )
        platform.drop_caches()
        staged = platform.env.run(
            until=platform.env.process(
                invocation_process(
                    platform.env,
                    platform.config,
                    platform.store,
                    platform.cache,
                    None,
                    staged_artifacts,
                    test_input,
                    Policy.FAASNAP,
                    "s3.staged",
                )
            )
        )
        out["faasnap staged-to-SSD"] = {
            "total_ms": staged.total_ms,
            "staging_ms": stager.stats.staging_time_us / 1000.0,
        }
        return out

    results = bench_once(run)
    print()
    print(
        render_table(
            ["serving path", "total_ms", "one-shot staging_ms"],
            [
                [name, row["total_ms"], row["staging_ms"]]
                for name, row in results.items()
            ],
            title=f"{FUNCTION} (A->B) with snapshots on S3-class storage (7.2)",
        )
    )

    direct_fc = results["firecracker direct-from-S3"]["total_ms"]
    direct_fs = results["faasnap direct-from-S3"]["total_ms"]
    staged_fs = results["faasnap staged-to-SSD"]["total_ms"]
    staging_cost = results["faasnap staged-to-SSD"]["staging_ms"]

    # Even straight off S3, FaaSnap's sequential loading beats
    # Firecracker's on-demand scattered reads by a wide margin.
    assert direct_fs < 0.5 * direct_fc
    # Staging recovers near-local performance...
    assert staged_fs < 0.75 * direct_fs
    # ... for a one-shot cost amortised over subsequent invocations.
    assert staging_cost > 0
