"""Benchmark: regenerate Figure 8 (input-size sensitivity)."""

from benchmarks.conftest import full_sweeps
from repro.core.policies import Policy
from repro.experiments import fig8_sensitivity

QUICK_FUNCTIONS = ["json", "image", "chameleon"]
QUICK_RATIOS = (0.25, 1.0, 4.0)


def test_fig8_sensitivity(bench_once):
    if full_sweeps():
        result = bench_once(fig8_sensitivity.run)
    else:
        result = bench_once(
            fig8_sensitivity.run,
            functions=QUICK_FUNCTIONS,
            ratios=QUICK_RATIOS,
        )
    print()
    print(fig8_sensitivity.format_table(result))

    functions = sorted({c.function for c in result.grid.cells})
    top = max(result.ratios)
    for function in functions:
        # FaaSnap outperforms Firecracker and REAP at every ratio.
        for ratio in result.ratios:
            fc = result.grid.get(
                function, Policy.FIRECRACKER, size_ratio=ratio
            ).total_ms
            reap = result.grid.get(
                function, Policy.REAP, size_ratio=ratio
            ).total_ms
            ours = result.grid.get(
                function, Policy.FAASNAP, size_ratio=ratio
            ).total_ms
            assert ours < fc, (function, ratio)
            assert ours <= reap * 1.02, (function, ratio)

        # REAP's curve climbs more steeply than FaaSnap's above 1x —
        # the paper's C2 claim (6.3: REAP degrades when the input
        # grows past the recorded working set). Compute-dominated
        # functions (pyaes) tie within noise, hence the 5% tolerance.
        assert result.degradation(function, Policy.REAP) > 0.95 * (
            result.degradation(function, Policy.FAASNAP)
        ), function

        # FaaSnap tracks Cached across the sweep (overlapping curves
        # in the paper's plots).
        faasnap_top = result.grid.get(
            function, Policy.FAASNAP, size_ratio=top
        ).total_ms
        cached_top = result.grid.get(
            function, Policy.CACHED, size_ratio=top
        ).total_ms
        assert faasnap_top < 1.4 * cached_top, function
