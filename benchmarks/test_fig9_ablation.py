"""Benchmark: regenerate Figure 9 (optimization steps)."""

from repro.core.policies import Policy
from repro.experiments import fig9_ablation


def test_fig9_ablation(bench_once):
    result = bench_once(fig9_ablation.run)
    print()
    print(fig9_ablation.format_table(result))

    steps = result.steps
    firecracker = steps[Policy.FIRECRACKER]
    concurrent = steps[Policy.FAASNAP_CONCURRENT]
    per_region = steps[Policy.FAASNAP_PER_REGION]
    faasnap = steps[Policy.FAASNAP]

    # Concurrent paging alone cuts majors, fault time, and VM block
    # requests versus stock Firecracker.
    assert concurrent.major_faults < firecracker.major_faults
    assert concurrent.fault_time_ms < firecracker.fault_time_ms
    assert concurrent.block_requests < firecracker.block_requests
    assert concurrent.invoke_ms < firecracker.invoke_ms

    # The paper's counterintuitive per-region signature: more major
    # faults than concurrent paging, with a similar-or-lower number of
    # block requests — per-region majors tend to wait on in-flight
    # loader reads instead of issuing their own I/O. The exact
    # block-request ordering between the two intermediate steps is
    # within noise of the loader race, so allow a tolerance.
    assert per_region.major_faults >= concurrent.major_faults
    assert per_region.block_requests <= concurrent.block_requests * 1.25

    # Full FaaSnap is best on every metric: fewest majors, fewest
    # block requests, shortest fault time, shortest invocation.
    for step in (firecracker, concurrent, per_region):
        assert faasnap.major_faults <= step.major_faults
        assert faasnap.block_requests <= step.block_requests
        assert faasnap.fault_time_ms <= step.fault_time_ms
        assert faasnap.invoke_ms <= step.invoke_ms
