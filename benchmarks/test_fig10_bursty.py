"""Benchmark: regenerate Figure 10 (bursty workloads)."""

from benchmarks.conftest import full_sweeps
from repro.core.policies import Policy
from repro.experiments import fig10_bursty


def test_fig10_bursty(bench_once):
    if full_sweeps():
        result = bench_once(fig10_bursty.run)
    else:
        result = bench_once(
            fig10_bursty.run,
            functions=("hello-world",),
            parallelisms=(1, 4, 16),
        )
    print()
    print(fig10_bursty.format_table(result))

    top = max(result.parallelisms)
    for name in result.functions:
        for mode in ("same", "diff"):
            for parallelism in result.parallelisms:
                fc = result.points[
                    (name, mode, Policy.FIRECRACKER, parallelism)
                ].mean_ms
                reap = result.points[
                    (name, mode, Policy.REAP, parallelism)
                ].mean_ms
                faasnap = result.points[
                    (name, mode, Policy.FAASNAP, parallelism)
                ].mean_ms
                if mode == "diff" and parallelism >= 64:
                    # At 64 different snapshots the simulated disk is
                    # byte-bound and FaaSnap's deliberately larger
                    # loading sets cost it ~10% vs REAP's minimal
                    # working sets (the paper's bottleneck there was
                    # CPU; see EXPERIMENTS.md deviations). Bound the
                    # gap instead of requiring a win.
                    assert faasnap <= reap * 1.25, (name, mode, parallelism)
                    continue
                # C3: FaaSnap handles bursts at least as well as REAP
                # at every parallelism...
                assert faasnap <= reap * 1.05, (name, mode, parallelism)
                # ... and beats stock Firecracker.
                assert faasnap < fc, (name, mode, parallelism)

        # Different snapshots hurt Firecracker much more than the
        # same snapshot (no page-cache sharing across VMs).
        fc_same = result.points[(name, "same", Policy.FIRECRACKER, top)].mean_ms
        fc_diff = result.points[(name, "diff", Policy.FIRECRACKER, top)].mean_ms
        assert fc_diff > fc_same

        # REAP bypasses the page cache, so same-vs-diff barely matters
        # to it (paper: "performs similarly ... because it does not
        # take advantage of the page cache").
        reap_same = result.points[(name, "same", Policy.REAP, top)].mean_ms
        reap_diff = result.points[(name, "diff", Policy.REAP, top)].mean_ms
        assert abs(reap_diff - reap_same) / reap_same < 0.5
