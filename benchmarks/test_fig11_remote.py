"""Benchmark: regenerate Figure 11 (remote snapshot storage)."""

from benchmarks.conftest import full_sweeps
from repro.core.policies import Policy
from repro.experiments import fig11_remote
from repro.experiments.common import fresh_platform
from repro.workloads.base import INPUT_A
from repro.workloads.registry import get_profile

QUICK_FUNCTIONS = ["hello-world", "json", "image", "chameleon"]


def test_fig11_remote(bench_once):
    functions = None if full_sweeps() else QUICK_FUNCTIONS
    result = bench_once(fig11_remote.run, functions=functions)
    print()
    print(fig11_remote.format_table(result))

    # C4: FaaSnap beats Firecracker and REAP on average over EBS
    # (paper: 2.06x and 1.20x).
    assert result.speedup_over(Policy.FIRECRACKER) > 1.3
    assert result.speedup_over(Policy.REAP) > 1.0

    faasnap = result.grid.totals_ms(Policy.FAASNAP)
    fc = result.grid.totals_ms(Policy.FIRECRACKER)
    for function in faasnap:
        assert faasnap[function] < fc[function], function


def test_fig11_remote_vs_local_gap(bench_once):
    """FaaSnap on EBS is slower than on local NVMe, but by a bounded
    factor (paper: 28% slower on average)."""

    def run_pair():
        gaps = {}
        for remote in (False, True):
            platform, handles = fresh_platform(
                remote_storage=remote, functions=("json",)
            )
            profile = get_profile("json")
            result = platform.invoke(
                handles["json"],
                profile.input_b(),
                Policy.FAASNAP,
                record_input=INPUT_A,
            )
            gaps[remote] = result.total_ms
        return gaps

    gaps = bench_once(run_pair)
    assert gaps[True] > gaps[False]
    assert gaps[True] < 2.5 * gaps[False]
