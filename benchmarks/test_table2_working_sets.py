"""Benchmark: regenerate Table 2 (functions and working sets)."""

import pytest

from repro.experiments import table2_workloads


def test_table2_working_sets(bench_once):
    result = bench_once(table2_workloads.run)
    print()
    print(table2_workloads.format_table(result))

    assert len(result.rows) == 12
    for row in result.rows:
        assert row.ws_a_mb == pytest.approx(row.paper_ws_a_mb, rel=0.15), (
            row.function
        )
        assert row.ws_b_mb == pytest.approx(row.paper_ws_b_mb, rel=0.15), (
            row.function
        )
        # Input B never shrinks the working set in Table 2.
        assert row.ws_b_mb >= row.ws_a_mb * 0.99
