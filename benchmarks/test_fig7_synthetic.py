"""Benchmark: regenerate Figure 7 (synthetic functions)."""

from benchmarks.conftest import full_sweeps
from repro.core.policies import Policy
from repro.experiments import fig7_synthetic


def test_fig7_synthetic(bench_once):
    functions = None if full_sweeps() else ["hello-world", "mmap"]
    result = bench_once(fig7_synthetic.run, functions=functions)
    print()
    print(fig7_synthetic.format_table(result))

    grid = result.grid
    names = {c.function for c in grid.cells}
    for function in names:
        fc = grid.get(function, Policy.FIRECRACKER).total_ms
        reap = grid.get(function, Policy.REAP).total_ms
        faasnap = grid.get(function, Policy.FAASNAP).total_ms
        # Firecracker is worst; FaaSnap beats REAP end to end.
        assert fc == max(
            fc, reap, faasnap, grid.get(function, Policy.CACHED).total_ms
        )
        assert faasnap < reap

    if "hello-world" in names:
        # hello-world: snapshot optimizations bring the trivial
        # function within a few x of Cached (paper: ~70 vs 67 ms).
        hello_faasnap = grid.get("hello-world", Policy.FAASNAP).total_ms
        hello_cached = grid.get("hello-world", Policy.CACHED).total_ms
        assert hello_faasnap < 1.5 * hello_cached

    if "mmap" in names:
        # mmap: REAP pays a long blocking setup to install 512 MB of
        # anonymous pages; FaaSnap serves them from anonymous memory.
        reap_cell = grid.get("mmap", Policy.REAP)
        faasnap_cell = grid.get("mmap", Policy.FAASNAP)
        assert reap_cell.setup_ms > 10 * faasnap_cell.setup_ms
        assert faasnap_cell.total_ms < 0.6 * reap_cell.total_ms
