"""Extension benchmark: adaptive re-recording under input drift.

FaaSnap's tolerance (Figure 8) buys time, but a snapshot recorded for
yesterday's inputs keeps losing ground as the workload drifts. This
scenario drives a sequence of invocations whose inputs grow steadily
(2x every few invocations, contents always new) and compares a static
record-once platform against the adaptive manager that refreshes the
snapshot when the slow-fault fraction crosses a threshold.
"""

from repro.core import FaaSnapPlatform, Policy
from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveSnapshotManager,
    slow_fault_count,
)
from repro.metrics import mean, render_table
from repro.workloads import get_profile
from repro.workloads.base import INPUT_A, InputSpec

FUNCTION = "image"

#: A drifting workload: contents always change; sizes step up.
DRIFT = [
    InputSpec(content_id=20 + i, size_ratio=ratio)
    for i, ratio in enumerate([1.0, 1.0, 1.5, 1.5, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0])
]


def test_adaptive_re_recording(bench_once):
    def run():
        profile = get_profile(FUNCTION)

        static_platform = FaaSnapPlatform()
        static_fn = static_platform.register_function(profile)
        static = [
            static_platform.invoke(
                static_fn, spec, Policy.FAASNAP, record_input=INPUT_A
            )
            for spec in DRIFT
        ]

        adaptive_platform = FaaSnapPlatform()
        adaptive_fn = adaptive_platform.register_function(profile)
        manager = AdaptiveSnapshotManager(
            adaptive_platform,
            adaptive_fn,
            config=AdaptiveConfig(
                stale_slow_faults=256,
                min_invocations_between_records=2,
            ),
        )
        adaptive = [manager.invoke(spec)[0] for spec in DRIFT]
        return static, adaptive, manager.stats

    static, adaptive, stats = bench_once(run)

    rows = []
    for index, (s, a) in enumerate(zip(static, adaptive)):
        rows.append(
            [
                f"{DRIFT[index].size_ratio:g}x",
                s.total_ms,
                slow_fault_count(s),
                a.total_ms,
                slow_fault_count(a),
            ]
        )
    print()
    print(
        render_table(
            [
                "input",
                "static_ms",
                "static_slow_faults",
                "adaptive_ms",
                "adaptive_slow_faults",
            ],
            rows,
            title=f"{FUNCTION} under drifting inputs: record-once vs adaptive",
        )
    )
    print(f"re-records: {stats.re_records} over {stats.invocations} invocations")

    # The adaptive manager re-recorded at least once but not every
    # invocation (the back-off works).
    assert 1 <= stats.re_records <= len(DRIFT) // 2

    # Over the drifted tail (last 4 invocations), adaptive is faster
    # and takes fewer slow faults than record-once.
    static_tail = mean([r.total_us for r in static[-4:]])
    adaptive_tail = mean([r.total_us for r in adaptive[-4:]])
    assert adaptive_tail < static_tail
    static_slow = mean([slow_fault_count(r) for r in static[-4:]])
    adaptive_slow = mean([slow_fault_count(r) for r in adaptive[-4:]])
    assert adaptive_slow < static_slow
