"""Benchmark: regenerate Figure 6 (benchmark execution times)."""

from benchmarks.conftest import full_sweeps
from repro.core.policies import Policy
from repro.experiments import fig6_execution

#: Reduced function set covering every behaviour class: small/json,
#: content-sensitive/image, template/chameleon, big-anon/pagerank.
QUICK_FUNCTIONS = ["json", "image", "chameleon", "pagerank"]


def test_fig6_execution(bench_once):
    functions = None if full_sweeps() else QUICK_FUNCTIONS
    result = bench_once(fig6_execution.run, functions=functions)
    print()
    print(fig6_execution.format_table(result))

    for direction in ("A->B", "B->A"):
        grid = result.grids[direction]
        faasnap = grid.totals_ms(Policy.FAASNAP)
        for function, total in faasnap.items():
            # C1: FaaSnap beats Firecracker and REAP for every function.
            assert total < grid.totals_ms(Policy.FIRECRACKER)[function], (
                direction,
                function,
            )
            assert total < grid.totals_ms(Policy.REAP)[function], (
                direction,
                function,
            )

    # Paper: ~2.0x over Firecracker and ~1.4x over REAP on average
    # (our simulated compute times dilute this to ~1.4x/1.3x on the
    # full set — see EXPERIMENTS.md), and FaaSnap's REAP speedup is
    # larger when testing with the bigger input B than with the
    # smaller input A (paper: 1.55x vs 1.16x).
    fc_speedup = result.speedup("A->B", Policy.FIRECRACKER)
    reap_ab = result.speedup("A->B", Policy.REAP)
    reap_ba = result.speedup("B->A", Policy.REAP)
    assert fc_speedup > 1.25
    assert reap_ab > 1.1
    assert reap_ab > reap_ba

    # FaaSnap lands within ~35% of the impractical Cached reference
    # (paper: 3.5% on the real testbed; the simulated loader race is
    # coarser but the gap stays small).
    cached_gap = result.speedup("A->B", Policy.CACHED)
    assert cached_gap > 0.65
