"""Extension benchmark: fleet-level serving economics (paper §7.1).

Not a paper figure — this quantifies the deployment argument of the
discussion section: snapshots replace cold starts for mid-frequency
functions, and FaaSnap's faster restore path directly improves the
latency of every snapshot-served invocation.
"""

from repro.core.policies import Policy
from repro.fleet import (
    CostModel,
    FleetConfig,
    FleetSimulator,
    StartKind,
    generate_arrivals,
    synthesize_fleet,
)
from repro.fleet.workload import US_PER_HOUR, US_PER_MINUTE
from repro.metrics import render_table

PROFILES = ("json", "pyaes", "compression")


def test_fleet_snapshot_tier(bench_once):
    def run():
        fleet = synthesize_fleet(40, seed=11, profile_names=PROFILES)
        trace = generate_arrivals(fleet, 2 * US_PER_HOUR, seed=11)
        cost_model = CostModel()
        reports = {}
        for label, policy, snapshots in [
            ("cold-only", Policy.FAASNAP, False),
            ("firecracker", Policy.FIRECRACKER, True),
            ("reap", Policy.REAP, True),
            ("faasnap", Policy.FAASNAP, True),
        ]:
            config = FleetConfig(
                restore_policy=policy,
                keep_alive_ttl_us=1 * US_PER_MINUTE,
                memory_budget_mb=8_192.0,
                snapshots_enabled=snapshots,
            )
            costs = {
                f.name: cost_model.costs(f.profile_name, policy)
                for f in fleet
            }
            reports[label] = FleetSimulator(fleet, config, costs=costs).run(
                trace
            )
        return reports

    reports = bench_once(run)

    rows = [
        [
            label,
            report.mean_latency_us() / 1000,
            report.latency_percentile(99) / 1000,
            report.fraction(StartKind.WARM) * 100,
            report.fraction(StartKind.SNAPSHOT) * 100,
            report.fraction(StartKind.COLD) * 100,
        ]
        for label, report in reports.items()
    ]
    print()
    print(
        render_table(
            ["platform", "mean_ms", "p99_ms", "warm_%", "snap_%", "cold_%"],
            rows,
            title="Fleet serving, 1-minute keep-alive (extension of paper 7.1)",
        )
    )

    # Any snapshot tier beats cold-only on mean latency.
    assert (
        reports["faasnap"].mean_latency_us()
        < reports["cold-only"].mean_latency_us()
    )
    # FaaSnap's faster restore shows up at fleet level.
    assert (
        reports["faasnap"].mean_latency_us()
        < reports["firecracker"].mean_latency_us()
    )
    assert (
        reports["faasnap"].mean_latency_us()
        <= reports["reap"].mean_latency_us()
    )
    # With a 1-minute TTL most invocations are NOT warm (Azure trace
    # shape), so the snapshot tier actually carries load.
    assert reports["faasnap"].fraction(StartKind.SNAPSHOT) > 0.2
