"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper and
prints the rows the paper reports (run with ``-s`` to see them, or
read the captured output). Set ``REPRO_BENCH_FULL=1`` to run the
complete parameter sweeps; the default trims the heaviest experiments
so the whole suite finishes in a few minutes while still exercising
every system and mechanism.
"""

import os

import pytest


def full_sweeps() -> bool:
    """True when the operator asked for the paper's full sweeps."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def bench_once(benchmark):
    """Run an expensive experiment exactly once under pytest-benchmark.

    The simulation is deterministic, so repeated rounds only burn
    time; a single round records the honest wall-clock cost of
    regenerating the artefact.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
