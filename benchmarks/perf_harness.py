#!/usr/bin/env python3
"""Performance regression harness for the simulation kernel.

Runs a fixed, deterministic workload — a slice of the paper's Figure 1
and Figure 8 grids covering every restore policy and both the batching
fast path and the event-driven machinery — and reports:

* **events/sec** — heap events dispatched per wall-clock second, the
  kernel's raw throughput;
* **cells/sec** — measured invocations per wall-clock second, the
  end-to-end number an experiment run feels;
* **events** — total heap events dispatched, which is deterministic:
  a change here means simulated behaviour changed, not just speed.

Usage:

    python benchmarks/perf_harness.py              # full workload
    python benchmarks/perf_harness.py --smoke      # CI gate (~10 s)
    python benchmarks/perf_harness.py --smoke --update   # rebaseline
    python benchmarks/perf_harness.py --figures fig6 fig8   # time figures

``--smoke`` compares events/sec against the committed baseline
(``BENCH_core.json`` next to this file) and exits non-zero on a
regression beyond ``--threshold`` (default 30%, generous because CI
runners vary). The event *count* is checked exactly.

``--figures`` regenerates whole experiments and reports wall-clock per
experiment; with ``--update`` the timings are recorded in the
baseline's ``experiments`` section as an informational perf
trajectory (not gated — full figures are too slow for CI).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.policies import MAIN_POLICIES, Policy  # noqa: E402
from repro.experiments.common import fresh_platform, measure  # noqa: E402
from repro.workloads.base import INPUT_A, InputSpec  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_core.json"

#: (function, size ratio) cells; every MAIN policy runs on each.
SMOKE_CELLS = [
    ("json", 1.0),
    ("json", 4.0),
    ("image", 0.5),
    ("chameleon", 2.0),
]

FULL_CELLS = SMOKE_CELLS + [
    ("pyaes", 1.0),
    ("compression", 2.0),
    ("matmul", 0.25),
    ("pagerank", 4.0),
]


def run_workload(cells) -> dict:
    """Run the workload on one fresh platform; return the metrics."""
    functions = tuple(dict.fromkeys(name for name, _ in cells))
    platform, handles = fresh_platform(functions=functions)
    started = time.perf_counter()
    measured = 0
    for name, ratio in cells:
        spec = InputSpec(content_id=9, size_ratio=ratio)
        for policy in MAIN_POLICIES:
            measure(platform, handles[name], policy, spec, INPUT_A)
            measured += 1
        measure(
            platform, handles[name], Policy.WARM, InputSpec(9, ratio), INPUT_A
        )
        measured += 1
    elapsed = time.perf_counter() - started
    events = platform.env.events_processed
    return {
        "events": events,
        "cells": measured,
        "wall_seconds": round(elapsed, 3),
        "events_per_sec": round(events / elapsed, 1),
        "cells_per_sec": round(measured / elapsed, 2),
    }


#: Cluster-throughput entry: a hot 8-function fleet served on 4
#: page-level hosts. ``invocations`` and the latency checksum are
#: deterministic (exact-gated); invocations/sec is the throughput.
CLUSTER_HOSTS = 4


def run_cluster_workload(sampler_interval_us=None, fault_plan=None) -> dict:
    """Serve a dense fleet trace on the multi-host cluster scheduler.

    ``sampler_interval_us`` turns on the telemetry gauge sampler; the
    smoke gate runs the workload with and without it and requires
    identical invocation counts and latency checksums (the
    zero-perturbation guard). ``fault_plan`` routes serving through
    the fault-injection machinery; the smoke gate passes an *empty*
    plan and requires the same bit-identical results — arming the
    fault plane must cost nothing when no fault fires.
    """
    from repro.cluster import ClusterConfig, ClusterSimulator
    from repro.fleet.workload import generate_arrivals, synthesize_fleet

    fleet = synthesize_fleet(
        8,
        seed=7,
        profile_names=("json", "pyaes"),
        hot_interarrival_us=5_000_000.0,
        cold_interarrival_us=60_000_000.0,
    )
    trace = generate_arrivals(fleet, duration_us=120_000_000.0, seed=7)
    config = ClusterConfig(
        num_hosts=CLUSTER_HOSTS,
        placement="least-loaded",
        keep_alive_ttl_us=30_000_000.0,
    )
    started = time.perf_counter()
    report = ClusterSimulator(fleet, config).run(
        trace,
        sampler_interval_us=sampler_interval_us,
        fault_plan=fault_plan,
    )
    elapsed = time.perf_counter() - started
    return {
        "hosts": CLUSTER_HOSTS,
        "invocations": report.count(),
        "latency_checksum_us": round(
            sum(s.latency_us for s in report.served), 3
        ),
        "wall_seconds": round(elapsed, 3),
        "invocations_per_sec": round(report.count() / elapsed, 2),
    }


def time_figures(names) -> dict:
    """Regenerate whole experiments; wall-clock seconds per id."""
    from repro.experiments import ALL_EXPERIMENTS

    timings = {}
    for name in names:
        module = ALL_EXPERIMENTS[name]
        started = time.perf_counter()
        module.run()
        timings[name] = round(time.perf_counter() - started, 2)
        print(f"{name:>16}: {timings[name]}s")
    return timings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixed workload, gated against BENCH_core.json",
    )
    parser.add_argument(
        "--figures",
        nargs="*",
        metavar="ID",
        help="also regenerate these experiments (default fig6 fig8) "
        "and report wall-clock per experiment",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured numbers to BENCH_core.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed events/sec regression fraction (default 0.30)",
    )
    args = parser.parse_args()

    cells = SMOKE_CELLS if args.smoke else FULL_CELLS
    metrics = run_workload(cells)
    for key, value in metrics.items():
        print(f"{key:>16}: {value}")
    cluster_metrics = run_cluster_workload()
    for key, value in cluster_metrics.items():
        print(f"{'cluster.' + key:>26}: {value}")

    figure_timings = None
    if args.figures is not None:
        figure_timings = time_figures(args.figures or ["fig6", "fig8"])

    if args.update:
        baseline = {
            "smoke": metrics if args.smoke else run_workload(SMOKE_CELLS),
            "cluster": cluster_metrics,
        }
        if figure_timings is not None:
            baseline["experiments"] = {
                "wall_seconds": figure_timings,
                "note": "informational trajectory, not CI-gated",
            }
        elif BASELINE_PATH.exists():
            previous = json.loads(BASELINE_PATH.read_text())
            if "experiments" in previous:
                baseline["experiments"] = previous["experiments"]
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not args.smoke:
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update", file=sys.stderr)
        return 2
    full_baseline = json.loads(BASELINE_PATH.read_text())
    baseline = full_baseline["smoke"]

    status = 0
    if metrics["events"] != baseline["events"]:
        print(
            f"FAIL: dispatched {metrics['events']} heap events, baseline "
            f"{baseline['events']} — simulated behaviour changed",
            file=sys.stderr,
        )
        status = 1
    floor = baseline["events_per_sec"] * (1.0 - args.threshold)
    if metrics["events_per_sec"] < floor:
        print(
            f"FAIL: {metrics['events_per_sec']:.0f} events/sec is below "
            f"{floor:.0f} (baseline {baseline['events_per_sec']:.0f} "
            f"- {args.threshold:.0%})",
            file=sys.stderr,
        )
        status = 1
    cluster_baseline = full_baseline.get("cluster")
    if cluster_baseline is None:
        print(
            "no cluster baseline in BENCH_core.json; run with --update",
            file=sys.stderr,
        )
        status = 1
    else:
        for exact_key in ("invocations", "latency_checksum_us"):
            if cluster_metrics[exact_key] != cluster_baseline[exact_key]:
                print(
                    f"FAIL: cluster {exact_key} {cluster_metrics[exact_key]} "
                    f"!= baseline {cluster_baseline[exact_key]} — cluster "
                    "behaviour changed",
                    file=sys.stderr,
                )
                status = 1
        cluster_floor = cluster_baseline["invocations_per_sec"] * (
            1.0 - args.threshold
        )
        if cluster_metrics["invocations_per_sec"] < cluster_floor:
            print(
                f"FAIL: {cluster_metrics['invocations_per_sec']:.2f} cluster "
                f"invocations/sec is below {cluster_floor:.2f} (baseline "
                f"{cluster_baseline['invocations_per_sec']:.2f} "
                f"- {args.threshold:.0%})",
                file=sys.stderr,
            )
            status = 1

    # Perturbation guard: the same cluster workload with the telemetry
    # gauge sampler enabled must produce bit-identical results —
    # instruments are pull-based, and the sampler's heap events only
    # flip fault services between the (bit-identical) fast and event
    # paths.
    telemetry_metrics = run_cluster_workload(sampler_interval_us=100_000.0)
    for exact_key in ("invocations", "latency_checksum_us"):
        if telemetry_metrics[exact_key] != cluster_metrics[exact_key]:
            print(
                f"FAIL: telemetry-enabled cluster {exact_key} "
                f"{telemetry_metrics[exact_key]} != telemetry-disabled "
                f"{cluster_metrics[exact_key]} — telemetry perturbed the "
                "simulation",
                file=sys.stderr,
            )
            status = 1

    # Fault-plane perturbation guard: the same workload with an armed
    # (but empty) fault plan runs the robust serving path — attempt
    # processes, race combinators, retry bookkeeping — and must still
    # produce bit-identical invocation counts and latency checksums.
    from repro.faults import FaultPlan

    armed_metrics = run_cluster_workload(fault_plan=FaultPlan.empty())
    for exact_key in ("invocations", "latency_checksum_us"):
        if armed_metrics[exact_key] != cluster_metrics[exact_key]:
            print(
                f"FAIL: fault-armed cluster {exact_key} "
                f"{armed_metrics[exact_key]} != unarmed "
                f"{cluster_metrics[exact_key]} — the empty fault plan "
                "perturbed the simulation",
                file=sys.stderr,
            )
            status = 1

    if status == 0:
        print(
            f"OK: events/sec within {args.threshold:.0%} of baseline "
            f"({metrics['events_per_sec']:.0f} vs "
            f"{baseline['events_per_sec']:.0f}), event count exact; "
            f"cluster {cluster_metrics['invocations_per_sec']:.2f} inv/sec "
            f"({CLUSTER_HOSTS} hosts), checksums exact; telemetry and "
            "fault-plane perturbation guards passed"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
