#!/usr/bin/env python3
"""Performance regression harness for the simulation kernel.

Runs a fixed, deterministic workload — a slice of the paper's Figure 1
and Figure 8 grids covering every restore policy and both the batching
fast path and the event-driven machinery — and reports:

* **events/sec** — heap events dispatched per wall-clock second, the
  kernel's raw throughput;
* **cells/sec** — measured invocations per wall-clock second, the
  end-to-end number an experiment run feels;
* **events** — total heap events dispatched, which is deterministic:
  a change here means simulated behaviour changed, not just speed.

Usage:

    python benchmarks/perf_harness.py              # full workload
    python benchmarks/perf_harness.py --smoke      # CI gate (~10 s)
    python benchmarks/perf_harness.py --smoke --update   # rebaseline
    python benchmarks/perf_harness.py --figures fig6 fig8   # time figures

``--smoke`` compares events/sec against the committed baseline
(``BENCH_core.json`` next to this file) and exits non-zero on a
regression beyond ``--threshold`` (default 30%, generous because CI
runners vary). The event *count* is checked exactly.

``--figures`` regenerates whole experiments and reports wall-clock per
experiment; with ``--update`` the timings are recorded in the
baseline's ``experiments`` section as an informational perf
trajectory (not gated — full figures are too slow for CI).

Sharded-cluster entries (PR 6):

* ``--sharded-smoke`` — CI-sized determinism gate: the same fleet
  trace at ``shards=1`` and ``shards=2`` must produce bit-identical
  invocation counts, latency checksums, and merged telemetry, and
  match the committed ``cluster_sharded.smoke`` baseline exactly.
  ``--report-out`` writes the fleet-report JSON artifact.
* ``--sharded-scale`` — the gated 64-host / 100k-invocation entry
  (minutes-to-hours; never run in CI). Exact-gates invocations and
  the latency checksum against ``cluster_sharded.scale`` (valid for
  any shard count — the checksum is shard-count-invariant), floors
  invocations/sec, and asserts the >= 3x shards=4 speedup when the
  box has >= 4 cores.
* ``--check`` — the full regression gate: ``--smoke`` plus the
  sharded parity smoke plus the observability smoke.

Observability entry (PR 9):

* ``--obs-smoke`` — byte-level gates for the observability plane:
  the cluster workload with causal tracing + SLO monitoring + the
  flight recorder all enabled must match the all-off run's
  invocation count and latency checksum exactly (zero
  perturbation), and an armed 4-host drill traced at ``shards=1``
  and ``shards=2`` must serialize to byte-identical causal trace
  documents (shard invariance).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.policies import MAIN_POLICIES, Policy  # noqa: E402
from repro.experiments.common import fresh_platform, measure  # noqa: E402
from repro.workloads.base import INPUT_A, InputSpec  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_core.json"

#: (function, size ratio) cells; every MAIN policy runs on each.
SMOKE_CELLS = [
    ("json", 1.0),
    ("json", 4.0),
    ("image", 0.5),
    ("chameleon", 2.0),
]

FULL_CELLS = SMOKE_CELLS + [
    ("pyaes", 1.0),
    ("compression", 2.0),
    ("matmul", 0.25),
    ("pagerank", 4.0),
]


def run_workload(cells) -> dict:
    """Run the workload on one fresh platform; return the metrics."""
    functions = tuple(dict.fromkeys(name for name, _ in cells))
    platform, handles = fresh_platform(functions=functions)
    started = time.perf_counter()
    measured = 0
    for name, ratio in cells:
        spec = InputSpec(content_id=9, size_ratio=ratio)
        for policy in MAIN_POLICIES:
            measure(platform, handles[name], policy, spec, INPUT_A)
            measured += 1
        measure(
            platform, handles[name], Policy.WARM, InputSpec(9, ratio), INPUT_A
        )
        measured += 1
    elapsed = time.perf_counter() - started
    events = platform.env.events_processed
    return {
        "events": events,
        "cells": measured,
        "wall_seconds": round(elapsed, 3),
        "events_per_sec": round(events / elapsed, 1),
        "cells_per_sec": round(measured / elapsed, 2),
    }


#: Cluster-throughput entry: a hot 8-function fleet served on 4
#: page-level hosts. ``invocations`` and the latency checksum are
#: deterministic (exact-gated); invocations/sec is the throughput.
CLUSTER_HOSTS = 4


def run_cluster_workload(
    sampler_interval_us=None,
    fault_plan=None,
    observability=False,
    durability=None,
) -> dict:
    """Serve a dense fleet trace on the multi-host cluster scheduler.

    ``sampler_interval_us`` turns on the telemetry gauge sampler; the
    smoke gate runs the workload with and without it and requires
    identical invocation counts and latency checksums (the
    zero-perturbation guard). ``fault_plan`` routes serving through
    the fault-injection machinery; the smoke gate passes an *empty*
    plan and requires the same bit-identical results — arming the
    fault plane must cost nothing when no fault fires.
    ``observability`` attaches the full PR-9 plane — causal tracer,
    SLO monitor, flight recorder — and extends the same contract:
    everything on must still be bit-identical to everything off.
    ``durability`` passes a :class:`DurabilityPolicy`; the durability
    smoke gate requires a disabled policy to be bit-identical to the
    default (no policy at all).
    """
    from repro.cluster import ClusterConfig, ClusterSimulator
    from repro.fleet.workload import generate_arrivals, synthesize_fleet

    fleet = synthesize_fleet(
        8,
        seed=7,
        profile_names=("json", "pyaes"),
        hot_interarrival_us=5_000_000.0,
        cold_interarrival_us=60_000_000.0,
    )
    trace = generate_arrivals(fleet, duration_us=120_000_000.0, seed=7)
    config = ClusterConfig(
        num_hosts=CLUSTER_HOSTS,
        placement="least-loaded",
        keep_alive_ttl_us=30_000_000.0,
        **({"durability": durability} if durability is not None else {}),
    )
    causal = slo = flight = None
    if observability:
        from repro.metrics.causal import CausalTracer
        from repro.metrics.flight import FlightRecorder
        from repro.metrics.slo import SloMonitor

        causal = CausalTracer()
        slo = SloMonitor.default()
        flight = FlightRecorder()
    started = time.perf_counter()
    report = ClusterSimulator(fleet, config).run(
        trace,
        sampler_interval_us=sampler_interval_us,
        fault_plan=fault_plan,
        causal=causal,
        slo=slo,
        flight=flight,
    )
    elapsed = time.perf_counter() - started
    out = {
        "hosts": CLUSTER_HOSTS,
        "invocations": report.count(),
        "latency_checksum_us": round(
            sum(s.latency_us for s in report.served), 3
        ),
        "wall_seconds": round(elapsed, 3),
        "invocations_per_sec": round(report.count() / elapsed, 2),
    }
    if observability:
        out["causal_events"] = len(causal.all_events())
        out["slo_alerts"] = len(slo.alerts)
        out["flight_recorded"] = flight.recorded
    return out


#: Restore-bookkeeping hot-path microbench (the ROADMAP's
#: ~40 ms/invocation flag): one host, one FAASNAP function, page
#: cache dropped before every invocation so each one pays the full
#: page-level restore path — mapping-plan construction, loader
#: chunking, pending-read tracking, fault-record absorption.
HOTPATH_FUNCTION = "json"
HOTPATH_INVOCATIONS = 30


def run_hotpath_workload(invocations: int = HOTPATH_INVOCATIONS) -> dict:
    """Measure the cold FAASNAP restore path in wall-clock ms/invocation."""
    from repro.core.host import Host
    from repro.sim import Environment
    from repro.workloads import get_profile

    env = Environment(seed=7)
    host = Host(env)
    profile = get_profile(HOTPATH_FUNCTION)
    box = {}

    def record():
        box["artifacts"] = yield from host.record_process(
            profile, INPUT_A, Policy.FAASNAP
        )

    env.run(until=env.process(record()))
    artifacts = box["artifacts"]
    test_input = InputSpec(content_id=3, size_ratio=1.0)
    started = time.perf_counter()
    for _ in range(invocations):
        host.drop_function_caches(artifacts)
        env.run(
            until=env.process(
                host.invocation(artifacts, test_input, Policy.FAASNAP)
            )
        )
    elapsed = time.perf_counter() - started
    return {
        "function": HOTPATH_FUNCTION,
        "policy": Policy.FAASNAP.value,
        "invocations": invocations,
        "ms_per_invocation": round(elapsed * 1000.0 / invocations, 2),
    }


#: The sharded-cluster entries. ``smoke`` is CI-sized: the
#: ``cluster-shard-smoke`` job runs it at shards=1 and shards=2 and
#: requires bit-identical invocation counts and latency checksums
#: (the cross-shard determinism contract), plus exact agreement with
#: the committed baseline. ``scale`` is the ISSUE's 64-host /
#: 100k-invocation target — far too slow for CI, gated behind
#: ``--sharded-scale``. Its latency checksum is shard-count-invariant
#: by the determinism contract, so one baseline gates every shard
#: count.
SHARDED_SMOKE = {
    "hosts": 8,
    "functions": 8,
    "shards": 2,
    "seed": 7,
    "duration_us": 60_000_000.0,
    "hot_interarrival_us": 2_000_000.0,
    "cold_interarrival_us": 60_000_000.0,
}

SHARDED_SCALE = {
    "hosts": 64,
    "functions": 16,
    "shards": 4,
    "seed": 42,
    "duration_us": 540_000_000.0,  # ~100k arrivals at this density
    "hot_interarrival_us": 20_000.0,
    "cold_interarrival_us": 1_000_000.0,
}

#: shards=4 must beat shards=1 by this factor — only meaningful (and
#: only asserted) when the box actually has >= 4 cores to run the
#: shard workers on.
SHARDED_SPEEDUP_FLOOR = 3.0


def run_sharded_cluster_workload(entry: dict, shards: int) -> dict:
    """Serve one sharded-cluster entry and return its metrics.

    The workload is fully determined by ``entry`` — ``shards`` only
    picks the execution topology, so invocations and the latency
    checksum must not depend on it.
    """
    from repro.cluster import ClusterConfig, ShardedClusterSimulator
    from repro.fleet.workload import generate_arrivals, synthesize_fleet

    fleet = synthesize_fleet(
        entry["functions"],
        seed=entry["seed"],
        profile_names=("json", "pyaes"),
        hot_interarrival_us=entry["hot_interarrival_us"],
        cold_interarrival_us=entry["cold_interarrival_us"],
    )
    trace = generate_arrivals(
        fleet, duration_us=entry["duration_us"], seed=entry["seed"]
    )
    config = ClusterConfig(
        num_hosts=entry["hosts"],
        placement="least-loaded",
        keep_alive_ttl_us=30_000_000.0,
    )
    started = time.perf_counter()
    simulator = ShardedClusterSimulator(fleet, config, shards=shards)
    report = simulator.run(trace)
    elapsed = time.perf_counter() - started
    return {
        "hosts": entry["hosts"],
        "shards": simulator.shards,
        "windows": simulator.windows_run,
        "invocations": report.count(),
        "latency_checksum_us": round(
            sum(s.latency_us for s in report.served), 3
        ),
        "wall_seconds": round(elapsed, 3),
        "invocations_per_sec": round(report.count() / elapsed, 2),
        "merged_metrics": simulator.merged_metrics,
    }


def _strip(metrics: dict) -> dict:
    return {k: v for k, v in metrics.items() if k != "merged_metrics"}


def check_sharded_smoke(report_out=None, baseline=None) -> int:
    """CI gate: shards=1 vs shards=2 parity on the smoke entry."""
    status = 0
    single = run_sharded_cluster_workload(SHARDED_SMOKE, shards=1)
    sharded = run_sharded_cluster_workload(
        SHARDED_SMOKE, shards=SHARDED_SMOKE["shards"]
    )
    for key, value in _strip(sharded).items():
        print(f"{'sharded.' + key:>26}: {value}")
    for exact_key in ("invocations", "latency_checksum_us"):
        if single[exact_key] != sharded[exact_key]:
            print(
                f"FAIL: sharded {exact_key} {sharded[exact_key]} != "
                f"single-shard {single[exact_key]} — the cross-shard "
                "merge is not deterministic",
                file=sys.stderr,
            )
            status = 1
    if single["merged_metrics"] != sharded["merged_metrics"]:
        print(
            "FAIL: merged telemetry differs between shards=1 and "
            f"shards={sharded['shards']}",
            file=sys.stderr,
        )
        status = 1
    smoke_baseline = (baseline or {}).get("smoke")
    if smoke_baseline is not None:
        for exact_key in ("invocations", "latency_checksum_us"):
            if sharded[exact_key] != smoke_baseline[exact_key]:
                print(
                    f"FAIL: sharded smoke {exact_key} "
                    f"{sharded[exact_key]} != baseline "
                    f"{smoke_baseline[exact_key]} — sharded cluster "
                    "behaviour changed",
                    file=sys.stderr,
                )
                status = 1
    if report_out is not None:
        artifact = {
            "entry": SHARDED_SMOKE,
            "single": _strip(single),
            "sharded": _strip(sharded),
            "parity": status == 0,
            "merged_metrics": sharded["merged_metrics"],
        }
        Path(report_out).write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"fleet report written to {report_out}")
    if status == 0:
        print(
            f"OK: sharded smoke parity — shards=1 and "
            f"shards={sharded['shards']} agree on "
            f"{sharded['invocations']} invocations, checksum "
            f"{sharded['latency_checksum_us']}, merged telemetry equal"
        )
    return status


def check_sharded_scale(shards, threshold, baseline=None) -> tuple:
    """The gated 64-host / 100k-invocation entry."""
    import os

    status = 0
    metrics = run_sharded_cluster_workload(SHARDED_SCALE, shards=shards)
    for key, value in _strip(metrics).items():
        print(f"{'sharded_scale.' + key:>30}: {value}")
    scale_baseline = (baseline or {}).get("scale")
    if scale_baseline is not None:
        # The checksum is shard-count-invariant, so these gates hold
        # for whatever --shards was requested.
        for exact_key in ("invocations", "latency_checksum_us"):
            if metrics[exact_key] != scale_baseline[exact_key]:
                print(
                    f"FAIL: sharded scale {exact_key} "
                    f"{metrics[exact_key]} != baseline "
                    f"{scale_baseline[exact_key]}",
                    file=sys.stderr,
                )
                status = 1
        floor = scale_baseline["invocations_per_sec"] * (1.0 - threshold)
        if metrics["invocations_per_sec"] < floor:
            print(
                f"FAIL: {metrics['invocations_per_sec']:.2f} sharded "
                f"invocations/sec is below {floor:.2f} (baseline "
                f"{scale_baseline['invocations_per_sec']:.2f} "
                f"- {threshold:.0%})",
                file=sys.stderr,
            )
            status = 1
    cores = os.cpu_count() or 1
    if shards > 1 and cores >= shards:
        single = run_sharded_cluster_workload(SHARDED_SCALE, shards=1)
        speedup = (
            metrics["invocations_per_sec"]
            / single["invocations_per_sec"]
        )
        print(f"{'sharded_scale.speedup':>30}: {speedup:.2f}x")
        if speedup < SHARDED_SPEEDUP_FLOOR:
            print(
                f"FAIL: shards={shards} is only {speedup:.2f}x the "
                f"single-shard run (floor {SHARDED_SPEEDUP_FLOOR}x)",
                file=sys.stderr,
            )
            status = 1
    elif shards > 1:
        print(
            f"note: {cores} core(s) < {shards} shards — skipping the "
            f"{SHARDED_SPEEDUP_FLOOR}x speedup assertion (it measures "
            "parallel hardware, which this box lacks)"
        )
    return status, metrics


#: The observability smoke: an armed 4-host fleet slice dense enough
#: to exercise crash, retry, and corruption events in the causal
#: trace. Small — it gates byte-identity, not throughput.
OBS_SMOKE_ARRIVALS = 60
OBS_SMOKE_SHARDS = 2


def _obs_smoke_inputs():
    from repro.cluster import ClusterConfig
    from repro.faults import FaultPlan, RecoveryPolicy
    from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

    fleet = [
        FleetFunction(
            name=f"f{i}", profile_name="json", mean_interarrival_us=1e6
        )
        for i in range(3)
    ]
    arrivals = [
        Arrival(time_us=i * 120_000.0, function=f"f{i % 3}")
        for i in range(OBS_SMOKE_ARRIVALS)
    ]
    trace = ArrivalTrace(
        arrivals=arrivals, duration_us=OBS_SMOKE_ARRIVALS * 120_000.0
    )
    plan = FaultPlan.from_dict(
        {
            "device_faults": [
                {
                    "scope": "*",
                    "start_us": 500_000.0,
                    "duration_us": 3_000_000.0,
                    "latency_factor": 40.0,
                    "error_rate": 0.6,
                }
            ],
            "host_crashes": [
                {
                    "host": "host1",
                    "at_us": 1_000_000.0,
                    "reboot_after_us": 2_000_000.0,
                }
            ],
            "corruptions": [
                {"host": "host2", "function": "f0", "at_us": 200_000.0}
            ],
        }
    )
    config = ClusterConfig(
        num_hosts=4, seed=7, recovery=RecoveryPolicy.full()
    )
    return fleet, trace, plan, config


def check_obs_smoke() -> int:
    """CI gate for the PR-9 observability plane.

    Two byte-level contracts:

    1. **Zero perturbation** — the cluster smoke workload with causal
       tracing + SLO monitoring + flight recording all on must match
       the all-off run's invocation count and latency checksum
       exactly.
    2. **Shard invariance** — an armed 4-host run (device brownout,
       host crash + reboot, latent corruption) traced at ``shards=1``
       and ``shards=2`` must serialize to byte-identical causal trace
       documents.
    """
    from repro.cluster import ShardedClusterSimulator
    from repro.metrics.causal import CausalTracer

    status = 0

    plain = run_cluster_workload()
    instrumented = run_cluster_workload(observability=True)
    for exact_key in ("invocations", "latency_checksum_us"):
        if instrumented[exact_key] != plain[exact_key]:
            print(
                f"FAIL: observability-on cluster {exact_key} "
                f"{instrumented[exact_key]} != observability-off "
                f"{plain[exact_key]} — the observability plane "
                "perturbed the simulation",
                file=sys.stderr,
            )
            status = 1
    print(
        f"{'obs.zero_perturbation':>26}: "
        f"{'FAIL' if status else 'ok'} "
        f"(checksum {plain['latency_checksum_us']}, "
        f"{instrumented['causal_events']} causal events, "
        f"{instrumented['slo_alerts']} alerts, "
        f"{instrumented['flight_recorded']} flight records)"
    )

    docs = {}
    for shards in (1, OBS_SMOKE_SHARDS):
        fleet, trace, plan, config = _obs_smoke_inputs()
        causal = CausalTracer()
        simulator = ShardedClusterSimulator(fleet, config, shards=shards)
        report = simulator.run(trace, fault_plan=plan, causal=causal)
        docs[shards] = causal.to_json()
        print(
            f"{'obs.sharded[%d].served' % shards:>26}: {report.count()} "
            f"({len(causal.all_events())} events)"
        )
    if docs[1] != docs[OBS_SMOKE_SHARDS]:
        print(
            f"FAIL: causal trace document differs between shards=1 and "
            f"shards={OBS_SMOKE_SHARDS} — the cross-shard causal merge "
            "is not deterministic",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print(
            "OK: observability smoke — all-on run bit-identical to "
            f"all-off, causal document byte-identical across "
            f"shards=1/{OBS_SMOKE_SHARDS} "
            f"({len(docs[1])} bytes)"
        )
    return status


def _durability_smoke_inputs():
    from repro.cluster import ClusterConfig
    from repro.faults import (
        DurabilityPolicy,
        FaultPlan,
        RecoveryPolicy,
    )
    from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

    fleet = [
        FleetFunction(
            name=f"f{i}", profile_name="json", mean_interarrival_us=1e6
        )
        for i in range(3)
    ]
    arrivals = [
        Arrival(time_us=i * 120_000.0, function=f"f{i % 3}")
        for i in range(OBS_SMOKE_ARRIVALS)
    ]
    trace = ArrivalTrace(
        arrivals=arrivals, duration_us=OBS_SMOKE_ARRIVALS * 120_000.0
    )
    plan = FaultPlan.from_dict(
        {
            "corruptions": [
                {"host": f"host{h}", "function": f"f{f}", "at_us": at}
                for h, f, at in (
                    (0, 0, 200_000.0),
                    (1, 1, 900_000.0),
                    (2, 2, 1_600_000.0),
                    (3, 0, 2_400_000.0),
                    (0, 1, 3_800_000.0),
                    (2, 0, 5_200_000.0),
                )
            ]
        }
    )
    config = ClusterConfig(
        num_hosts=4,
        seed=7,
        recovery=RecoveryPolicy.full(),
        durability=DurabilityPolicy(
            enabled=True,
            replicas=2,
            scrub_interval_us=1_500_000.0,
        ),
    )
    return fleet, trace, plan, config


def check_durability_smoke() -> int:
    """CI gate for the PR-10 durability subsystem.

    Two byte-level contracts:

    1. **Disabled means gone** — the cluster smoke workload with an
       explicit disabled :class:`DurabilityPolicy` must match the
       no-policy run's invocation count and latency checksum exactly
       (the legacy checksum behaviour is untouched).
    2. **Shard invariance** — a corruption-heavy 4-host run with
       durability (verified restores, 2 replicas, background scrub)
       at ``shards=1`` and ``shards=2`` must produce byte-identical
       detection/repair event streams and identical detection
       counters.
    """
    from repro.cluster import ShardedClusterSimulator
    from repro.faults import DurabilityPolicy

    status = 0

    plain = run_cluster_workload()
    disabled = run_cluster_workload(durability=DurabilityPolicy())
    for exact_key in ("invocations", "latency_checksum_us"):
        if disabled[exact_key] != plain[exact_key]:
            print(
                f"FAIL: disabled-durability cluster {exact_key} "
                f"{disabled[exact_key]} != no-policy "
                f"{plain[exact_key]} — verification-off is not "
                "bit-identical to the legacy path",
                file=sys.stderr,
            )
            status = 1
    print(
        f"{'durability.disabled_parity':>30}: "
        f"{'FAIL' if status else 'ok'} "
        f"(checksum {plain['latency_checksum_us']})"
    )

    streams = {}
    summaries = {}
    for shards in (1, OBS_SMOKE_SHARDS):
        fleet, trace, plan, config = _durability_smoke_inputs()
        simulator = ShardedClusterSimulator(fleet, config, shards=shards)
        report = simulator.run(trace, fault_plan=plan)
        streams[shards] = json.dumps(
            simulator.durability_events, sort_keys=True
        )
        summaries[shards] = {
            "invocations": report.count(),
            "latency_checksum_us": round(
                sum(s.latency_us for s in report.served), 3
            ),
            "detected": report.fault_summary.get(
                "corruptions_detected", 0
            ),
            "silent": report.fault_summary.get(
                "silent_corrupt_serves", 0
            ),
        }
        print(
            f"{'durability.sharded[%d]' % shards:>30}: "
            f"{report.count()} served, "
            f"{summaries[shards]['detected']} detected, "
            f"{len(simulator.durability_events)} durability events"
        )
    if streams[1] != streams[OBS_SMOKE_SHARDS]:
        print(
            f"FAIL: durability event stream differs between shards=1 "
            f"and shards={OBS_SMOKE_SHARDS} — the detection/repair "
            "plane is not shard-invariant",
            file=sys.stderr,
        )
        status = 1
    if summaries[1] != summaries[OBS_SMOKE_SHARDS]:
        print(
            f"FAIL: durability summaries differ between shards=1 and "
            f"shards={OBS_SMOKE_SHARDS}: {summaries[1]} != "
            f"{summaries[OBS_SMOKE_SHARDS]}",
            file=sys.stderr,
        )
        status = 1
    if summaries[1]["silent"]:
        print(
            f"FAIL: {summaries[1]['silent']} corrupted restore(s) "
            "served silently with verification on",
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print(
            "OK: durability smoke — disabled policy bit-identical to "
            "no policy, detection/repair stream byte-identical across "
            f"shards=1/{OBS_SMOKE_SHARDS} "
            f"({len(streams[1])} bytes, "
            f"{summaries[1]['detected']} detected, 0 silent)"
        )
    return status


def time_figures(names) -> dict:
    """Regenerate whole experiments; wall-clock seconds per id."""
    from repro.experiments import ALL_EXPERIMENTS

    timings = {}
    for name in names:
        module = ALL_EXPERIMENTS[name]
        started = time.perf_counter()
        module.run()
        timings[name] = round(time.perf_counter() - started, 2)
        print(f"{name:>16}: {timings[name]}s")
    return timings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixed workload, gated against BENCH_core.json",
    )
    parser.add_argument(
        "--figures",
        nargs="*",
        metavar="ID",
        help="also regenerate these experiments (default fig6 fig8) "
        "and report wall-clock per experiment",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured numbers to BENCH_core.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed events/sec regression fraction (default 0.30)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="full regression gate: --smoke plus the sharded-cluster "
        "parity smoke against the cluster_sharded baseline",
    )
    parser.add_argument(
        "--sharded-smoke",
        action="store_true",
        help="only the sharded-cluster parity smoke (shards=1 vs 2, "
        "bit-identical checksums and merged telemetry)",
    )
    parser.add_argument(
        "--obs-smoke",
        action="store_true",
        help="observability gate: all-on (causal+slo+flight) run must "
        "be bit-identical to all-off, and the causal trace document "
        "byte-identical across shard counts",
    )
    parser.add_argument(
        "--durability-smoke",
        action="store_true",
        help="durability gate: a disabled DurabilityPolicy must be "
        "bit-identical to no policy, and the detection/repair event "
        "stream byte-identical across shard counts",
    )
    parser.add_argument(
        "--sharded-scale",
        action="store_true",
        help="the gated 64-host / 100k-invocation cluster_sharded "
        "entry (slow; gated against BENCH_core.json)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=SHARDED_SCALE["shards"],
        help="shard count for --sharded-scale (default "
        f"{SHARDED_SCALE['shards']})",
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        help="with --sharded-smoke/--check: write the fleet-report "
        "JSON artifact here",
    )
    parser.add_argument(
        "--hotpath",
        action="store_true",
        help="restore-bookkeeping hot-path microbench (cold FAASNAP "
        "restores, ms/invocation); with --update records the number "
        "in the cluster_hotpath baseline entry",
    )
    args = parser.parse_args()

    if args.hotpath:
        metrics = run_hotpath_workload()
        for key, value in metrics.items():
            print(f"{'hotpath.' + key:>28}: {value}")
        full = (
            json.loads(BASELINE_PATH.read_text())
            if BASELINE_PATH.exists()
            else {}
        )
        entry = full.get("cluster_hotpath")
        if args.update:
            recorded = dict(metrics)
            if entry is not None and "before_ms_per_invocation" in entry:
                recorded["before_ms_per_invocation"] = entry[
                    "before_ms_per_invocation"
                ]
            full["cluster_hotpath"] = recorded
            BASELINE_PATH.write_text(json.dumps(full, indent=2) + "\n")
            print(f"cluster_hotpath baseline written to {BASELINE_PATH}")
            return 0
        if entry is not None:
            ceiling = entry["ms_per_invocation"] * (1.0 + args.threshold)
            if metrics["ms_per_invocation"] > ceiling:
                print(
                    f"FAIL: {metrics['ms_per_invocation']:.2f} ms/invocation "
                    f"is above {ceiling:.2f} (baseline "
                    f"{entry['ms_per_invocation']:.2f} + "
                    f"{args.threshold:.0%})",
                    file=sys.stderr,
                )
                return 1
            print(
                f"OK: hot path at {metrics['ms_per_invocation']:.2f} "
                f"ms/invocation (baseline "
                f"{entry['ms_per_invocation']:.2f})"
            )
        return 0

    sharded_baseline = None
    if BASELINE_PATH.exists():
        sharded_baseline = json.loads(BASELINE_PATH.read_text()).get(
            "cluster_sharded"
        )

    if args.sharded_smoke:
        return check_sharded_smoke(
            report_out=args.report_out, baseline=sharded_baseline
        )

    if args.obs_smoke:
        return check_obs_smoke()

    if args.durability_smoke:
        return check_durability_smoke()

    if args.sharded_scale:
        status, metrics = check_sharded_scale(
            args.shards, args.threshold, baseline=sharded_baseline
        )
        if args.update:
            full = (
                json.loads(BASELINE_PATH.read_text())
                if BASELINE_PATH.exists()
                else {}
            )
            section = full.setdefault("cluster_sharded", {})
            section["scale"] = _strip(metrics)
            section["scale"]["workload"] = SHARDED_SCALE
            section["speedup_floor"] = SHARDED_SPEEDUP_FLOOR
            BASELINE_PATH.write_text(json.dumps(full, indent=2) + "\n")
            print(f"cluster_sharded scale baseline written to {BASELINE_PATH}")
            return 0
        return status

    if args.check:
        args.smoke = True

    cells = SMOKE_CELLS if args.smoke else FULL_CELLS
    metrics = run_workload(cells)
    for key, value in metrics.items():
        print(f"{key:>16}: {value}")
    cluster_metrics = run_cluster_workload()
    for key, value in cluster_metrics.items():
        print(f"{'cluster.' + key:>26}: {value}")

    figure_timings = None
    if args.figures is not None:
        figure_timings = time_figures(args.figures or ["fig6", "fig8"])

    if args.update:
        baseline = {
            "smoke": metrics if args.smoke else run_workload(SMOKE_CELLS),
            "cluster": cluster_metrics,
        }
        if figure_timings is not None:
            baseline["experiments"] = {
                "wall_seconds": figure_timings,
                "note": "informational trajectory, not CI-gated",
            }
        elif BASELINE_PATH.exists():
            previous = json.loads(BASELINE_PATH.read_text())
            if "experiments" in previous:
                baseline["experiments"] = previous["experiments"]
        if BASELINE_PATH.exists():
            previous = json.loads(BASELINE_PATH.read_text())
            if "cluster_sharded" in previous:
                baseline["cluster_sharded"] = previous["cluster_sharded"]
        sharded_smoke = run_sharded_cluster_workload(
            SHARDED_SMOKE, shards=SHARDED_SMOKE["shards"]
        )
        baseline.setdefault("cluster_sharded", {})["smoke"] = _strip(
            sharded_smoke
        )
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not args.smoke:
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update", file=sys.stderr)
        return 2
    full_baseline = json.loads(BASELINE_PATH.read_text())
    baseline = full_baseline["smoke"]

    status = 0
    if metrics["events"] != baseline["events"]:
        print(
            f"FAIL: dispatched {metrics['events']} heap events, baseline "
            f"{baseline['events']} — simulated behaviour changed",
            file=sys.stderr,
        )
        status = 1
    floor = baseline["events_per_sec"] * (1.0 - args.threshold)
    if metrics["events_per_sec"] < floor:
        print(
            f"FAIL: {metrics['events_per_sec']:.0f} events/sec is below "
            f"{floor:.0f} (baseline {baseline['events_per_sec']:.0f} "
            f"- {args.threshold:.0%})",
            file=sys.stderr,
        )
        status = 1
    cluster_baseline = full_baseline.get("cluster")
    if cluster_baseline is None:
        print(
            "no cluster baseline in BENCH_core.json; run with --update",
            file=sys.stderr,
        )
        status = 1
    else:
        for exact_key in ("invocations", "latency_checksum_us"):
            if cluster_metrics[exact_key] != cluster_baseline[exact_key]:
                print(
                    f"FAIL: cluster {exact_key} {cluster_metrics[exact_key]} "
                    f"!= baseline {cluster_baseline[exact_key]} — cluster "
                    "behaviour changed",
                    file=sys.stderr,
                )
                status = 1
        cluster_floor = cluster_baseline["invocations_per_sec"] * (
            1.0 - args.threshold
        )
        if cluster_metrics["invocations_per_sec"] < cluster_floor:
            print(
                f"FAIL: {cluster_metrics['invocations_per_sec']:.2f} cluster "
                f"invocations/sec is below {cluster_floor:.2f} (baseline "
                f"{cluster_baseline['invocations_per_sec']:.2f} "
                f"- {args.threshold:.0%})",
                file=sys.stderr,
            )
            status = 1

    # Perturbation guard: the same cluster workload with the telemetry
    # gauge sampler enabled must produce bit-identical results —
    # instruments are pull-based, and the sampler's heap events only
    # flip fault services between the (bit-identical) fast and event
    # paths.
    telemetry_metrics = run_cluster_workload(sampler_interval_us=100_000.0)
    for exact_key in ("invocations", "latency_checksum_us"):
        if telemetry_metrics[exact_key] != cluster_metrics[exact_key]:
            print(
                f"FAIL: telemetry-enabled cluster {exact_key} "
                f"{telemetry_metrics[exact_key]} != telemetry-disabled "
                f"{cluster_metrics[exact_key]} — telemetry perturbed the "
                "simulation",
                file=sys.stderr,
            )
            status = 1

    # Fault-plane perturbation guard: the same workload with an armed
    # (but empty) fault plan runs the robust serving path — attempt
    # processes, race combinators, retry bookkeeping — and must still
    # produce bit-identical invocation counts and latency checksums.
    from repro.faults import FaultPlan

    armed_metrics = run_cluster_workload(fault_plan=FaultPlan.empty())
    for exact_key in ("invocations", "latency_checksum_us"):
        if armed_metrics[exact_key] != cluster_metrics[exact_key]:
            print(
                f"FAIL: fault-armed cluster {exact_key} "
                f"{armed_metrics[exact_key]} != unarmed "
                f"{cluster_metrics[exact_key]} — the empty fault plan "
                "perturbed the simulation",
                file=sys.stderr,
            )
            status = 1

    if args.check:
        status = (
            check_sharded_smoke(
                report_out=args.report_out, baseline=sharded_baseline
            )
            or status
        )
        status = check_obs_smoke() or status
        status = check_durability_smoke() or status

    if status == 0:
        print(
            f"OK: events/sec within {args.threshold:.0%} of baseline "
            f"({metrics['events_per_sec']:.0f} vs "
            f"{baseline['events_per_sec']:.0f}), event count exact; "
            f"cluster {cluster_metrics['invocations_per_sec']:.2f} inv/sec "
            f"({CLUSTER_HOSTS} hosts), checksums exact; telemetry and "
            "fault-plane perturbation guards passed"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
