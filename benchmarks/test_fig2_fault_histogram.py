"""Benchmark: regenerate Figure 2 (page-fault time distribution)."""

from repro.core.policies import Policy
from repro.experiments import fig2_fault_histogram


def test_fig2_fault_histogram(bench_once):
    result = bench_once(fig2_fault_histogram.run)
    print()
    print(fig2_fault_histogram.format_table(result))

    systems = result.systems
    warm = systems[Policy.WARM]
    cached = systems[Policy.CACHED]
    firecracker = systems[Policy.FIRECRACKER]
    reap = systems[Policy.REAP]

    # Snapshot systems all fault on the same first-touch set; warm
    # only faults on pages the record invocation never touched
    # (paper: ~4k warm vs ~9k snapshot faults for image-diff).
    assert warm.count < cached.count
    assert cached.count == firecracker.count == reap.count

    # Mean handling times order as in 3.3: warm < cached < reap <
    # firecracker (paper: 2.5 / 3.7 / 6.7 / 13.3 us).
    assert warm.mean_us < cached.mean_us
    assert cached.mean_us < reap.mean_us < firecracker.mean_us

    # Total fault time orders the same way (paper: 12/35/56/120 ms).
    assert warm.total_ms < cached.total_ms
    assert cached.total_ms < reap.total_ms < firecracker.total_ms

    # Cached has no slow (>32 us) faults; Firecracker and REAP do.
    def slow_faults(system):
        return sum(
            count
            for label, count in system.histogram.buckets()
            if label in ("[32,64)", "[64,128)", "[128,256)", "[256,512)", ">=512")
        )

    assert slow_faults(cached) == 0
    assert slow_faults(firecracker) > 0
    assert slow_faults(reap) > 0

    # Warm faults concentrate below 4 us (paper: >90% under 4 us).
    fast_warm = sum(
        count
        for label, count in warm.histogram.buckets()
        if label in ("[0.5,1)", "[1,2)", "[2,4)")
    )
    assert fast_warm / warm.count > 0.9
