#!/usr/bin/env python3
"""Burst scheduling: choosing a restore policy for bursty traffic.

Scenario from the paper's introduction (§6.6, §7.1): an IoT backend
receives sudden bursts of parallel invocations of the same function.
Keeping warm VMs for the worst-case burst wastes memory; cold boots
are too slow. This example sweeps burst sizes under Firecracker, REAP
and FaaSnap and shows why FaaSnap's page-cache-friendly loading makes
it the right choice for both same-application bursts (snapshot files
shared) and multi-application bursts (all different snapshots).

Run:  python examples/burst_scheduler.py [--max-parallelism 16]
"""

import argparse
import dataclasses

from repro.core import FaaSnapPlatform, Policy
from repro.core.restore import PlatformConfig
from repro.metrics import mean, render_table
from repro.workloads import get_profile
from repro.workloads.base import INPUT_A


def sweep(same_snapshot: bool, parallelisms, function_name: str):
    """Mean total latency per policy and burst size."""
    config = PlatformConfig()
    config = dataclasses.replace(config, cpu_slots=config.host.cpu_slots)
    rows = []
    for policy in (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP):
        platform = FaaSnapPlatform(config)
        function = platform.register_function(get_profile(function_name))
        clones = (
            platform.make_clones(function, max(parallelisms))
            if not same_snapshot
            else None
        )
        row = [policy.value]
        for parallelism in parallelisms:
            results = platform.invoke_burst(
                function,
                INPUT_A,
                policy,
                parallelism=parallelism,
                same_snapshot=same_snapshot,
                clones=clones,
            )
            row.append(mean([r.total_ms for r in results]))
        rows.append(row)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-parallelism", type=int, default=16)
    parser.add_argument("--function", default="hello-world")
    args = parser.parse_args()

    parallelisms = [p for p in (1, 4, 16, 64) if p <= args.max_parallelism]
    headers = ["policy"] + [f"burst={p}_ms" for p in parallelisms]

    same = sweep(True, parallelisms, args.function)
    print(
        render_table(
            headers,
            same,
            title=f"{args.function}: burst of one application (same snapshot)",
        )
    )
    print()
    diff = sweep(False, parallelisms, args.function)
    print(
        render_table(
            headers,
            diff,
            title=f"{args.function}: burst of many applications (different snapshots)",
        )
    )

    print()
    print("Scheduling takeaways (mirroring paper §6.6/§7.1):")
    print(
        " * same snapshot: FaaSnap reads the loading set once and every"
        " other VM hits the shared page cache; REAP bypasses the cache"
        " and re-reads its working set per VM."
    )
    print(
        " * different snapshots: Firecracker's scattered on-demand reads"
        " multiply with the burst size; FaaSnap's sequential loading-set"
        " reads keep the disk efficient."
    )


if __name__ == "__main__":
    main()
