#!/usr/bin/env python3
"""Quickstart: invoke one function under every restore policy.

Registers the paper's `json` function, runs its record phase once per
policy family, then measures a test-phase invocation with a changed
input under each policy — the core comparison of the FaaSnap paper in
a dozen lines.

Run:  python examples/quickstart.py
"""

from repro.core import FaaSnapPlatform, Policy
from repro.host.fault import FaultKind
from repro.metrics import render_table
from repro.workloads import get_profile
from repro.workloads.base import INPUT_A


def main() -> None:
    platform = FaaSnapPlatform()
    function = platform.register_function(get_profile("json"))

    # Input B: different content and larger than the recorded input A
    # (the realistic case — inputs change between invocations).
    input_b = function.profile.input_b()

    policies = [
        Policy.WARM,
        Policy.FIRECRACKER,
        Policy.CACHED,
        Policy.REAP,
        Policy.FAASNAP,
    ]
    rows = []
    for policy in policies:
        result = platform.invoke(
            function, input_b, policy, record_input=INPUT_A
        )
        rows.append(
            [
                policy.value,
                result.setup_us / 1000,
                result.invoke_us / 1000,
                result.total_ms,
                result.fault_count(),
                result.major_faults,
                result.fault_count(FaultKind.UFFD),
                result.fault_time_us / 1000,
            ]
        )

    print(
        render_table(
            [
                "policy",
                "setup_ms",
                "invoke_ms",
                "total_ms",
                "faults",
                "majors",
                "uffd",
                "fault_time_ms",
            ],
            rows,
            title="json: record input A, invoke with input B",
        )
    )

    faasnap = next(r for r in rows if r[0] == "faasnap")
    firecracker = next(r for r in rows if r[0] == "firecracker")
    reap = next(r for r in rows if r[0] == "reap")
    print()
    print(
        f"FaaSnap is {firecracker[3] / faasnap[3]:.1f}x faster than stock "
        f"Firecracker snapshots and {reap[3] / faasnap[3]:.1f}x faster than "
        "REAP on this changed-input invocation."
    )


if __name__ == "__main__":
    main()
