#!/usr/bin/env python3
"""Fleet economics: where snapshots pay off (paper §2.1, §7.1).

Synthesizes a fleet of functions with an Azure-like invocation
frequency distribution, measures each function's warm / snapshot /
cold costs with the page-level simulator, then replays hours of
arrivals through a keep-alive scheduler under a memory budget. The
output shows the paper's argument in numbers: snapshots replace cold
starts for the mid-frequency tail, and a better restore path
(FaaSnap vs stock Firecracker) directly improves fleet tail latency.

Run:  python examples/fleet_simulation.py [--functions 200] [--hours 6]
"""

import argparse

from repro.core.policies import Policy
from repro.fleet import (
    CostModel,
    FleetConfig,
    FleetSimulator,
    StartKind,
    generate_arrivals,
    synthesize_fleet,
)
from repro.fleet.workload import US_PER_HOUR, US_PER_MINUTE, frequency_quantiles
from repro.metrics import render_table

#: Small profiles keep the cost-measurement phase quick.
PROFILES = ("json", "pyaes", "compression", "chameleon", "image")


def simulate(fleet, trace, cost_model, restore_policy, snapshots, ttl_min):
    config = FleetConfig(
        restore_policy=restore_policy,
        keep_alive_ttl_us=ttl_min * US_PER_MINUTE,
        memory_budget_mb=8_192.0,
        snapshots_enabled=snapshots,
    )
    costs = {
        f.name: cost_model.costs(f.profile_name, restore_policy)
        for f in fleet
    }
    simulator = FleetSimulator(fleet, config, costs=costs)
    return simulator.run(trace)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--functions", type=int, default=120)
    parser.add_argument("--hours", type=float, default=4.0)
    parser.add_argument("--ttl-minutes", type=float, default=15.0)
    args = parser.parse_args()

    fleet = synthesize_fleet(
        args.functions, seed=11, profile_names=PROFILES
    )
    quantiles = frequency_quantiles(fleet)
    trace = generate_arrivals(fleet, args.hours * US_PER_HOUR, seed=11)
    print(
        f"fleet: {args.functions} functions, "
        f"{quantiles['at_least_hourly']:.0%} invoked at least hourly, "
        f"{quantiles['at_least_minutely']:.0%} at least every minute "
        "(paper quotes <50% / <10%)"
    )
    print(f"trace: {len(trace)} invocations over {args.hours:g} h\n")

    cost_model = CostModel()
    scenarios = [
        ("cold-only (no snapshots)", Policy.FAASNAP, False),
        ("firecracker snapshots", Policy.FIRECRACKER, True),
        ("reap snapshots", Policy.REAP, True),
        ("faasnap snapshots", Policy.FAASNAP, True),
    ]
    rows = []
    for label, policy, snapshots in scenarios:
        report = simulate(
            fleet, trace, cost_model, policy, snapshots, args.ttl_minutes
        )
        rows.append(
            [
                label,
                report.mean_latency_us() / 1000,
                report.latency_percentile(99) / 1000,
                report.fraction(StartKind.WARM) * 100,
                report.fraction(StartKind.SNAPSHOT) * 100,
                report.fraction(StartKind.COLD) * 100,
                report.mean_memory_mb() / 1024,
            ]
        )
    print(
        render_table(
            [
                "platform",
                "mean_ms",
                "p99_ms",
                "warm_%",
                "snap_%",
                "cold_%",
                "mem_GB",
            ],
            rows,
            title=f"Fleet serving with {args.ttl_minutes:g}-minute keep-alive",
        )
    )

    print()
    ttl_rows = []
    for ttl in (1.0, 5.0, 15.0, 60.0):
        report = simulate(fleet, trace, cost_model, Policy.FAASNAP, True, ttl)
        ttl_rows.append(
            [
                f"{ttl:g} min",
                report.mean_latency_us() / 1000,
                report.fraction(StartKind.WARM) * 100,
                report.mean_memory_mb() / 1024,
            ]
        )
    print(
        render_table(
            ["keep-alive", "mean_ms", "warm_%", "mem_GB"],
            ttl_rows,
            title="Keep-alive TTL vs memory (FaaSnap snapshots)",
        )
    )


if __name__ == "__main__":
    main()
