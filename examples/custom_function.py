#!/usr/bin/env python3
"""Onboarding a custom function and inspecting FaaSnap's artefacts.

Models a thumbnail-rendering service that is not in the paper's
benchmark set: a modest runtime, a font/asset cache read per request,
and per-request decode buffers that are freed afterwards. The example
walks the full FaaSnap lifecycle — record phase, working-set groups,
loading-set construction, per-region mapping plan — and prints what
each technique contributed, the visibility a platform operator would
want before enabling snapshots for a new function.

Run:  python examples/custom_function.py
"""

from repro.core import FaaSnapPlatform, Policy
from repro.core.mapping import build_faasnap_plan
from repro.metrics import render_table
from repro.workloads.base import INPUT_A, InputSpec, WorkloadProfile

THUMBNAILER = WorkloadProfile(
    name="thumbnailer",
    description="render image thumbnails with a cached font/asset pack",
    core_pages=2_000,  # interpreter + imaging library
    var_base_pages=900,  # codec paths depend on the input image
    var_pool_pages=3_600,
    data_pages=5_000,  # ~20 MB resident asset/font pack
    data_read_pages=2_500,  # half of it read per request
    anon_base_pages=1_200,  # decode buffers
    anon_free_fraction=0.95,  # buffers die with the request
    compute_base_us=80_000.0,
    spread_factor=6.0,
    input_b_ratio=1.5,
)


def main() -> None:
    platform = FaaSnapPlatform()
    function = platform.register_function(THUMBNAILER)

    # --- record phase -------------------------------------------------
    artifacts = platform.ensure_record(function, INPUT_A, Policy.FAASNAP)
    ws = artifacts.ws_groups
    ls = artifacts.loading_set
    print("Record phase (input A):")
    print(f"  working set (host page recording): {len(ws)} pages "
          f"({ws.size_mb():.1f} MB) in {ws.num_groups} groups")
    print(f"  loading set: {ls.essential_pages} essential pages, "
          f"{ls.unmerged_region_count} regions before merging, "
          f"{ls.region_count} after (gap<=32), "
          f"+{ls.gap_pages} filler pages ({ls.size_mb:.1f} MB file)")
    freed = len(artifacts.record_trace.freed_pages)
    print(f"  released set: {freed} freed pages sanitized to zero -> "
          "served by anonymous memory next time")

    # --- mapping plan ---------------------------------------------------
    plan = build_faasnap_plan(
        artifacts.warm_snapshot, ls, artifacts.loading_file
    )
    anonymous = sum(1 for d in plan.directives if d.is_anonymous)
    to_memory = sum(
        1
        for d in plan.directives
        if not d.is_anonymous
        and d.file is artifacts.warm_snapshot.memory_file
    )
    to_loading = len(plan) - anonymous - to_memory
    print()
    print("Per-region mapping plan (paper Figure 4):")
    print(f"  layer 1: {anonymous} anonymous base mapping")
    print(f"  layer 2: {to_memory} non-zero regions -> memory file")
    print(f"  layer 3: {to_loading} loading regions -> loading-set file")

    # --- working-set quality ------------------------------------------------
    from repro.core.analysis import faasnap_coverage, reap_coverage

    reap_artifacts = platform.ensure_record(function, INPUT_A, Policy.REAP)
    drifted = InputSpec(content_id=2, size_ratio=1.5)
    ours = faasnap_coverage(artifacts, drifted)
    theirs = reap_coverage(reap_artifacts, drifted)
    print()
    print("Working-set quality against a 1.5x different-content input:")
    print(
        f"  FaaSnap: {ours.coverage:.0%} coverage, {ours.waste:.0%} of "
        f"prefetch unused, {ours.miss_pages} slow-path pages"
    )
    print(
        f"  REAP:    {theirs.coverage:.0%} coverage, {theirs.waste:.0%} of "
        f"prefetch unused, {theirs.miss_pages} slow-path pages"
    )

    # --- measured invocations ----------------------------------------------
    input_b = InputSpec(content_id=2, size_ratio=1.5)
    rows = []
    for policy in (
        Policy.FIRECRACKER,
        Policy.REAP,
        Policy.FAASNAP,
        Policy.CACHED,
    ):
        result = platform.invoke(
            function, input_b, policy, record_input=INPUT_A
        )
        rows.append(
            [
                policy.value,
                result.total_ms,
                result.major_faults,
                result.fault_time_us / 1000,
                result.fetch_bytes / 1e6,
            ]
        )
    print()
    print(
        render_table(
            ["policy", "total_ms", "majors", "fault_time_ms", "fetch_MB"],
            rows,
            title="thumbnailer: invoke with a 1.5x, different-content input",
        )
    )


if __name__ == "__main__":
    main()
