#!/usr/bin/env python3
"""Regenerate any table or figure from the paper's evaluation.

Usage:
    python examples/paper_figures.py table2 fig1 fig9
    python examples/paper_figures.py all            # everything (slow)
    python examples/paper_figures.py fig8 --quick   # reduced sweep

``--quick`` trims the heaviest experiments (fewer functions / ratios /
burst sizes) while keeping every system and every mechanism in play.
"""

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS

#: Reduced arguments per experiment for --quick runs.
QUICK_ARGS = {
    "fig1": {"functions": ["hello-world", "image"]},
    "fig6": {"functions": ["json", "image", "chameleon"]},
    "fig7": {"functions": ["hello-world"]},
    "fig8": {"functions": ["json", "image"], "ratios": (0.5, 1.0, 2.0)},
    "fig10": {"functions": ("hello-world",), "parallelisms": (1, 4, 16)},
    "fig11": {"functions": ["hello-world", "json", "image"]},
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced parameter sweeps"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent cells (bit-identical "
        "to serial; 0/1 serial, -1 one per CPU)",
    )
    args = parser.parse_args()

    names = (
        list(ALL_EXPERIMENTS)
        if "all" in args.experiments
        else args.experiments
    )
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    for name in names:
        module = ALL_EXPERIMENTS[name]
        kwargs = QUICK_ARGS.get(name, {}) if args.quick else {}
        started = time.time()
        result = module.run(jobs=args.jobs, **kwargs)
        elapsed = time.time() - started
        print(module.format_table(result))
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
