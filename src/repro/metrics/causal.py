"""End-to-end causal invocation traces.

Single-host span trees (:mod:`repro.metrics.tracing`) show where one
attempt's time goes, but a cluster invocation is a *story*: routed,
placed, admitted, maybe retried on another host (``attempt=N``),
maybe hedged (with a winner and cancelled losers), maybe caught in a
host crash and redispatched. This module records that story as a
flat, deterministic event log and assembles it into one canonical
trace document per run.

The design is constrained by two contracts the cluster plane already
pins with exact checksums:

* **Zero perturbation** — recording must not create simulation
  events, draw from any RNG, or change event ordering. Every API
  here is plain-Python bookkeeping on the side of the heap.
* **Shard invariance** — ``shards=1`` and ``shards=N`` must produce
  a *byte-identical* merged document. Events therefore carry a
  ``(src, seq)`` origin stamp: ``src`` is the emitting component
  (host index, or ``-1`` for the router/scheduler) and ``seq`` is a
  per-source monotone counter. Host-side events are functions of
  that host's own event history (shard-invariant by the existing
  sharding contract); router-side events are functions of the
  barrier digests. Sorting each invocation's events by
  ``(t_us, src, seq)`` then yields the same byte stream no matter
  how hosts were packed into worker processes.

Wire safety: :class:`TraceEvent` is a frozen dataclass of scalars
(detail is a sorted tuple of key/value pairs), so shard workers can
ship drained event batches through their result pipes unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

CAUSAL_SCHEMA = "repro.causal-trace/1"

#: ``src`` stamp for events emitted by the router / single-heap
#: scheduler rather than by a host.
ROUTER_SRC = -1

_SCALARS = (str, int, float, bool, type(None))


def _canon_value(value: Any) -> Any:
    """Normalize a detail value to a hashable, picklable scalar (or
    tuple of scalars)."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canon_value(v) for v in value)
    raise TypeError(
        f"trace event detail must be scalar, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class TraceEvent:
    """One causal event in an invocation's story.

    ``detail`` is a key-sorted tuple of ``(key, value)`` pairs so the
    event is hashable, picklable, and canonical — two emitters
    passing the same kwargs produce equal events.
    """

    inv_id: int
    t_us: float
    src: int
    seq: int
    kind: str
    detail: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> dict:
        def jsonify(v):
            return list(v) if isinstance(v, tuple) else v

        return {
            "t_us": self.t_us,
            "src": self.src,
            "seq": self.seq,
            "kind": self.kind,
            "detail": {k: jsonify(v) for k, v in self.detail},
        }


class CausalRecorder:
    """Per-source event emitter with a monotone sequence counter.

    Each emitting component (one per host, one for the router) owns a
    recorder; the ``(src, seq)`` stamp it assigns makes the merged
    ordering independent of how emitters were packed into processes.
    Shard workers :meth:`drain` their recorder into every barrier
    digest; recorders created through :meth:`CausalTracer.recorder`
    feed the tracer directly and are never drained.
    """

    def __init__(self, src: int):
        self.src = src
        self.events: List[TraceEvent] = []
        self._seq = 0

    # Positional-only markers keep detail keys like ``kind=`` from
    # colliding with the event's own fields.
    def emit(
        self, inv_id: int, t_us: float, kind: str, /, **detail: Any
    ) -> None:
        pairs = tuple(
            (key, _canon_value(value)) for key, value in sorted(detail.items())
        )
        self.events.append(
            TraceEvent(
                inv_id=inv_id,
                t_us=t_us,
                src=self.src,
                seq=self._seq,
                kind=kind,
                detail=pairs,
            )
        )
        self._seq += 1

    def drain(self) -> Tuple[TraceEvent, ...]:
        """Return and clear buffered events (sequence keeps counting)."""
        out = tuple(self.events)
        self.events.clear()
        return out


class TraceContext:
    """An invocation's handle into the causal log.

    Created at dispatch and threaded through serving, admission,
    attempts, retries, and hedges; every layer that touches the
    invocation emits through the same context, so the story reads in
    one place.
    """

    __slots__ = ("recorder", "inv_id")

    def __init__(self, recorder: CausalRecorder, inv_id: int):
        self.recorder = recorder
        self.inv_id = inv_id

    def emit(self, t_us: float, kind: str, /, **detail: Any) -> None:
        self.recorder.emit(self.inv_id, t_us, kind, **detail)

    def emit_phases(self, span, epoch_us: float, depth: int = 0) -> None:
        """Fold a restore-phase span tree into ``phase`` events.

        Each span becomes one event at its (serving-relative) start
        time, carrying name, nesting depth, and duration. Still-open
        spans (an attempt cancelled mid-restore) carry
        ``open=True`` and no duration.
        """
        closed = span.end_us is not None
        detail: Dict[str, Any] = {
            "name": span.name,
            "depth": depth,
            "duration_us": (
                span.end_us - span.start_us if closed else None
            ),
        }
        if not closed:
            detail["open"] = True
        self.emit(span.start_us - epoch_us, "phase", **detail)
        for child in span.children:
            self.emit_phases(child, epoch_us, depth + 1)


class CausalTracer:
    """Assembles per-source event streams into one canonical document.

    The run driver (CLI, service, benchmark) owns one tracer; it
    registers invocations as they are routed, collects host events
    (directly via :meth:`recorder` views in single-heap mode, or via
    :meth:`extend` from shard digests), and renders the merged
    document with :meth:`document` / :meth:`to_json`.
    """

    def __init__(self) -> None:
        self._invocations: Dict[int, Tuple[str, float]] = {}
        self._events: List[TraceEvent] = []
        self._recorders: List[CausalRecorder] = []

    def recorder(self, src: int) -> CausalRecorder:
        """A recorder whose events feed this tracer without draining."""
        rec = CausalRecorder(src)
        self._recorders.append(rec)
        return rec

    def register(self, inv_id: int, function: str, arrival_us: float) -> None:
        self._invocations[inv_id] = (function, arrival_us)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Fold in events shipped from another process (shard digests)."""
        self._events.extend(events)

    def all_events(self) -> List[TraceEvent]:
        events = list(self._events)
        for rec in self._recorders:
            events.extend(rec.events)
        return events

    def document(self) -> dict:
        """The merged causal trace: invocations sorted by id, each
        invocation's events sorted by ``(t_us, src, seq)``.

        Both sort keys are pure functions of per-source event
        histories, so the document is byte-identical across shard
        counts once serialized canonically.
        """
        per_inv: Dict[int, List[TraceEvent]] = {
            inv_id: [] for inv_id in self._invocations
        }
        for event in self.all_events():
            per_inv.setdefault(event.inv_id, []).append(event)
        invocations = []
        for inv_id in sorted(per_inv):
            function, arrival_us = self._invocations.get(inv_id, ("?", None))
            events = sorted(
                per_inv[inv_id], key=lambda e: (e.t_us, e.src, e.seq)
            )
            invocations.append(
                {
                    "inv_id": inv_id,
                    "function": function,
                    "arrival_us": arrival_us,
                    "events": [e.to_dict() for e in events],
                }
            )
        return {"schema": CAUSAL_SCHEMA, "invocations": invocations}

    def to_json(self) -> str:
        return json.dumps(self.document(), indent=2, sort_keys=True)


def invocation_kinds(doc: dict, inv_id: int) -> List[str]:
    """Event kinds of one invocation, in causal order (test helper)."""
    for inv in doc["invocations"]:
        if inv["inv_id"] == inv_id:
            return [e["kind"] for e in inv["events"]]
    raise KeyError(f"invocation {inv_id} not in trace document")


def find_invocations(doc: dict, *kinds: str) -> List[int]:
    """Invocation ids whose event stream contains every ``kind``."""
    out = []
    for inv in doc["invocations"]:
        have = {e["kind"] for e in inv["events"]}
        if all(k in have for k in kinds):
            out.append(inv["inv_id"])
    return out


def render_invocation(doc: dict, inv_id: int) -> str:
    """Human-readable rendering of one invocation's causal story."""
    for inv in doc["invocations"]:
        if inv["inv_id"] == inv_id:
            lines = [
                f"inv {inv_id} function={inv['function']} "
                f"arrival={inv['arrival_us']}"
            ]
            for e in inv["events"]:
                detail = " ".join(
                    f"{k}={v}" for k, v in sorted(e["detail"].items())
                )
                src = "router" if e["src"] == ROUTER_SRC else f"host{e['src']}"
                lines.append(
                    f"  {e['t_us'] / 1000:10.3f} ms  [{src}] "
                    f"{e['kind']}{(' ' + detail) if detail else ''}"
                )
            return "\n".join(lines)
    raise KeyError(f"invocation {inv_id} not in trace document")
