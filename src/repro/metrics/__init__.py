"""Measurement helpers: statistics, telemetry, tracing, exporters.

Stands in for the paper's bpftrace/perf tooling (§3.1, §6.4): the
simulation already records every fault, so this package only
aggregates — log-scale histograms for Figure 2, mean/std summaries
for the execution-time figures, fixed-width text tables the benchmark
harness prints, plus the unified telemetry layer (typed instruments
in a :class:`MetricsRegistry`, a virtual-time :class:`Sampler`, a
sim-kernel :class:`Profiler`) and its Prometheus/JSON/Chrome-trace
exporters.
"""

from repro.metrics.stats import (
    Histogram,
    fault_time_histogram,
    geometric_mean,
    mean,
    stddev,
)
from repro.metrics.report import render_bars, render_table
from repro.metrics.telemetry import (
    Counter,
    Gauge,
    HistogramInstrument,
    HostTelemetry,
    MetricsRegistry,
    Profiler,
    PullCounter,
    Sampler,
    render_run_report,
)
from repro.metrics.exporters import (
    causal_to_chrome_trace,
    merge_shard_snapshots,
    parse_prometheus,
    registry_snapshot,
    to_chrome_trace,
    to_json_doc,
    to_prometheus,
)
from repro.metrics.causal import (
    CausalRecorder,
    CausalTracer,
    TraceContext,
    TraceEvent,
)
from repro.metrics.slo import (
    BurnRateRule,
    SloMonitor,
    SloObjective,
    render_slo_status,
)
from repro.metrics.flight import FlightRecorder, render_postmortem

__all__ = [
    "BurnRateRule",
    "CausalRecorder",
    "CausalTracer",
    "Counter",
    "FlightRecorder",
    "SloMonitor",
    "SloObjective",
    "TraceContext",
    "TraceEvent",
    "causal_to_chrome_trace",
    "render_postmortem",
    "Gauge",
    "Histogram",
    "HistogramInstrument",
    "HostTelemetry",
    "MetricsRegistry",
    "Profiler",
    "PullCounter",
    "Sampler",
    "fault_time_histogram",
    "geometric_mean",
    "mean",
    "merge_shard_snapshots",
    "parse_prometheus",
    "registry_snapshot",
    "render_bars",
    "render_run_report",
    "render_slo_status",
    "render_table",
    "stddev",
    "to_chrome_trace",
    "to_json_doc",
    "to_prometheus",
]
