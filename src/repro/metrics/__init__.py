"""Measurement helpers: statistics, histograms, and table rendering.

Stands in for the paper's bpftrace/perf tooling (§3.1, §6.4): the
simulation already records every fault, so this package only
aggregates — log-scale histograms for Figure 2, mean/std summaries
for the execution-time figures, and fixed-width text tables the
benchmark harness prints.
"""

from repro.metrics.stats import (
    Histogram,
    fault_time_histogram,
    geometric_mean,
    mean,
    stddev,
)
from repro.metrics.report import render_bars, render_table

__all__ = [
    "Histogram",
    "fault_time_histogram",
    "geometric_mean",
    "mean",
    "render_bars",
    "render_table",
    "stddev",
]
