"""SLO monitoring with multi-window burn-rate alerts.

Evaluates latency and availability objectives over the *virtual*
clock: every served invocation is an SLI sample, rolling windows are
spans of simulated time, and an alert fires when the error-budget
burn rate exceeds a rule's factor in **both** a long and a short
window (the classic SRE fast-burn/slow-burn pair — the long window
gives confidence the burn is real, the short window makes the alert
reset quickly once the incident ends).

Burn rate is ``bad_fraction / (1 - target)``: 1.0 means the error
budget is being consumed exactly at the rate that exhausts it at the
objective horizon; 14.4 (the fast-rule default) means a 5-minute
window is burning budget 14.4x too fast.

Everything here is passive bookkeeping fed from the scheduler's
served stream — no simulation events, no RNG draws — so an enabled
monitor leaves the cluster latency checksum bit-identical (the
zero-perturbation contract). Alert *evaluation* happens inline at
each observation, which is what makes replay deterministic: the
journal records only the ``slo-status`` commands, and re-running the
same served stream reproduces the same alerts at the same virtual
times.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

SLO_SCHEMA = "repro.slo-status/1"


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective.

    ``kind`` is ``"availability"`` (good = invocation did not fail or
    shed) or ``"latency"`` (good = succeeded within ``threshold_us``).
    ``target`` is the good-fraction objective, e.g. 0.999.
    """

    name: str
    kind: str
    target: float
    threshold_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.kind == "latency" and (
            self.threshold_us is None or self.threshold_us <= 0
        ):
            raise ValueError("latency objectives need a positive threshold")

    def good(self, latency_us: float, ok: bool) -> bool:
        if self.kind == "availability":
            return ok
        return ok and latency_us <= self.threshold_us

    def to_dict(self) -> dict:
        d: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
        }
        if self.threshold_us is not None:
            d["threshold_ms"] = self.threshold_us / 1000.0
        return d


@dataclass(frozen=True)
class BurnRateRule:
    """A long/short window pair and the burn factor that trips it."""

    name: str
    long_us: float
    short_us: float
    factor: float

    def __post_init__(self) -> None:
        if self.short_us <= 0 or self.long_us < self.short_us:
            raise ValueError("need 0 < short window <= long window")
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "long_window_ms": self.long_us / 1000.0,
            "short_window_ms": self.short_us / 1000.0,
            "factor": self.factor,
        }


#: The SRE-style default pair: a fast burn over a 5-minute window
#: (30 s confirmation) pages immediately; a slow burn over an hour
#: (5 min confirmation) catches budget leaks.
DEFAULT_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("fast", long_us=300e6, short_us=30e6, factor=14.4),
    BurnRateRule("slow", long_us=3_600e6, short_us=300e6, factor=6.0),
)

DEFAULT_OBJECTIVES: Tuple[SloObjective, ...] = (
    SloObjective("availability", "availability", target=0.999),
    SloObjective(
        "latency-500ms", "latency", target=0.99, threshold_us=500_000.0
    ),
)


class _Window:
    """Rolling good/bad counts over a span of virtual time."""

    __slots__ = ("span_us", "samples", "good", "total")

    def __init__(self, span_us: float):
        self.span_us = span_us
        self.samples: deque = deque()
        self.good = 0
        self.total = 0

    def add(self, t_us: float, good: bool) -> None:
        self.samples.append((t_us, good))
        self.total += 1
        if good:
            self.good += 1

    def advance(self, now_us: float) -> None:
        cutoff = now_us - self.span_us
        samples = self.samples
        while samples and samples[0][0] <= cutoff:
            _, was_good = samples.popleft()
            self.total -= 1
            if was_good:
                self.good -= 1

    def burn(self, target: float) -> float:
        if self.total == 0:
            return 0.0
        bad_fraction = (self.total - self.good) / self.total
        return bad_fraction / (1.0 - target)


class SloMonitor:
    """Feeds SLI samples into per-objective burn windows and raises
    deduplicated multi-window alerts.

    An alert is a rising edge: it fires when a rule's burn condition
    becomes true for an objective and re-arms only after the
    condition clears (the short window draining is what clears it —
    that's the hysteresis).
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective] = DEFAULT_OBJECTIVES,
        rules: Sequence[BurnRateRule] = DEFAULT_RULES,
    ):
        if not objectives:
            raise ValueError("need at least one objective")
        if not rules:
            raise ValueError("need at least one burn-rate rule")
        self.objectives = tuple(objectives)
        self.rules = tuple(rules)
        # windows[obj_name][rule_name] = (long, short)
        self._windows: Dict[str, Dict[str, Tuple[_Window, _Window]]] = {
            o.name: {
                r.name: (_Window(r.long_us), _Window(r.short_us))
                for r in self.rules
            }
            for o in self.objectives
        }
        self._active: Dict[Tuple[str, str], bool] = {
            (o.name, r.name): False
            for o in self.objectives
            for r in self.rules
        }
        self.alerts: List[dict] = []
        self.observed = 0
        self.bad: Dict[str, int] = {o.name: 0 for o in self.objectives}

    # -- construction from wire config --------------------------------

    @classmethod
    def default(cls) -> "SloMonitor":
        return cls()

    @classmethod
    def from_dict(cls, config: Optional[dict]) -> "SloMonitor":
        """Build from the ``set-slo`` wire form (milliseconds)::

            {"objectives": [{"name": "avail", "kind": "availability",
                             "target": 0.999},
                            {"name": "lat", "kind": "latency",
                             "target": 0.99, "threshold_ms": 400}],
             "rules": [{"name": "fast", "long_window_ms": 300000,
                        "short_window_ms": 30000, "factor": 14.4}]}

        Omitted sections fall back to the defaults.
        """
        config = config or {}
        unknown = set(config) - {"objectives", "rules"}
        if unknown:
            raise ValueError(f"unknown slo config keys: {sorted(unknown)}")
        objectives: List[SloObjective] = []
        for entry in config.get("objectives", ()):
            threshold_ms = entry.get("threshold_ms")
            objectives.append(
                SloObjective(
                    name=entry["name"],
                    kind=entry["kind"],
                    target=float(entry["target"]),
                    threshold_us=(
                        float(threshold_ms) * 1000.0
                        if threshold_ms is not None
                        else None
                    ),
                )
            )
        rules: List[BurnRateRule] = []
        for entry in config.get("rules", ()):
            rules.append(
                BurnRateRule(
                    name=entry["name"],
                    long_us=float(entry["long_window_ms"]) * 1000.0,
                    short_us=float(entry["short_window_ms"]) * 1000.0,
                    factor=float(entry["factor"]),
                )
            )
        return cls(
            objectives=objectives or DEFAULT_OBJECTIVES,
            rules=rules or DEFAULT_RULES,
        )

    def config_dict(self) -> dict:
        return {
            "objectives": [o.to_dict() for o in self.objectives],
            "rules": [r.to_dict() for r in self.rules],
        }

    # -- the SLI feed --------------------------------------------------

    def observe(
        self, t_us: float, latency_us: float, ok: bool
    ) -> List[dict]:
        """Record one served invocation; returns newly fired alerts."""
        self.observed += 1
        fired: List[dict] = []
        for objective in self.objectives:
            good = objective.good(latency_us, ok)
            if not good:
                self.bad[objective.name] += 1
            for rule in self.rules:
                long_w, short_w = self._windows[objective.name][rule.name]
                for window in (long_w, short_w):
                    window.add(t_us, good)
                    window.advance(t_us)
                burn_long = long_w.burn(objective.target)
                burn_short = short_w.burn(objective.target)
                firing = (
                    burn_long >= rule.factor and burn_short >= rule.factor
                )
                key = (objective.name, rule.name)
                if firing and not self._active[key]:
                    alert = {
                        "t_us": round(t_us, 3),
                        "objective": objective.name,
                        "rule": rule.name,
                        "factor": rule.factor,
                        "burn_long": round(burn_long, 4),
                        "burn_short": round(burn_short, 4),
                    }
                    self.alerts.append(alert)
                    fired.append(alert)
                self._active[key] = firing
        return fired

    # -- reporting ------------------------------------------------------

    def status(self, now_us: float) -> dict:
        """Canonical status document at virtual time ``now_us``."""
        objectives = []
        for objective in self.objectives:
            windows = []
            for rule in self.rules:
                long_w, short_w = self._windows[objective.name][rule.name]
                long_w.advance(now_us)
                short_w.advance(now_us)
                windows.append(
                    {
                        "rule": rule.name,
                        "factor": rule.factor,
                        "burn_long": round(
                            long_w.burn(objective.target), 4
                        ),
                        "burn_short": round(
                            short_w.burn(objective.target), 4
                        ),
                        "samples_long": long_w.total,
                        "active": self._active[
                            (objective.name, rule.name)
                        ],
                    }
                )
            doc = objective.to_dict()
            doc["bad"] = self.bad[objective.name]
            doc["windows"] = windows
            objectives.append(doc)
        return {
            "schema": SLO_SCHEMA,
            "t_us": round(now_us, 3),
            "observed": self.observed,
            "objectives": objectives,
            "alerts": list(self.alerts),
        }

    def status_sha(self, now_us: float) -> Tuple[dict, str]:
        doc = self.status(now_us)
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return doc, hashlib.sha256(blob.encode("utf-8")).hexdigest()


def render_slo_status(doc: dict) -> str:
    """Readable rendering of a :meth:`SloMonitor.status` document."""
    lines = [
        f"SLO status @ {doc['t_us'] / 1000:.3f} ms — "
        f"{doc['observed']} observation(s), "
        f"{len(doc['alerts'])} alert(s)"
    ]
    for objective in doc["objectives"]:
        target = objective["target"]
        threshold = objective.get("threshold_ms")
        head = (
            f"  {objective['name']} ({objective['kind']}"
            f"{f' <= {threshold:g} ms' if threshold is not None else ''}"
            f", target {target}): bad={objective['bad']}"
        )
        lines.append(head)
        for window in objective["windows"]:
            state = "FIRING" if window["active"] else "ok"
            lines.append(
                f"    {window['rule']:<5} burn long={window['burn_long']:g} "
                f"short={window['burn_short']:g} "
                f"(trip at {window['factor']:g}) [{state}]"
            )
    for alert in doc["alerts"]:
        lines.append(
            f"  ALERT @ {alert['t_us'] / 1000:.3f} ms: "
            f"{alert['objective']}/{alert['rule']} "
            f"burn {alert['burn_long']:g}/{alert['burn_short']:g} "
            f">= {alert['factor']:g}"
        )
    return "\n".join(lines)
