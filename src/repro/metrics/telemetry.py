"""Unified cross-layer telemetry: registry, sampler, and profiler.

The paper's evidence is observational — Figure 2 is a fault-time
histogram, Table 3 decomposes restore time per component, the
artifact inspects per-invocation traces — and this module gives the
simulation the matching instrumentation surface. One
:class:`MetricsRegistry` per run (every
:class:`~repro.sim.Environment` owns one) holds typed instruments
from every layer, namespaced like ``host0.page_cache.hits``:

* :class:`Counter` / :class:`PullCounter` — monotonic counts, either
  owned (incremented at aggregation points) or *pulled* from an
  existing plain attribute on read;
* :class:`Gauge` — an instantaneous value read through a closure
  (device queue depth, cache occupancy, idle-pool size);
* :class:`HistogramInstrument` — bucketed distributions over
  :class:`repro.metrics.stats.Histogram` (fault handling times with
  the Figure 2 edges).

**Zero-perturbation invariant.** Instruments never schedule events
and hot paths never push samples: gauges and pull-counters read live
state only when collected, and per-fault data is absorbed in one pass
at invocation end from the :class:`~repro.host.fault.FaultRecord`
lists the simulation already keeps. A run therefore produces
bit-identical results with telemetry read or ignored — the golden
parity tests machine-check this.

:class:`Sampler` turns gauges into time series by polling them on a
configurable *virtual-clock* interval; it is the one telemetry piece
that does schedule events (its own timeouts), and determinism still
holds: simulated results are bit-identical with the sampler on or
off, because fault batching falls back to the event path whenever the
heap holds a nearer event.

:class:`Profiler` is a simulated ``perf`` for the DES engine: it
attributes virtual time and event counts to named components —
exclusive ``phase.*`` components (record, per-policy setup, invoke,
loader drain) that tile the timeline and power the coverage figure,
plus overlapping detail components (per-kind fault time, device
service vs queueing, loader fetch) for drill-down.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.metrics.report import render_table
from repro.metrics.stats import FIGURE2_EDGES, Histogram


class TelemetryError(ValueError):
    """Raised for instrument misuse (name/kind collisions)."""


class Counter:
    """A monotonic count owned by the instrument (``inc`` to bump)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def read(self):
        return self.value


class PullCounter:
    """A monotonic count read from existing state via a closure.

    This is how hot-path counters (``DeviceStats.requests``,
    ``PageCache.insertions``, ``Environment.events_processed``) join
    the registry without the hot paths touching an instrument.
    """

    kind = "counter"
    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Callable[[], Any]):
        self.name = name
        self._fn = fn

    def read(self):
        return self._fn()


class Gauge:
    """An instantaneous value read through a closure."""

    kind = "gauge"
    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Callable[[], Any]):
        self.name = name
        self._fn = fn

    def read(self):
        return self._fn()


class HistogramInstrument:
    """A bucketed distribution plus a running sum.

    ``observe`` uses a bisect over the edges (the wrapped
    :meth:`Histogram.add` is a linear scan, fine for post-hoc use but
    not for absorbing hundreds of thousands of fault records).
    """

    kind = "histogram"
    __slots__ = ("name", "histogram", "sum")

    def __init__(self, name: str, edges: Iterable[float]):
        self.name = name
        self.histogram = Histogram(edges=list(edges))
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect_right(self.histogram.edges, value) - 1
        if index < 0:
            index = 0
        self.histogram.counts[index] += 1
        self.sum += value

    @property
    def count(self) -> int:
        return self.histogram.total

    def read(self):
        return {"count": self.count, "sum": self.sum}


Instrument = Any  # Counter | PullCounter | Gauge | HistogramInstrument


class MetricsRegistry:
    """All instruments of one run, plus its :class:`Profiler`.

    Instrument creation is idempotent per (name, kind): asking for an
    existing counter returns it, asking for an existing name with a
    different kind raises. Multi-instance components (per-host
    devices and caches) reserve a namespace prefix through
    :meth:`unique_prefix` so ``host0.device.requests`` and a second
    device on the same clock never collide.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._prefixes: set = set()
        self.profiler = Profiler()

    # -- creation ------------------------------------------------------

    def _register(self, factory, name: str, kind: str) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if existing.kind != kind or type(existing) is not factory.cls:
                raise TelemetryError(
                    f"instrument {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not Counter:
                raise TelemetryError(
                    f"instrument {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        instrument = Counter(name)
        self._instruments[name] = instrument
        return instrument

    def pull_counter(self, name: str, fn: Callable[[], Any]) -> PullCounter:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not PullCounter:
                raise TelemetryError(
                    f"instrument {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        instrument = PullCounter(name, fn)
        self._instruments[name] = instrument
        return instrument

    def gauge(self, name: str, fn: Callable[[], Any]) -> Gauge:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not Gauge:
                raise TelemetryError(
                    f"instrument {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        instrument = Gauge(name, fn)
        self._instruments[name] = instrument
        return instrument

    def histogram(
        self, name: str, edges: Optional[Iterable[float]] = None
    ) -> HistogramInstrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not HistogramInstrument:
                raise TelemetryError(
                    f"instrument {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        instrument = HistogramInstrument(
            name, FIGURE2_EDGES if edges is None else edges
        )
        self._instruments[name] = instrument
        return instrument

    def unique_prefix(self, base: str) -> str:
        """Reserve an unused namespace prefix (``base``, ``base.2``,
        ``base.3``, ...)."""
        prefix = base
        suffix = 2
        while prefix in self._prefixes:
            prefix = f"{base}.{suffix}"
            suffix += 1
        self._prefixes.add(prefix)
        return prefix

    # -- access --------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return list(self._instruments)

    def instruments(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def counters(self) -> Iterator[Tuple[str, Instrument]]:
        for name, inst in self._instruments.items():
            if inst.kind == "counter":
                yield name, inst

    def gauges(self) -> Iterator[Tuple[str, Gauge]]:
        for name, inst in self._instruments.items():
            if inst.kind == "gauge":
                yield name, inst

    def histograms(self) -> Iterator[Tuple[str, HistogramInstrument]]:
        for name, inst in self._instruments.items():
            if inst.kind == "histogram":
                yield name, inst

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """One plain-dict snapshot of every instrument, grouped by
        kind — picklable, JSON-ready, and mergeable across shards."""
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        for name, inst in self._instruments.items():
            if inst.kind == "counter":
                counters[name] = inst.read()
            elif inst.kind == "gauge":
                gauges[name] = inst.read()
            else:
                histograms[name] = {
                    "edges": list(inst.histogram.edges),
                    "counts": list(inst.histogram.counts),
                    "count": inst.count,
                    "sum": inst.sum,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


# -- profiler ----------------------------------------------------------


@dataclass
class ComponentStat:
    """Virtual time and event count attributed to one component."""

    time_us: float = 0.0
    events: int = 0


class Profiler:
    """Attributes virtual time and event counts per component.

    Components whose names start with ``phase.`` are *exclusive*: they
    tile the run's timeline (record phase, per-policy setup, invoke,
    loader drain) and their sum against the final clock yields the
    coverage figure, with the remainder reported explicitly as
    unattributed. All other components are *detail* and may overlap
    phases (per-kind fault time runs inside ``phase.invoke``; device
    service time runs inside whatever blocked on the device).
    """

    PHASE_PREFIX = "phase."

    def __init__(self) -> None:
        self._components: Dict[str, ComponentStat] = {}
        self._pulls: Dict[str, Callable[[], Tuple[float, int]]] = {}

    def add(self, component: str, time_us: float, events: int = 1) -> None:
        """Charge ``time_us`` and ``events`` to ``component``."""
        stat = self._components.get(component)
        if stat is None:
            stat = self._components[component] = ComponentStat()
        stat.time_us += time_us
        stat.events += events

    def phase(self, name: str, start_us: float, end_us: float) -> None:
        """Charge the exclusive phase ``name`` with ``[start, end)``."""
        self.add(self.PHASE_PREFIX + name, end_us - start_us)

    def add_pull(
        self, component: str, fn: Callable[[], Tuple[float, int]]
    ) -> None:
        """Register a component whose ``(time_us, events)`` is read
        from live state at collection time (device busy counters)."""
        self._pulls[component] = fn

    def components(self) -> Dict[str, ComponentStat]:
        """Owned plus pulled components, as one snapshot."""
        out = {
            name: ComponentStat(stat.time_us, stat.events)
            for name, stat in self._components.items()
        }
        for name, fn in self._pulls.items():
            time_us, events = fn()
            stat = out.get(name)
            if stat is None:
                out[name] = ComponentStat(time_us, events)
            else:
                stat.time_us += time_us
                stat.events += events
        return out

    def attributed_us(self) -> float:
        """Virtual time covered by the exclusive ``phase.*`` components."""
        return sum(
            stat.time_us
            for name, stat in self._components.items()
            if name.startswith(self.PHASE_PREFIX)
        )

    def coverage(self, total_us: float) -> float:
        """Fraction of ``total_us`` attributed to named phases (can
        exceed 1.0 when phases ran concurrently, e.g. cluster serves)."""
        if total_us <= 0:
            return 1.0
        return self.attributed_us() / total_us

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: {"time_us": stat.time_us, "events": stat.events}
            for name, stat in sorted(self.components().items())
        }

    def report_rows(
        self, total_us: float, top: Optional[int] = None
    ) -> List[List[Any]]:
        """``[component, time_ms, events, share%]`` rows, hottest
        first, with the unattributed remainder as an explicit row —
        never silently dropped."""
        components = self.components()
        ranked = sorted(
            components.items(), key=lambda kv: (-kv[1].time_us, kv[0])
        )
        if top is not None:
            ranked = ranked[:top]
        rows: List[List[Any]] = []
        for name, stat in ranked:
            share = 100.0 * stat.time_us / total_us if total_us > 0 else 0.0
            rows.append([name, stat.time_us / 1000.0, stat.events, share])
        unattributed = max(0.0, total_us - self.attributed_us())
        share = 100.0 * unattributed / total_us if total_us > 0 else 0.0
        rows.append(["(unattributed)", unattributed / 1000.0, "", share])
        return rows


# -- sampler -----------------------------------------------------------


class Sampler:
    """Polls every gauge on a fixed virtual-clock interval.

    The sampler is pull-based: each tick reads the registry's gauges
    (closures over live state) and appends one row; nothing else in
    the simulation knows it exists. Its timeouts do enter the event
    heap, which can flip individual fault services from the batched
    fast path to the event path — by design those produce bit-identical
    results, so sampling never perturbs simulated numbers.

    Lifecycle: :meth:`start` spawns the polling process, :meth:`stop`
    lets it exit at its next tick. Callers driving
    ``Environment.run()`` with no ``until`` must :meth:`stop` first or
    the run never drains.
    """

    def __init__(self, registry: MetricsRegistry, env, interval_us: float):
        if interval_us <= 0:
            raise TelemetryError("sampler interval must be positive")
        self.registry = registry
        self.env = env
        self.interval_us = float(interval_us)
        #: ``(virtual time, {gauge name: value})`` rows.
        self.samples: List[Tuple[float, Dict[str, Any]]] = []
        self._proc = None
        self._stopped = False

    def sample(self) -> None:
        """Take one snapshot of every gauge right now."""
        row = {name: gauge.read() for name, gauge in self.registry.gauges()}
        self.samples.append((self.env.now, row))

    def _run(self):
        while not self._stopped:
            self.sample()
            yield self.env.timeout(self.interval_us)

    def start(self) -> None:
        if self._proc is not None:
            return
        self._stopped = False
        self._proc = self.env.process(self._run(), name="telemetry.sampler")

    def stop(self) -> None:
        """Stop polling, flushing a final sample at the stop horizon.

        Virtual time usually halts between ticks; without the flush
        the last partial window would be dropped and gauges read at
        the stop instant would never appear in the series. The flush
        is a synchronous read — no event enters the heap, so it
        cannot perturb the simulation.
        """
        self._stopped = True
        if self._proc is not None and (
            not self.samples or self.samples[-1][0] < self.env.now
        ):
            self.sample()

    # -- queries -------------------------------------------------------

    def gauge_names(self) -> List[str]:
        names = set()
        for _, row in self.samples:
            names.update(row)
        return sorted(names)

    def series(self, name: str) -> List[Tuple[float, Any]]:
        return [(t, row[name]) for t, row in self.samples if name in row]

    def values(self, name: str) -> List[Any]:
        return [row[name] for _, row in self.samples if name in row]

    def percentile(self, name: str, percentile: float) -> float:
        """Nearest-rank percentile over the gauge's sampled values
        (the :meth:`FleetReport.latency_percentile` convention)."""
        ordered = sorted(self.values(name))
        if not ordered:
            return 0.0
        if percentile <= 0:
            return ordered[0]
        rank = math.ceil(percentile / 100.0 * len(ordered))
        return ordered[min(len(ordered), rank) - 1]

    def as_dict(self) -> Dict[str, Any]:
        """Columnar JSON-ready form: one time axis, one value list per
        gauge (``None`` where a late-registered gauge has no sample)."""
        names = self.gauge_names()
        return {
            "interval_us": self.interval_us,
            "times_us": [t for t, _ in self.samples],
            "gauges": {
                name: [row.get(name) for _, row in self.samples]
                for name in names
            },
        }


# -- per-host instrument bundle ---------------------------------------


class HostTelemetry:
    """The per-host instrument bundle for fault/cache/vcpu accounting.

    VM-side objects (``MicroVM``, ``FaultHandler``,
    ``UserfaultfdManager``) are ephemeral — one per invocation — so
    they carry no instruments of their own. Instead the per-host
    :class:`~repro.host.page_cache.PageCache` owns one of these
    bundles, and invocation teardown *absorbs* the run's fault records
    into it in a single pass (the hot fault paths stay untouched).
    """

    __slots__ = (
        "registry",
        "root",
        "profiler",
        "fault_time",
        "cache_hits",
        "cache_misses",
        "cache_shared_waits",
        "vcpu_fast",
        "vcpu_slow",
        "uffd_delegated",
        "invocations",
        "record_phases",
        "_fault_counters",
    )

    def __init__(self, registry: MetricsRegistry, root: str):
        self.registry = registry
        self.root = root
        self.profiler = registry.profiler
        counter = registry.counter
        self.fault_time = registry.histogram(
            f"{root}.fault.time_us", FIGURE2_EDGES
        )
        self.cache_hits = counter(f"{root}.page_cache.hits")
        self.cache_misses = counter(f"{root}.page_cache.misses")
        self.cache_shared_waits = counter(f"{root}.page_cache.shared_waits")
        self.vcpu_fast = counter(f"{root}.vcpu.fast_path_accesses")
        self.vcpu_slow = counter(f"{root}.vcpu.event_path_accesses")
        self.uffd_delegated = counter(f"{root}.uffd.delegated_faults")
        self.invocations = counter(f"{root}.invocations")
        self.record_phases = counter(f"{root}.record_phases")
        #: FaultKind -> (counter, profiler label), keyed by enum
        #: identity to skip the DynamicClassAttribute ``.value`` read
        #: and the label f-string on the per-invocation absorb path.
        self._fault_counters: Dict[Any, Tuple[Counter, str]] = {}

    def absorb_fault_records(self, records) -> None:
        """Fold one invocation's fault records into the host's
        counters, fault-time histogram, and profiler components.

        Cache semantics per record: a MINOR fault is a page-cache hit;
        a MAJOR fault that issued its own block requests is a miss; a
        MAJOR fault with none waited on another thread's in-flight
        read (the shared-wait path of paper §6.5/§6.6).
        """
        from repro.host.fault import FaultKind

        counters = self._fault_counters
        observe = self.fault_time.observe
        none_kind = FaultKind.NONE
        minor_kind = FaultKind.MINOR
        major_kind = FaultKind.MAJOR
        # Batch per kind: one counter bump and one profiler charge per
        # kind instead of per record. The histogram still observes each
        # duration individually (bucket counts are order-independent).
        totals: Dict[FaultKind, List[float]] = {}
        hits = misses = shared = 0
        for record in records:
            kind = record.kind
            if kind is none_kind:
                continue
            duration = record.duration_us
            observe(duration)
            agg = totals.get(kind)
            if agg is None:
                totals[kind] = [1, duration]
            else:
                agg[0] += 1
                agg[1] += duration
            if kind is minor_kind:
                hits += 1
            elif kind is major_kind:
                if record.block_requests > 0:
                    misses += 1
                else:
                    shared += 1
        for kind, (count, total_us) in totals.items():
            entry = counters.get(kind)
            if entry is None:
                entry = counters[kind] = (
                    self.registry.counter(f"{self.root}.fault.{kind.value}"),
                    f"fault.{kind.value}",
                )
            ctr, label = entry
            ctr.value += count
            self.profiler.add(label, total_us, count)
        self.cache_hits.value += hits
        self.cache_misses.value += misses
        self.cache_shared_waits.value += shared


# -- run report --------------------------------------------------------


def hit_rates(registry: MetricsRegistry) -> List[Tuple[str, int, int, float]]:
    """Per-host page-cache ``(root, hits, misses, rate)`` rows."""
    rows = []
    for name, inst in registry.counters():
        if not name.endswith(".page_cache.hits"):
            continue
        root = name[: -len(".page_cache.hits")]
        hits = inst.read()
        misses_inst = registry.get(f"{root}.page_cache.misses")
        misses = misses_inst.read() if misses_inst is not None else 0
        total = hits + misses
        rate = hits / total if total else 0.0
        rows.append((root, hits, misses, rate))
    return rows


def render_run_report(
    registry: MetricsRegistry,
    total_us: float,
    sampler: Optional[Sampler] = None,
    top: int = 12,
) -> str:
    """The ``python -m repro telemetry`` run report: profiler phase
    coverage, top-N hot components, page-cache hit rates, counters,
    and sampled-gauge percentiles."""
    profiler = registry.profiler
    sections: List[str] = []

    phase_rows = [
        row
        for row in profiler.report_rows(total_us)
        if row[0].startswith(Profiler.PHASE_PREFIX)
        or row[0] == "(unattributed)"
    ]
    coverage = profiler.coverage(total_us)
    sections.append(
        render_table(
            ["phase", "time_ms", "events", "share_%"],
            phase_rows,
            title=(
                f"Profiler phases over {total_us / 1000:.2f} ms virtual "
                f"({coverage:.1%} attributed)"
            ),
        )
    )

    detail_rows = [
        row
        for row in profiler.report_rows(total_us, top=None)
        if not row[0].startswith(Profiler.PHASE_PREFIX)
        and row[0] != "(unattributed)"
    ][:top]
    if detail_rows:
        sections.append(
            render_table(
                ["component", "time_ms", "events", "share_%"],
                detail_rows,
                title=f"Top {len(detail_rows)} components (may overlap phases)",
            )
        )

    rate_rows = [
        [root, hits, misses, rate * 100.0]
        for root, hits, misses, rate in hit_rates(registry)
    ]
    if rate_rows:
        sections.append(
            render_table(
                ["host", "cache_hits", "cache_misses", "hit_rate_%"],
                rate_rows,
                title="Page-cache hit rates",
            )
        )

    counter_rows = sorted(
        [name, inst.read()] for name, inst in registry.counters()
    )
    sections.append(
        render_table(["counter", "value"], counter_rows, title="Counters")
    )

    if sampler is not None and sampler.samples:
        gauge_rows = [
            [
                name,
                len(sampler.values(name)),
                sampler.percentile(name, 50),
                sampler.percentile(name, 95),
                max(sampler.values(name)),
            ]
            for name in sampler.gauge_names()
        ]
        sections.append(
            render_table(
                ["gauge", "samples", "p50", "p95", "max"],
                gauge_rows,
                title=(
                    f"Sampled gauges (every "
                    f"{sampler.interval_us / 1000:g} ms virtual)"
                ),
            )
        )

    return "\n\n".join(sections)
