"""Fixed-width text tables for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (for figure-style output).

    Bars scale linearly to the maximum value; each row shows the
    label, the bar, and the numeric value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar_len = int(round(width * value / peak)) if peak > 0 else 0
        bar = "#" * bar_len
        lines.append(
            f"{label.ljust(label_width)}  {bar} {_format_cell(float(value))}{unit}"
        )
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    Numbers are right-aligned, text left-aligned; floats get a
    magnitude-appropriate precision. Returns a string ready to print.
    """
    formatted: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(cell: str, raw: Any, width: int) -> str:
        if isinstance(raw, (int, float)) and not isinstance(raw, bool):
            return cell.rjust(width)
        return cell.ljust(width)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for raw_row, row in zip(rows, formatted):
        lines.append(
            "  ".join(
                align(cell, raw, width)
                for cell, raw, width in zip(row, raw_row, widths)
            )
        )
    return "\n".join(lines)
