"""Exporters for the telemetry registry and span traces.

Three output formats, all derived from live objects without mutating
them:

* :func:`to_prometheus` — Prometheus text exposition (counters,
  gauges, and histograms with cumulative ``le`` buckets);
* :func:`registry_snapshot` / :func:`to_json_doc` — structured JSON
  for machine consumption (the ``--metrics-out`` document);
* :func:`to_chrome_trace` — Chrome ``trace_event`` JSON derived from
  the existing :class:`~repro.metrics.tracing.Tracer` span trees,
  loadable in ``chrome://tracing`` / Perfetto (the ``--chrome-trace``
  document).

:func:`parse_prometheus` exists for round-trip testing, and
:func:`merge_shard_snapshots` folds the per-shard snapshots a forked
experiment run returns into one cumulative view.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.metrics.telemetry import MetricsRegistry, Sampler
from repro.metrics.tracing import Span, Tracer

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Version tag stamped into the JSON document.
JSON_SCHEMA = "repro.telemetry/1"


def _prom_name(name: str) -> str:
    """Sanitize a dotted instrument name for Prometheus exposition."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every instrument."""
    lines: List[str] = []
    for name, inst in registry.counters():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_prom_value(inst.read())}")
    for name, inst in registry.gauges():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_prom_value(inst.read())}")
    for name, inst in registry.histograms():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} histogram")
        histogram = inst.histogram
        cumulative = 0
        # Bucket i covers [edges[i], edges[i+1]), so the cumulative
        # "observations <= bound" sample for bound edges[i+1] includes
        # buckets 0..i; the open-ended last bucket only joins +Inf.
        for i, upper in enumerate(histogram.edges[1:]):
            cumulative += histogram.counts[i]
            lines.append(
                f'{pname}_bucket{{le="{_prom_value(float(upper))}"}} '
                f"{cumulative}"
            )
        lines.append(f'{pname}_bucket{{le="+Inf"}} {histogram.total}')
        lines.append(f"{pname}_sum {_prom_value(inst.sum)}")
        lines.append(f"{pname}_count {histogram.total}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``{sample name: value}`` (labels
    kept inline in the name). For round-trip tests, not a full
    parser."""
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


def registry_snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry plus its profiler as one plain dict — picklable,
    so experiment shards can send it across the fork boundary."""
    snapshot = registry.collect()
    snapshot["profile"] = registry.profiler.as_dict()
    return snapshot


def to_json_doc(
    registry: MetricsRegistry,
    sampler: Optional[Sampler] = None,
    total_us: Optional[float] = None,
) -> Dict[str, Any]:
    """The full ``--metrics-out`` JSON document."""
    doc: Dict[str, Any] = {"schema": JSON_SCHEMA}
    if total_us is not None:
        doc["virtual_time_us"] = total_us
        doc["profile_attributed_us"] = registry.profiler.attributed_us()
    doc.update(registry_snapshot(registry))
    if sampler is not None:
        doc["samples"] = sampler.as_dict()
    return doc


def merge_shard_snapshots(
    snapshots: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold per-shard :func:`registry_snapshot` dicts (each tagged
    with its shard's ``virtual_time_us``) into one cumulative view.

    Counters, histogram counts (matching edges required), profile
    time/events, and virtual time sum; gauges are instantaneous
    per-shard state with no meaningful cross-shard aggregate, so they
    are dropped.

    Key order in the merged maps is sorted by instrument name, *not*
    first-seen order: different shard counts register instruments in
    different orders, and the sharded cluster's determinism contract
    compares merged snapshots for exact equality (including
    serialisation order).
    """
    merged: Dict[str, Any] = {
        "schema": JSON_SCHEMA,
        "shards": len(snapshots),
        "virtual_time_us": 0.0,
        "counters": {},
        "histograms": {},
        "profile": {},
    }
    for snapshot in snapshots:
        merged["virtual_time_us"] += snapshot.get("virtual_time_us", 0.0)
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, hist in snapshot.get("histograms", {}).items():
            existing = merged["histograms"].get(name)
            if existing is None:
                merged["histograms"][name] = {
                    "edges": list(hist["edges"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                }
            else:
                if existing["edges"] != list(hist["edges"]):
                    raise ValueError(
                        f"histogram {name!r} has mismatched edges across shards"
                    )
                existing["counts"] = [
                    a + b for a, b in zip(existing["counts"], hist["counts"])
                ]
                existing["count"] += hist["count"]
                existing["sum"] += hist["sum"]
        for name, stat in snapshot.get("profile", {}).items():
            existing = merged["profile"].setdefault(
                name, {"time_us": 0.0, "events": 0}
            )
            existing["time_us"] += stat["time_us"]
            existing["events"] += stat["events"]
    for key in ("counters", "histograms", "profile"):
        merged[key] = dict(sorted(merged[key].items()))
    return merged


#: Version tag for incremental delta documents.
DELTA_SCHEMA = "repro.telemetry-delta/1"


class DeltaExporter:
    """Incremental registry export: each :meth:`delta` call returns
    only what changed since the previous call.

    Counters and histograms report *increments* (monotonic streams, so
    a consumer sums deltas to recover totals); gauges are
    instantaneous and always report their current value. Keys are
    sorted and unchanged counters/histograms are omitted, so the
    document is canonical: two identical runs snapshotting at the same
    virtual instants produce byte-identical delta streams — the
    property the service journal's telemetry digests pin.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._sequence = 0
        self._last_counters: Dict[str, Any] = {}
        self._last_histograms: Dict[str, Any] = {}

    def delta(self, now_us: Optional[float] = None) -> Dict[str, Any]:
        self._sequence += 1
        doc: Dict[str, Any] = {
            "schema": DELTA_SCHEMA,
            "sequence": self._sequence,
        }
        if now_us is not None:
            doc["virtual_time_us"] = now_us
        counters: Dict[str, Any] = {}
        for name, inst in self.registry.counters():
            value = inst.read()
            previous = self._last_counters.get(name, 0)
            if value != previous:
                counters[name] = value - previous
            self._last_counters[name] = value
        gauges: Dict[str, Any] = {
            name: inst.read() for name, inst in self.registry.gauges()
        }
        histograms: Dict[str, Any] = {}
        for name, inst in self.registry.histograms():
            histogram = inst.histogram
            counts = list(histogram.counts)
            state = (counts, histogram.total, inst.sum)
            previous = self._last_histograms.get(name)
            if previous is None:
                previous = ([0] * len(counts), 0, 0.0)
            if state[1] != previous[1] or state[2] != previous[2]:
                histograms[name] = {
                    "edges": list(histogram.edges),
                    "counts": [
                        a - b for a, b in zip(counts, previous[0])
                    ],
                    "count": state[1] - previous[1],
                    "sum": state[2] - previous[2],
                }
            self._last_histograms[name] = state
        doc["counters"] = dict(sorted(counters.items()))
        doc["gauges"] = dict(sorted(gauges.items()))
        doc["histograms"] = dict(sorted(histograms.items()))
        return doc


#: Version tag for the serving-report document.
REPORT_SCHEMA = "repro.fleet-report/1"


def fleet_report_doc(report) -> Dict[str, Any]:
    """JSON document for a :class:`~repro.fleet.scheduler.FleetReport`
    (or :class:`~repro.cluster.scheduler.ClusterReport`): every served
    invocation with its :class:`InvocationOutcome` and attempt count,
    plus the availability/amplification summary. Deterministic for a
    given run — no wall-clock anywhere."""
    doc: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "invocations": [s.to_dict() for s in report.served],
        "outcome_counts": report.outcome_counts(),
        "availability": report.availability(),
        "total_attempts": report.total_attempts(),
        "retry_amplification": report.retry_amplification(),
        "mean_latency_us": report.mean_latency_us(),
        "p99_latency_us": report.latency_percentile(99),
    }
    host_stats = getattr(report, "host_stats", None)
    if host_stats:
        doc["host_failures"] = {
            host: stats.failures for host, stats in sorted(host_stats.items())
        }
        doc["host_shed"] = {
            host: stats.shed for host, stats in sorted(host_stats.items())
        }
    fault_summary = getattr(report, "fault_summary", None)
    if fault_summary:
        # Includes the durability split: corruptions caught at restore
        # time vs by the background scrubber, plus silent serves.
        doc["faults"] = dict(sorted(fault_summary.items()))
    return doc


# -- Chrome trace_event ------------------------------------------------


def _span_hosts(span: Span, hosts: set) -> None:
    host = span.tags.get("host")
    if host is not None:
        hosts.add(host)
    for child in span.children:
        _span_hosts(child, hosts)


def _span_events(
    span: Span,
    pid: Any,
    tid: int,
    pids: Dict[str, int],
    events: List[Dict[str, Any]],
) -> None:
    host = span.tags.get("host")
    if host is not None:
        pid = pids[host]
    event: Dict[str, Any] = {
        "ph": "X",
        "name": span.name,
        "cat": "sim",
        "ts": span.start_us,
        "dur": (
            span.end_us - span.start_us if span.end_us is not None else 0.0
        ),
        "pid": pid,
        "tid": tid,
    }
    args: Dict[str, Any] = {}
    if span.tags:
        args.update(span.tags)
    if span.annotations:
        args["annotations"] = list(span.annotations)
    if span.end_us is None:
        args["open"] = True
    if args:
        event["args"] = args
    events.append(event)
    for child in span.children:
        _span_events(child, event["pid"], tid, pids, events)


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON object from a tracer's span trees.

    Every span becomes a complete ("X") event with microsecond
    ``ts``/``dur``. The process id groups spans by their ``host`` tag
    — one pid per host, assigned in *sorted host-name order* so the
    pid layout is a pure function of which hosts appear, not of
    which host happened to finish a span first. The thread id groups
    each root span's whole tree, so concurrent invocations render as
    parallel tracks.
    """
    hosts: set = set()
    for root in tracer.roots:
        _span_hosts(root, hosts)
    pids = {host: pid for pid, host in enumerate(sorted(hosts))}
    events: List[Dict[str, Any]] = []
    for tid, root in enumerate(tracer.roots):
        _span_events(root, len(pids), tid, pids, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def causal_to_chrome_trace(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Chrome ``trace_event`` JSON from a causal-trace document.

    This is the shard-safe ``--chrome-trace`` path: every id is a
    pure function of the (already shard-invariant) causal document —
    pid = host in sorted order (router last), tid = invocation id,
    event ``id`` = ``inv:src:seq`` — so the export diffs clean
    between ``shards=1`` and ``shards=N``. ``phase`` events (the
    restore-phase fold) become complete ("X") slices; everything
    else becomes an instant ("i") event on the invocation's track.
    """
    hosts: set = set()
    for inv in doc["invocations"]:
        for event in inv["events"]:
            host = event["detail"].get("host")
            if isinstance(host, str):
                hosts.add(host)
    pids = {host: pid for pid, host in enumerate(sorted(hosts))}
    router_pid = len(pids)
    events: List[Dict[str, Any]] = []
    for inv in doc["invocations"]:
        tid = inv["inv_id"]
        last_host_pid = router_pid
        for event in inv["events"]:
            detail = event["detail"]
            host = detail.get("host")
            if isinstance(host, str):
                last_host_pid = pids[host]
                pid = last_host_pid
            elif event["src"] >= 0:
                pid = last_host_pid
            else:
                pid = router_pid
            out: Dict[str, Any] = {
                "name": (
                    detail["name"]
                    if event["kind"] == "phase"
                    else event["kind"]
                ),
                "cat": "causal",
                "ts": event["t_us"],
                "pid": pid,
                "tid": tid,
                "id": f"{tid}:{event['src']}:{event['seq']}",
                "args": {k: v for k, v in sorted(detail.items())},
            }
            if event["kind"] == "phase":
                out["ph"] = "X"
                out["dur"] = detail.get("duration_us") or 0.0
            else:
                out["ph"] = "i"
                out["s"] = "t"
            events.append(out)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
