"""Span tracing for invocations.

The paper's artifact evaluates runs by inspecting per-invocation
traces in Zipkin (appendix A.4: "the execution traces of invocations
are accessible on the Zipkin web page"). This module provides the
same visibility for simulated invocations: a :class:`Tracer` records
nested spans on the simulated timeline, :func:`render_trace` prints
them as an indented tree with durations, and
:meth:`Tracer.to_json` exports the Zipkin-flavoured JSON document
that the CLI's ``--trace-out`` writes.

Spans carry string *tags* (Zipkin's binary annotations). The cluster
scheduler hands each host a :meth:`Tracer.tagged` view — a tracer
that shares the parent's root list but stamps everything it records
with e.g. ``host=host3`` — so a multi-host trace keeps per-host
attribution while still serialising as one document.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Span:
    """One timed operation, possibly with children."""

    name: str
    start_us: float
    end_us: Optional[float] = None
    children: List["Span"] = field(default_factory=list)
    annotations: List[str] = field(default_factory=list)
    #: Zipkin-style key/value tags (e.g. ``{"host": "host2"}``).
    tags: Dict[str, str] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_us - self.start_us

    def duration_until(self, clock_us: float) -> float:
        """Elapsed time with open spans clamped to ``clock_us``.

        A span drained mid-flight (e.g. a tracer exported while the
        simulation still has work queued) has no end; its observed
        duration is "at least clock - start". The clamp never goes
        negative — a span opened after ``clock_us`` reads as 0.
        """
        end = self.end_us if self.end_us is not None else clock_us
        return max(0.0, end - self.start_us)

    def annotate(self, note: str) -> None:
        self.annotations.append(note)

    def tag(self, key: str, value: str) -> None:
        self.tags[key] = value

    def to_dict(self, clamp_to_us: Optional[float] = None) -> dict:
        """JSON-ready representation (Zipkin-flavoured fields).

        Still-open spans serialize with an explicit ``open: true``
        marker, so consumers can branch on the marker instead of
        discovering a null arithmetically. Without ``clamp_to_us``
        their ``duration_us`` is ``null``; with it (the drain-time
        clock, typically ``env.now``) the duration is clamped to the
        clock — "ran at least this long" — while ``open`` stays true.
        """
        if self.end_us is not None:
            duration = self.end_us - self.start_us
        elif clamp_to_us is not None:
            duration = self.duration_until(clamp_to_us)
        else:
            duration = None
        d = {
            "name": self.name,
            "timestamp_us": self.start_us,
            "duration_us": duration,
            "annotations": list(self.annotations),
            "tags": dict(self.tags),
            "children": [
                child.to_dict(clamp_to_us) for child in self.children
            ],
        }
        if self.end_us is None:
            d["open"] = True
        return d

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first lookup of a descendant span by name."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None


class Tracer:
    """Records a tree of spans against a simulation clock.

    ``default_tags`` are stamped onto every span this tracer creates;
    :meth:`tagged` derives a view with extra defaults that records
    into the same document.

    ``env`` may be None for a tracer that only collects post-hoc
    :meth:`record` spans (timestamps supplied by the caller) —
    :meth:`start` needs a clock and requires an environment.
    """

    def __init__(self, env=None, default_tags: Optional[Dict[str, str]] = None):
        self.env = env
        self.default_tags: Dict[str, str] = dict(default_tags or {})
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def tagged(self, **tags: str) -> "Tracer":
        """A view of this tracer with extra default tags.

        The view shares the parent's ``roots`` (all spans end up in
        one exported document) but has its own open-span stack, so
        concurrent recorders — one per simulated host — do not nest
        into each other's spans.
        """
        view = Tracer(
            self.env, default_tags={**self.default_tags, **tags}
        )
        view.roots = self.roots
        return view

    def start(self, name: str) -> Span:
        """Open a span; it nests under the innermost open span."""
        if self.env is None:
            raise ValueError(
                "this tracer has no clock; construct it with an "
                "environment to open live spans"
            )
        span = Span(
            name=name, start_us=self.env.now, tags=dict(self.default_tags)
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` (and any dangling children still open)."""
        if span not in self._stack:
            raise ValueError(f"span {span.name!r} is not open")
        while self._stack:
            closing = self._stack.pop()
            closing.end_us = self.env.now
            if closing is span:
                break
        return span

    def record(
        self,
        name: str,
        start_us: float,
        end_us: float,
        parent: Optional[Span] = None,
    ) -> Span:
        """Attach a completed span post-hoc (e.g. a concurrent loader
        whose timing was captured by its own stats)."""
        span = Span(
            name=name,
            start_us=start_us,
            end_us=end_us,
            tags=dict(self.default_tags),
        )
        if parent is not None:
            parent.children.append(span)
        elif self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def span(self, name: str):
        """Context manager form::

            with tracer.span("restore"):
                ...
        """
        tracer = self

        class _SpanContext:
            def __enter__(self):
                self.current = tracer.start(name)
                return self.current

            def __exit__(self, exc_type, exc, tb):
                tracer.end(self.current)
                return False

        return _SpanContext()

    def to_json(self, clamp_to_us: Optional[float] = None) -> str:
        """All recorded root spans as a JSON document.

        ``clamp_to_us`` (typically ``env.now`` at export time) clamps
        still-open spans' durations to the clock; see
        :meth:`Span.to_dict`.
        """
        return json.dumps(
            [root.to_dict(clamp_to_us) for root in self.roots],
            indent=2,
            sort_keys=True,
        )


def export_json(tracer: Tracer) -> str:
    """All recorded root spans as a JSON document."""
    return tracer.to_json()


def render_trace(
    span: Span, indent: int = 0, clamp_to_us: Optional[float] = None
) -> str:
    """Indented text rendering of a span tree (a textual Zipkin).

    Open spans render as ``open`` with no duration, or — when
    ``clamp_to_us`` supplies the drain-time clock — as
    ``>= X ms (open)``, the clamped lower bound on their duration.
    """
    pad = "  " * indent
    if span.end_us is not None:
        duration = f"{span.duration_us / 1000:.2f} ms"
    elif clamp_to_us is not None:
        duration = f">= {span.duration_until(clamp_to_us) / 1000:.2f} ms (open)"
    else:
        duration = "open"
    lines = [f"{pad}{span.name}: {duration}"]
    for note in span.annotations:
        lines.append(f"{pad}  - {note}")
    for child in span.children:
        lines.append(render_trace(child, indent + 1, clamp_to_us))
    return "\n".join(lines)
