"""A failure flight recorder for the cluster plane.

Keeps a bounded ring buffer of recent scheduler, fault, and
page-cache events *per host*, and snapshots those rings into a
postmortem document whenever something goes wrong — an invocation
fails, a host crashes, or an SLO burn-rate alert fires. The point is
the same as an aircraft flight recorder: when the failure is
noticed, the interesting events are the ones *just before* it, and
full tracing of a long run is too heavy to keep around on the
off-chance.

Recording is pure-Python deque appends driven from code paths the
scheduler already executes — no simulation events, no RNG — so an
attached recorder keeps the cluster latency checksum bit-identical
(zero-perturbation contract). The recorder is a single-heap /
service-plane instrument: shard workers do not carry one (rings
would have to cross the result pipes every barrier), which mirrors
the existing ``--trace-out`` scoping.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

FLIGHT_SCHEMA = "repro.flight-recorder/1"

#: Ring key for events not attributable to a single host (routing,
#: SLO alerts, budget exhaustion).
CLUSTER_RING = "cluster"


class FlightRecorder:
    """Per-host bounded event rings plus triggered postmortem dumps.

    ``capacity_per_host`` bounds each ring; ``max_postmortems``
    bounds how many full dumps are retained (the *first* N — during
    a failure storm the earliest dumps describe the onset, the rest
    repeat it). Every trigger past the cap still counts in
    ``dump_triggers``.
    """

    def __init__(
        self, capacity_per_host: int = 256, max_postmortems: int = 16
    ):
        if capacity_per_host < 1:
            raise ValueError("capacity_per_host must be >= 1")
        if max_postmortems < 1:
            raise ValueError("max_postmortems must be >= 1")
        self.capacity_per_host = capacity_per_host
        self.max_postmortems = max_postmortems
        self._rings: Dict[str, deque] = {}
        self.postmortems: List[dict] = []
        self.recorded = 0
        self.dump_triggers = 0

    def _ring(self, host: str) -> deque:
        ring = self._rings.get(host)
        if ring is None:
            ring = deque(maxlen=self.capacity_per_host)
            self._rings[host] = ring
        return ring

    def record(
        self, t_us: float, host: str, kind: str, **detail: Any
    ) -> None:
        """Append one event to ``host``'s ring (oldest falls out)."""
        self.recorded += 1
        self._ring(host).append(
            {"t_us": round(t_us, 3), "kind": kind, **detail}
        )

    def dump(self, t_us: float, reason: str, **context: Any) -> Optional[dict]:
        """Snapshot every ring into a postmortem.

        ``context`` carries whatever the trigger site knows (the
        failing invocation, the crashed host, the fired alert, SLO
        and health status). Returns the postmortem, or None when the
        retention cap already swallowed it.
        """
        self.dump_triggers += 1
        if len(self.postmortems) >= self.max_postmortems:
            return None
        postmortem = {
            "t_us": round(t_us, 3),
            "reason": reason,
            "context": context,
            "rings": {
                host: list(ring)
                for host, ring in sorted(self._rings.items())
            },
        }
        self.postmortems.append(postmortem)
        return postmortem

    def document(self) -> dict:
        """The full recorder state as a JSON-ready document."""
        return {
            "schema": FLIGHT_SCHEMA,
            "capacity_per_host": self.capacity_per_host,
            "recorded": self.recorded,
            "dump_triggers": self.dump_triggers,
            "postmortems_retained": len(self.postmortems),
            "rings": {
                host: list(ring)
                for host, ring in sorted(self._rings.items())
            },
            "postmortems": list(self.postmortems),
        }

    def to_json(self) -> str:
        return json.dumps(self.document(), indent=2, sort_keys=True)


def render_postmortem(postmortem: dict) -> str:
    """Readable rendering of one postmortem (docs/debug helper)."""
    lines = [
        f"postmortem @ {postmortem['t_us'] / 1000:.3f} ms — "
        f"{postmortem['reason']}"
    ]
    for key, value in sorted(postmortem.get("context", {}).items()):
        lines.append(f"  {key}: {value}")
    for host, ring in postmortem.get("rings", {}).items():
        lines.append(f"  [{host}] last {len(ring)} events:")
        for event in ring:
            detail = " ".join(
                f"{k}={v}"
                for k, v in sorted(event.items())
                if k not in ("t_us", "kind")
            )
            lines.append(
                f"    {event['t_us'] / 1000:10.3f} ms  {event['kind']}"
                f"{(' ' + detail) if detail else ''}"
            )
    return "\n".join(lines)
