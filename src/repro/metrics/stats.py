"""Statistics and histograms over simulation measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than 2 values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Histogram:
    """A histogram over power-of-two buckets (paper Figure 2 style).

    Bucket ``i`` counts values in ``[edges[i], edges[i+1])``; the last
    bucket is open-ended.
    """

    edges: List[float]
    counts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.edges) < 2 or sorted(self.edges) != self.edges:
            raise ValueError("edges must be ascending with >= 2 entries")
        if not self.counts:
            self.counts = [0] * len(self.edges)

    def add(self, value: float) -> None:
        """Count one value."""
        index = 0
        for i, edge in enumerate(self.edges):
            if value >= edge:
                index = i
            else:
                break
        if value < self.edges[0]:
            index = 0
        self.counts[index] += 1

    def add_all(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def total(self) -> int:
        return sum(self.counts)

    def percentile(self, percentile: float) -> float:
        """Nearest-rank percentile, resolved to the lower edge of the
        bucket holding that rank (the
        :meth:`FleetReport.latency_percentile` convention applied to
        bucketed data). Returns 0.0 for an empty histogram.
        """
        total = self.total
        if total == 0:
            return 0.0
        if percentile <= 0:
            rank = 1
        else:
            rank = min(total, math.ceil(percentile / 100.0 * total))
        cumulative = 0
        for edge, count in zip(self.edges, self.counts):
            cumulative += count
            if cumulative >= rank:
                return edge
        return self.edges[-1]

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms over identical edges (per-host
        fault-time histograms folding into a cluster-wide one)."""
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different edges")
        return Histogram(
            edges=list(self.edges),
            counts=[a + b for a, b in zip(self.counts, other.counts)],
        )

    def buckets(self) -> List[Tuple[str, int]]:
        """``(label, count)`` pairs; labels name the lower edge."""
        labels = []
        for i, edge in enumerate(self.edges):
            if i + 1 < len(self.edges):
                labels.append(f"[{edge:g},{self.edges[i + 1]:g})")
            else:
                labels.append(f">={edge:g}")
        return list(zip(labels, self.counts))

    def as_dict(self) -> Dict[str, int]:
        return dict(self.buckets())


#: Figure 2's x ticks: 0.5, 1, 2 ... 512 microseconds.
FIGURE2_EDGES = [0.5 * 2**i for i in range(11)]


def fault_time_histogram(durations_us: Iterable[float]) -> Histogram:
    """Histogram of page-fault handling times with the paper's
    Figure 2 buckets."""
    histogram = Histogram(edges=list(FIGURE2_EDGES))
    histogram.add_all(durations_us)
    return histogram
