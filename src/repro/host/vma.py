"""mmap address-space semantics.

An :class:`AddressSpace` is the VMM process's view of guest physical
memory: a span of pages covered by non-overlapping :class:`Vma`
regions, each backed either by anonymous memory or by a file at some
offset. New mappings use ``MAP_FIXED`` semantics — they punch through
whatever was there, splitting existing VMAs — which is exactly how
FaaSnap layers its hierarchy (paper §4.8, Figure 4): an anonymous
region for the whole guest address space, non-zero regions mapped
onto the memory file, and loading-set regions mapped onto the
loading-set file, in that order.

The address space also owns the installed host PTEs (which pages are
mapped in hardware, and with what content token) so the fault handler
can distinguish first accesses from repeats and tests can verify
memory integrity end to end.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.sim import SimulationError
from repro.storage.filestore import StoredFile


class _AnonymousBacking:
    """Singleton marker for anonymous memory."""

    def __repr__(self) -> str:
        return "ANONYMOUS"


ANONYMOUS = _AnonymousBacking()


@dataclass(frozen=True)
class FileBacking:
    """File-backed mapping: VMA page ``start + i`` maps to file page
    ``file_start_page + i``."""

    file: StoredFile
    file_start_page: int


Backing = Union[_AnonymousBacking, FileBacking]


@dataclass
class Vma:
    """A contiguous mapped region."""

    start: int
    npages: int
    backing: Backing

    @property
    def end(self) -> int:
        """One past the last mapped page."""
        return self.start + self.npages

    def contains(self, page: int) -> bool:
        return self.start <= page < self.end

    def file_page(self, page: int) -> int:
        """File page index backing address ``page``."""
        if not isinstance(self.backing, FileBacking):
            raise SimulationError("file_page() on an anonymous VMA")
        if not self.contains(page):
            raise SimulationError(f"page {page} outside VMA [{self.start},{self.end})")
        return self.backing.file_start_page + (page - self.start)

    def _slice(self, start: int, npages: int) -> "Vma":
        """A sub-VMA covering [start, start+npages) with adjusted
        file offset."""
        if isinstance(self.backing, FileBacking):
            backing: Backing = FileBacking(
                self.backing.file,
                self.backing.file_start_page + (start - self.start),
            )
        else:
            backing = self.backing
        return Vma(start=start, npages=npages, backing=backing)


class AddressSpace:
    """The VMM's guest-memory address space."""

    def __init__(self, num_pages: int):
        if num_pages < 1:
            raise SimulationError("address space needs at least one page")
        self.num_pages = num_pages
        self._vmas: List[Vma] = []
        self._starts: List[int] = []
        #: Installed host PTEs: page -> content token currently mapped.
        self.pte: Dict[int, int] = {}
        #: Guest-side (KVM EPT) mappings: pages the guest has already
        #: faulted in. An access to a page in ``ept`` costs nothing;
        #: a page with a host PTE but no EPT entry takes only the fast
        #: KVM fixup (paper: REAP's in-working-set faults, <4 us).
        self.ept: set = set()
        #: Contents of anonymous pages that have been written.
        self.anon_contents: Dict[int, int] = {}
        #: Number of mmap() calls issued (paper §4.6 counts these).
        self.mmap_calls = 0
        #: Bumped whenever the VMA list changes; lets the fault
        #: handler cache the last-resolved VMA safely.
        self.version = 0

    # -- mapping ------------------------------------------------------

    def mmap_anonymous(self, start: int, npages: int) -> Vma:
        """Map ``[start, start+npages)`` to anonymous memory."""
        return self._mmap(Vma(start, npages, ANONYMOUS))

    def mmap_file(
        self, start: int, npages: int, file: StoredFile, file_start_page: int
    ) -> Vma:
        """Map ``[start, start+npages)`` to ``file`` at
        ``file_start_page`` with MAP_FIXED overlay semantics."""
        if file_start_page < 0 or file_start_page + npages > file.num_pages:
            raise SimulationError(
                f"mapping beyond EOF of {file.name}: {file_start_page}+{npages}"
            )
        return self._mmap(Vma(start, npages, FileBacking(file, file_start_page)))

    def _mmap(self, vma: Vma) -> Vma:
        if vma.npages < 1:
            raise SimulationError("empty mapping")
        if vma.start < 0 or vma.end > self.num_pages:
            raise SimulationError(
                f"mapping [{vma.start},{vma.end}) outside address space "
                f"of {self.num_pages} pages"
            )
        self._carve(vma.start, vma.npages)
        index = bisect.bisect_left(self._starts, vma.start)
        self._vmas.insert(index, vma)
        self._starts.insert(index, vma.start)
        self.mmap_calls += 1
        self.version += 1
        # MAP_FIXED discards the old mapping, including installed PTEs
        # and any anonymous contents beneath.
        self._discard_state(vma.start, vma.end)
        return vma

    def munmap(self, start: int, npages: int) -> None:
        """Unmap a range (splitting overlapping VMAs)."""
        self._carve(start, npages)
        self.version += 1
        self._discard_state(start, start + npages)

    def _discard_state(self, start: int, end: int) -> None:
        """Drop PTEs, anonymous contents and EPT entries in a range,
        iterating whichever side is smaller (restores map thousands of
        regions over an address space whose state is still empty)."""
        npages = end - start
        for mapping in (self.pte, self.anon_contents):
            if not mapping:
                continue
            if len(mapping) < npages:
                for page in [p for p in mapping if start <= p < end]:
                    del mapping[page]
            else:
                for page in range(start, end):
                    mapping.pop(page, None)
        ept = self.ept
        if ept:
            if len(ept) < npages:
                ept.difference_update(
                    [p for p in ept if start <= p < end]
                )
            else:
                for page in range(start, end):
                    ept.discard(page)

    def _carve(self, start: int, npages: int) -> None:
        """Remove [start, start+npages) from existing VMAs, splicing
        only the overlapping window instead of rebuilding the whole
        (possibly thousands-long) region list."""
        end = start + npages
        vmas = self._vmas
        starts = self._starts
        # First region that could overlap: the one covering ``start``
        # if it extends past it, else the first starting after.
        low = bisect.bisect_right(starts, start) - 1
        if low < 0 or vmas[low].end <= start:
            low += 1
        # First region starting at or beyond ``end`` is untouched.
        high = bisect.bisect_left(starts, end)
        if low >= high:
            return
        replacement: List[Vma] = []
        for vma in vmas[low:high]:
            if vma.start < start:
                replacement.append(vma._slice(vma.start, start - vma.start))
            if vma.end > end:
                replacement.append(vma._slice(end, vma.end - end))
        vmas[low:high] = replacement
        starts[low:high] = [v.start for v in replacement]

    # -- lookup -------------------------------------------------------

    def resolve(self, page: int) -> Optional[Vma]:
        """The VMA covering ``page``, or None if unmapped."""
        if not 0 <= page < self.num_pages:
            raise SimulationError(f"page {page} outside address space")
        index = bisect.bisect_right(self._starts, page) - 1
        if index < 0:
            return None
        vma = self._vmas[index]
        return vma if vma.contains(page) else None

    def vmas(self) -> List[Vma]:
        """All VMAs in address order."""
        return list(self._vmas)

    @property
    def vma_count(self) -> int:
        return len(self._vmas)

    # -- PTE / contents ----------------------------------------------

    def is_installed(self, page: int) -> bool:
        """True if a host PTE exists for ``page``."""
        return page in self.pte

    def install_pte(self, page: int, value: int) -> None:
        """Install a host PTE mapping ``page`` to content ``value``."""
        self.pte[page] = value

    def rss_pages(self) -> int:
        """Resident set size in pages (what procfs reports)."""
        return len(self.pte)

    def write_anon(self, page: int, value: int) -> None:
        """Record a write to an anonymous page's contents."""
        self.anon_contents[page] = value
        self.pte[page] = value

    def backing_value(self, page: int) -> int:
        """Content the process observes at ``page``: written anonymous
        contents win; otherwise the backing file's page; otherwise
        zero (fresh anonymous memory)."""
        if page in self.anon_contents:
            return self.anon_contents[page]
        vma = self.resolve(page)
        if vma is None:
            raise SimulationError(f"access to unmapped page {page} (SIGSEGV)")
        if isinstance(vma.backing, FileBacking):
            return vma.backing.file.page_value(vma.file_page(page))
        return 0

    def coverage_gaps(self) -> List[Tuple[int, int]]:
        """Unmapped ranges ``(start, npages)`` — must be empty for a
        correctly restored guest (memory-integrity invariant)."""
        gaps: List[Tuple[int, int]] = []
        cursor = 0
        for vma in self._vmas:
            if vma.start > cursor:
                gaps.append((cursor, vma.start - cursor))
            cursor = max(cursor, vma.end)
        if cursor < self.num_pages:
            gaps.append((cursor, self.num_pages - cursor))
        return gaps
