"""Host timing parameters, calibrated to the paper's Section 3.

The paper measures (Figure 2, §3.3, on an AWS c5d.metal host):

* warm anonymous page faults average 2.5 us, >90% under 4 us;
* page-cache minor faults average 3.7 us, >90% under 8 us;
* major faults read from disk and mostly land in 32-512 us;
* userfaultfd adds "several microseconds" of user-level overhead per
  fault, plus context switches that stall the vCPU (kvm_vcpu_block);
* the readahead window fetches neighbouring pages on each major fault.

Everything here is a knob: the ablation benchmarks override these to
probe sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.storage.filestore import PAGE_SIZE


@dataclass(frozen=True)
class HostParams:
    """Timing and policy constants of the simulated host kernel."""

    #: Bytes per page.
    page_size: int = PAGE_SIZE
    #: Anonymous (zero-fill) fault service time, microseconds.
    anon_fault_us: float = 2.5
    #: File-backed minor fault (page already in the page cache).
    minor_fault_us: float = 3.7
    #: Fault on a page whose host PTE already exists (e.g. installed
    #: by UFFDIO_COPY): only the KVM EPT fixup remains. Paper: "less
    #: than 4 microseconds".
    present_fault_us: float = 3.0
    #: Kernel entry/exit and bookkeeping added to a major fault on top
    #: of the device read itself.
    major_fault_overhead_us: float = 4.0
    #: Extra vCPU stall on any fault that blocks on I/O: after the
    #: page arrives, KVM waits for the guest CPU to be runnable again
    #: (the paper's kvm_vcpu_block component, §6.4 / Table 3).
    vcpu_block_overhead_us: float = 30.0
    #: Copy cost folded into a write fault on a clean file-backed page
    #: (MAP_PRIVATE copy-on-write).
    cow_copy_us: float = 1.0
    #: Base readahead window on a major fault (random access).
    readahead_pages: int = 8
    #: Ceiling the window ramps to for sequential fault streams.
    readahead_max_pages: int = 64
    #: userfaultfd: time to wake the user-level handler thread.
    uffd_wakeup_us: float = 4.0
    #: userfaultfd: UFFDIO_COPY cost per installed page.
    uffd_copy_us: float = 1.2
    #: userfaultfd: extra vCPU stall per user-handled fault caused by
    #: context switching before the guest can resume (paper §3.3:
    #: "the guest cannot immediately resume after a page fault is
    #: handled", and §6.4 kvm_vcpu_block waiting).
    uffd_resume_stall_us: float = 6.0
    #: mmap() syscall cost per mapped region (paper §4.6: mapping
    #: >1000 regions is "not negligible").
    mmap_region_us: float = 2.0
    #: mincore() cost: fixed syscall overhead plus per-page scan.
    mincore_base_us: float = 2.0
    mincore_per_page_us: float = 0.002
    #: procfs RSS poll cost and interval used by the recorder.
    procfs_poll_us: float = 3.0
    #: Host cores available to guest vCPUs (c5d.metal: 96 vCPUs; each
    #: guest uses 2 vCPUs in §6, so ~48 guests run unqueued).
    cpu_slots: int = 48
    #: Deterministic per-fault service-time jitter: each fault's CPU
    #: cost is scaled by up to +/- this fraction, keyed by a hash of
    #: (page, kind). Zero (the default) keeps costs exact for unit
    #: tests; the Figure 2 experiment enables it so the handling-time
    #: histogram spreads over buckets the way real measurements do.
    fault_jitter_fraction: float = 0.0

    def with_overrides(self, **overrides: Any) -> "HostParams":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (for reports)."""
        return {
            "page_size": self.page_size,
            "anon_fault_us": self.anon_fault_us,
            "minor_fault_us": self.minor_fault_us,
            "present_fault_us": self.present_fault_us,
            "major_fault_overhead_us": self.major_fault_overhead_us,
            "vcpu_block_overhead_us": self.vcpu_block_overhead_us,
            "cow_copy_us": self.cow_copy_us,
            "readahead_pages": self.readahead_pages,
            "readahead_max_pages": self.readahead_max_pages,
            "uffd_wakeup_us": self.uffd_wakeup_us,
            "uffd_copy_us": self.uffd_copy_us,
            "uffd_resume_stall_us": self.uffd_resume_stall_us,
            "mmap_region_us": self.mmap_region_us,
            "mincore_base_us": self.mincore_base_us,
            "mincore_per_page_us": self.mincore_per_page_us,
            "procfs_poll_us": self.procfs_poll_us,
            "cpu_slots": self.cpu_slots,
            "fault_jitter_fraction": self.fault_jitter_fraction,
        }


DEFAULT_HOST_PARAMS = HostParams()
"""Shared default parameter set."""
