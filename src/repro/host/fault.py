"""The host page-fault handler.

Every guest memory access funnels through :meth:`FaultHandler.access`.
Guest memory is mapped at two levels, as on real KVM hosts:

* the **host PTE** (``AddressSpace.pte``) — the VMM process's mapping
  of the page, installed by fault handling or by ``UFFDIO_COPY``;
* the **EPT entry** (``AddressSpace.ept``) — the guest-physical
  mapping KVM establishes the first time the vCPU touches the page.

An access classifies exactly as the paper's Section 3 measures:

==========  ========================================================
Kind        Meaning and cost
==========  ========================================================
NONE        EPT entry exists — no fault, no cost.
PRESENT     Host PTE exists but no EPT entry (e.g. installed by
            UFFDIO_COPY): only the fast KVM fixup (<4 us; REAP's
            in-working-set faults).
ANON        Anonymous zero-fill fault (~2.5 us): warm-VM pages and
            FaaSnap's zero regions (§4.5).
MINOR       File page already resident in the host page cache
            (~3.7 us), or a sparse-file hole (zeros, no I/O).
MAJOR       File page not resident: blocks on disk I/O, with
            readahead. If another thread (FaaSnap loader, readahead,
            another VM) already has an in-flight read for the page
            the fault waits on it instead of issuing a duplicate
            request — cheaper, and charged no block I/O of its own
            (§6.5).
UFFD        Delegated to a userfaultfd handler (REAP).
COW         First write to a clean file-backed page: the private
            copy-on-write break (guest memory is MAP_PRIVATE).
==========  ========================================================

Each handled fault appends a :class:`FaultRecord`, from which the
paper's histograms (Fig. 2), fault counts and times (Fig. 9), and
waiting-time breakdowns (Table 3) are computed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.host.readahead import ReadaheadPolicy
from repro.host.uffd import UserfaultfdManager
from repro.host.vma import ANONYMOUS, AddressSpace, FileBacking
from repro.sim import Environment, Event, SimulationError


class FaultKind(enum.Enum):
    """Classification of a guest memory access at the host."""

    NONE = "none"
    PRESENT = "present"
    ANON = "anon"
    MINOR = "minor"
    MAJOR = "major"
    UFFD = "uffd"
    COW = "cow"


#: Kinds that represent an actual page fault (NONE is a plain access).
FAULTING_KINDS = frozenset(
    {
        FaultKind.PRESENT,
        FaultKind.ANON,
        FaultKind.MINOR,
        FaultKind.MAJOR,
        FaultKind.UFFD,
        FaultKind.COW,
    }
)


@dataclass
class FaultRecord:
    """One handled fault on the simulated timeline."""

    kind: FaultKind
    page: int
    start_us: float
    duration_us: float
    #: Device read requests this fault issued itself.
    block_requests: int = 0
    bytes_read: int = 0


@dataclass
class FaultStats:
    """Aggregated view over a list of fault records."""

    records: List[FaultRecord] = field(default_factory=list)

    def add(self, record: FaultRecord) -> None:
        self.records.append(record)

    def count(self, kind: Optional[FaultKind] = None) -> int:
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r.kind is kind)

    def total_time_us(self, kind: Optional[FaultKind] = None) -> float:
        if kind is None:
            return sum(r.duration_us for r in self.records)
        return sum(r.duration_us for r in self.records if r.kind is kind)

    def total_block_requests(self) -> int:
        return sum(r.block_requests for r in self.records)

    def total_bytes_read(self) -> int:
        return sum(r.bytes_read for r in self.records)

    def durations(self, kind: Optional[FaultKind] = None) -> List[float]:
        if kind is None:
            return [r.duration_us for r in self.records]
        return [r.duration_us for r in self.records if r.kind is kind]

    def merged_with(self, other: "FaultStats") -> "FaultStats":
        merged = FaultStats()
        merged.records = self.records + other.records
        return merged


class FaultHandler:
    """Per-VM host fault handler bound to a shared page cache."""

    def __init__(
        self,
        env: Environment,
        params: HostParams,
        cache: PageCache,
        space: AddressSpace,
        uffd: Optional[UserfaultfdManager] = None,
        label: str = "vm",
    ):
        self.env = env
        self.params = params
        self.cache = cache
        self.space = space
        self.uffd = uffd
        self.label = label
        self.readahead = ReadaheadPolicy(params)
        self.stats = FaultStats()
        #: Device whose I/O counters are attributed to userfaultfd
        #: faults (set when a uffd handler reads from disk on the
        #: VM's behalf, e.g. REAP's out-of-working-set path).
        self.io_device = None

    def _cost(self, base_us: float, page: int, salt: int) -> float:
        """Service cost with deterministic per-(page, kind) jitter.

        Real fault costs vary with cache and TLB state; scaling by a
        hash of the page keeps runs reproducible while spreading the
        handling-time distribution (Figure 2) realistically.
        """
        jitter = self.params.fault_jitter_fraction
        if jitter <= 0:
            return base_us
        bucket = ((page * 2_654_435_761 + salt * 40_503) >> 7) % 1024
        factor = 1.0 + jitter * (2.0 * bucket / 1024.0 - 1.0)
        return base_us * factor

    def access(
        self, page: int, write: bool = False, value: Optional[int] = None
    ) -> Generator[Event, Any, FaultRecord]:
        """Process helper: one guest access to ``page``.

        ``write=True`` with ``value`` models the guest storing new
        content. Returns the :class:`FaultRecord` (kind ``NONE`` for a
        faultless access). Usage::

            record = yield from handler.access(page, write=True, value=v)
        """
        start = self.env.now
        space = self.space

        if page in space.ept:
            record = self._mapped_access(page, write, value, start)
            if record.duration_us > 0:
                yield self.env.timeout(record.duration_us)
                record.duration_us = self.env.now - start
            if record.kind is not FaultKind.NONE:
                self.stats.add(record)
            return record

        if space.is_installed(page):
            # Host PTE exists (UFFDIO_COPY or a previous mapping):
            # only the KVM EPT fixup remains.
            yield self.env.timeout(self._cost(self.params.present_fault_us, page, 1))
            space.ept.add(page)
            record = FaultRecord(
                FaultKind.PRESENT, page, start, self.env.now - start
            )
            self._apply_write(page, write, value)
            self.stats.add(record)
            return record

        registration = self.uffd.lookup(page) if self.uffd else None
        if registration is not None:
            before_requests, before_bytes = self._device_counters()
            content = yield from self.uffd.handle_fault(registration, page)
            after_requests, after_bytes = self._device_counters()
            space.install_pte(page, content)
            space.ept.add(page)
            self._apply_write(page, write, value)
            record = FaultRecord(
                FaultKind.UFFD,
                page,
                start,
                self.env.now - start,
                after_requests - before_requests,
                after_bytes - before_bytes,
            )
            self.stats.add(record)
            return record

        vma = space.resolve(page)
        if vma is None:
            raise SimulationError(
                f"{self.label}: access to unmapped page {page} (SIGSEGV)"
            )

        if vma.backing is ANONYMOUS:
            yield self.env.timeout(self._cost(self.params.anon_fault_us, page, 2))
            space.install_pte(page, space.anon_contents.get(page, 0))
            space.ept.add(page)
            self._apply_write(page, write, value)
            record = FaultRecord(FaultKind.ANON, page, start, self.env.now - start)
            self.stats.add(record)
            return record

        assert isinstance(vma.backing, FileBacking)
        file = vma.backing.file
        file_page = vma.file_page(page)

        if file.is_hole(file_page) or self.cache.contains(file.name, file_page):
            # Resident page or sparse hole: minor fault, no I/O.
            yield self.env.timeout(self._cost(self.params.minor_fault_us, page, 3))
            kind = FaultKind.MINOR
            requests = bytes_read = 0
        else:
            pending = self.cache.pending_event(file.name, file_page)
            if pending is not None:
                # Another thread is already reading this page: wait on
                # its completion, then install — a major fault with no
                # block I/O of its own.
                yield pending
                yield self.env.timeout(
                    self.params.minor_fault_us
                    + self.params.vcpu_block_overhead_us
                )
                kind = FaultKind.MAJOR
                requests = bytes_read = 0
            else:
                device = file.device
                before_requests = device.stats.requests
                before_bytes = device.stats.bytes_read
                yield self.env.timeout(self.params.major_fault_overhead_us)
                yield from self.readahead.fault_read(file, self.cache, file_page)
                # The vCPU blocked on the read; waking it costs extra
                # (kvm_vcpu_block, Table 3).
                yield self.env.timeout(self.params.vcpu_block_overhead_us)
                kind = FaultKind.MAJOR
                requests = device.stats.requests - before_requests
                bytes_read = device.stats.bytes_read - before_bytes

        if write:
            # MAP_PRIVATE write fault: the private copy happens inside
            # the same fault.
            yield self.env.timeout(self.params.cow_copy_us)
        space.install_pte(page, file.page_value(file_page))
        space.ept.add(page)
        self._apply_write(page, write, value)
        record = FaultRecord(
            kind, page, start, self.env.now - start, requests, bytes_read
        )
        self.stats.add(record)
        return record

    def _mapped_access(
        self, page: int, write: bool, value: Optional[int], start: float
    ) -> FaultRecord:
        """Access to a page the guest already has mapped in EPT."""
        space = self.space
        if not write:
            return FaultRecord(FaultKind.NONE, page, start, 0.0)
        if page in space.anon_contents:
            space.write_anon(page, self._required_value(value))
            return FaultRecord(FaultKind.NONE, page, start, 0.0)
        vma = space.resolve(page)
        if vma is not None and isinstance(vma.backing, FileBacking):
            # First store to a clean MAP_PRIVATE file page: CoW break.
            space.write_anon(page, self._required_value(value))
            return FaultRecord(
                FaultKind.COW,
                page,
                start,
                self.params.anon_fault_us + self.params.cow_copy_us,
            )
        space.write_anon(page, self._required_value(value))
        return FaultRecord(FaultKind.NONE, page, start, 0.0)

    def _device_counters(self):
        if self.io_device is None:
            return (0, 0)
        return (self.io_device.stats.requests, self.io_device.stats.bytes_read)

    def _apply_write(self, page: int, write: bool, value: Optional[int]) -> None:
        if write:
            self.space.write_anon(page, self._required_value(value))

    @staticmethod
    def _required_value(value: Optional[int]) -> int:
        if value is None:
            raise SimulationError("write access requires a value")
        return value

    def observed_value(self, page: int) -> int:
        """Content the guest observes at ``page`` right now (for
        memory-integrity assertions in tests)."""
        return self.space.backing_value(page)
