"""The host page-fault handler.

Every guest memory access funnels through :meth:`FaultHandler.access`.
Guest memory is mapped at two levels, as on real KVM hosts:

* the **host PTE** (``AddressSpace.pte``) — the VMM process's mapping
  of the page, installed by fault handling or by ``UFFDIO_COPY``;
* the **EPT entry** (``AddressSpace.ept``) — the guest-physical
  mapping KVM establishes the first time the vCPU touches the page.

An access classifies exactly as the paper's Section 3 measures:

==========  ========================================================
Kind        Meaning and cost
==========  ========================================================
NONE        EPT entry exists — no fault, no cost.
PRESENT     Host PTE exists but no EPT entry (e.g. installed by
            UFFDIO_COPY): only the fast KVM fixup (<4 us; REAP's
            in-working-set faults).
ANON        Anonymous zero-fill fault (~2.5 us): warm-VM pages and
            FaaSnap's zero regions (§4.5).
MINOR       File page already resident in the host page cache
            (~3.7 us), or a sparse-file hole (zeros, no I/O).
MAJOR       File page not resident: blocks on disk I/O, with
            readahead. If another thread (FaaSnap loader, readahead,
            another VM) already has an in-flight read for the page
            the fault waits on it instead of issuing a duplicate
            request — cheaper, and charged no block I/O of its own
            (§6.5).
UFFD        Delegated to a userfaultfd handler (REAP).
COW         First write to a clean file-backed page: the private
            copy-on-write break (guest memory is MAP_PRIVATE).
==========  ========================================================

Each handled fault appends a :class:`FaultRecord`, from which the
paper's histograms (Fig. 2), fault counts and times (Fig. 9), and
waiting-time breakdowns (Table 3) are computed.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple

from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.host.readahead import ReadaheadPolicy
from repro.host.uffd import UserfaultfdManager
from repro.host.vma import ANONYMOUS, AddressSpace, FileBacking, Vma
from repro.sim import Environment, Event, SimulationError
from repro.storage.filestore import PAGE_SIZE


#: Sentinel returned by :meth:`FaultHandler.fast_access` when servicing
#: the access eagerly would install a PTE at or past the observer
#: horizon (see :class:`repro.vm.vcpu.ObservationHorizon`).
HORIZON_BLOCKED = object()


class SyncReadPlan:
    """A fault-time readahead read computed synchronously but not yet
    applied: the window, the per-request timings, and the device
    sequential-detector cursor as it would stand after the read. Split
    from the commit so a caller can still bail (observer horizon,
    pending heap event) without having mutated anything."""

    __slots__ = (
        "readahead",
        "file",
        "pages",
        "window_size",
        "reads",
        "end",
        "bytes_total",
        "seq_cursor",
    )

    def __init__(self, readahead, file, pages, window_size, reads, end,
                 bytes_total, seq_cursor):
        self.readahead = readahead
        self.file = file
        self.pages = pages
        self.window_size = window_size
        self.reads = reads
        self.end = end
        self.bytes_total = bytes_total
        self.seq_cursor = seq_cursor


def plan_uncontended_read(
    readahead: ReadaheadPolicy,
    file,
    cache: PageCache,
    fault_page: int,
    start: float,
) -> Optional["SyncReadPlan"]:
    """Plan a fault's readahead read for synchronous servicing.

    Returns ``None`` when the device would queue the request (a slot or
    the bandwidth channel is busy) — then the event-driven path must
    run. Otherwise replicates, addition for addition, the float
    arithmetic of :meth:`repro.storage.device.BlockDevice.read` for
    each data run of the window, so committing the plan lands on a
    bit-identical completion instant.
    """
    device = file.device
    if not device.can_read_immediately():
        return None
    pages, window_size = readahead.plan(file, cache, fault_page)
    spec = device.spec
    seq_cursor = device._next_sequential_offset
    end = start
    reads = []
    bytes_total = 0
    for run_start, run_len in file.data_runs(pages[0], len(pages)):
        offset = file.device_offset(run_start)
        nbytes = run_len * PAGE_SIZE
        sequential = offset == seq_cursor
        seq_cursor = offset + nbytes
        latency = (
            spec.sequential_latency_us
            if sequential
            else spec.random_latency_us
        )
        latency = max(latency, spec.min_request_interval_us)
        run_begin = end
        end = end + latency
        end = end + nbytes / spec.bandwidth_bytes_per_us
        reads.append((nbytes, sequential, end - run_begin))
        bytes_total += nbytes
    return SyncReadPlan(
        readahead, file, pages, window_size, reads, end, bytes_total, seq_cursor
    )


def commit_uncontended_read(cache: PageCache, plan: "SyncReadPlan") -> None:
    """Apply a :class:`SyncReadPlan`: stream state, device statistics,
    sequential-detector cursor, and cache residency — the same
    mutations, in the same order, the event-driven read performs."""
    file = plan.file
    plan.readahead.commit(file.name, plan.pages[0], plan.pages, plan.window_size)
    stats = file.device.stats
    for nbytes, sequential, elapsed in plan.reads:
        stats.requests += 1
        if sequential:
            stats.sequential_requests += 1
        stats.bytes_read += nbytes
        stats.per_request_sizes.append(nbytes)
        stats.busy_time_us += elapsed
    file.device._next_sequential_offset = plan.seq_cursor
    cache.insert_range(file.name, plan.pages[0], len(plan.pages))


class FaultKind(enum.Enum):
    """Classification of a guest memory access at the host."""

    NONE = "none"
    PRESENT = "present"
    ANON = "anon"
    MINOR = "minor"
    MAJOR = "major"
    UFFD = "uffd"
    COW = "cow"


#: Kinds that represent an actual page fault (NONE is a plain access).
FAULTING_KINDS = frozenset(
    {
        FaultKind.PRESENT,
        FaultKind.ANON,
        FaultKind.MINOR,
        FaultKind.MAJOR,
        FaultKind.UFFD,
        FaultKind.COW,
    }
)


@dataclass(slots=True)
class FaultRecord:
    """One handled fault on the simulated timeline."""

    kind: FaultKind
    page: int
    start_us: float
    duration_us: float
    #: Device read requests this fault issued itself.
    block_requests: int = 0
    bytes_read: int = 0


@dataclass
class FaultStats:
    """Aggregated view over a list of fault records."""

    records: List[FaultRecord] = field(default_factory=list)

    def add(self, record: FaultRecord) -> None:
        self.records.append(record)

    def count(self, kind: Optional[FaultKind] = None) -> int:
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r.kind is kind)

    def total_time_us(self, kind: Optional[FaultKind] = None) -> float:
        if kind is None:
            return sum(r.duration_us for r in self.records)
        return sum(r.duration_us for r in self.records if r.kind is kind)

    def total_block_requests(self) -> int:
        return sum(r.block_requests for r in self.records)

    def total_bytes_read(self) -> int:
        return sum(r.bytes_read for r in self.records)

    def durations(self, kind: Optional[FaultKind] = None) -> List[float]:
        if kind is None:
            return [r.duration_us for r in self.records]
        return [r.duration_us for r in self.records if r.kind is kind]

    def merged_with(self, other: "FaultStats") -> "FaultStats":
        merged = FaultStats()
        merged.records = self.records + other.records
        return merged


class FaultHandler:
    """Per-VM host fault handler bound to a shared page cache."""

    def __init__(
        self,
        env: Environment,
        params: HostParams,
        cache: PageCache,
        space: AddressSpace,
        uffd: Optional[UserfaultfdManager] = None,
        label: str = "vm",
    ):
        self.env = env
        self.params = params
        self.cache = cache
        self.space = space
        self.uffd = uffd
        self.label = label
        self.readahead = ReadaheadPolicy(params)
        self.stats = FaultStats()
        #: Last VMA the fast path resolved, valid while the space's
        #: mapping ``version`` is unchanged — consecutive accesses
        #: overwhelmingly hit the same region.
        self._vma_cache: Optional[Vma] = None
        self._vma_version = -1
        #: Device whose I/O counters are attributed to userfaultfd
        #: faults (set when a uffd handler reads from disk on the
        #: VM's behalf, e.g. REAP's out-of-working-set path).
        self.io_device = None

    def _cost(self, base_us: float, page: int, salt: int) -> float:
        """Service cost with deterministic per-(page, kind) jitter.

        Real fault costs vary with cache and TLB state; scaling by a
        hash of the page keeps runs reproducible while spreading the
        handling-time distribution (Figure 2) realistically.
        """
        jitter = self.params.fault_jitter_fraction
        if jitter <= 0:
            return base_us
        bucket = ((page * 2_654_435_761 + salt * 40_503) >> 7) % 1024
        factor = 1.0 + jitter * (2.0 * bucket / 1024.0 - 1.0)
        return base_us * factor

    def access(
        self, page: int, write: bool = False, value: Optional[int] = None
    ) -> Generator[Event, Any, FaultRecord]:
        """Process helper: one guest access to ``page``.

        ``write=True`` with ``value`` models the guest storing new
        content. Returns the :class:`FaultRecord` (kind ``NONE`` for a
        faultless access). Usage::

            record = yield from handler.access(page, write=True, value=v)
        """
        start = self.env.now
        space = self.space

        if page in space.ept:
            record = self._mapped_access(page, write, value, start)
            if record.duration_us > 0:
                yield self.env.timeout(record.duration_us)
                record.duration_us = self.env.now - start
            if record.kind is not FaultKind.NONE:
                self.stats.add(record)
            return record

        if space.is_installed(page):
            # Host PTE exists (UFFDIO_COPY or a previous mapping):
            # only the KVM EPT fixup remains.
            yield self.env.timeout(self._cost(self.params.present_fault_us, page, 1))
            space.ept.add(page)
            record = FaultRecord(
                FaultKind.PRESENT, page, start, self.env.now - start
            )
            self._apply_write(page, write, value)
            self.stats.add(record)
            return record

        registration = self.uffd.lookup(page) if self.uffd else None
        if registration is not None:
            before_requests, before_bytes = self._device_counters()
            content = yield from self.uffd.handle_fault(registration, page)
            after_requests, after_bytes = self._device_counters()
            space.install_pte(page, content)
            space.ept.add(page)
            self._apply_write(page, write, value)
            record = FaultRecord(
                FaultKind.UFFD,
                page,
                start,
                self.env.now - start,
                after_requests - before_requests,
                after_bytes - before_bytes,
            )
            self.stats.add(record)
            return record

        vma = space.resolve(page)
        if vma is None:
            raise SimulationError(
                f"{self.label}: access to unmapped page {page} (SIGSEGV)"
            )

        if vma.backing is ANONYMOUS:
            yield self.env.timeout(self._cost(self.params.anon_fault_us, page, 2))
            space.install_pte(page, space.anon_contents.get(page, 0))
            space.ept.add(page)
            self._apply_write(page, write, value)
            record = FaultRecord(FaultKind.ANON, page, start, self.env.now - start)
            self.stats.add(record)
            return record

        assert isinstance(vma.backing, FileBacking)
        file = vma.backing.file
        file_page = vma.file_page(page)

        if file.is_hole(file_page) or self.cache.contains(file.name, file_page):
            # Resident page or sparse hole: minor fault, no I/O.
            yield self.env.timeout(self._cost(self.params.minor_fault_us, page, 3))
            kind = FaultKind.MINOR
            requests = bytes_read = 0
        else:
            pending = self.cache.pending_event(file.name, file_page)
            if pending is not None:
                # Another thread is already reading this page: wait on
                # its completion, then install — a major fault with no
                # block I/O of its own.
                yield pending
                yield self.env.timeout(
                    self.params.minor_fault_us
                    + self.params.vcpu_block_overhead_us
                )
                kind = FaultKind.MAJOR
                requests = bytes_read = 0
            else:
                device = file.device
                before_requests = device.stats.requests
                before_bytes = device.stats.bytes_read
                yield self.env.timeout(self.params.major_fault_overhead_us)
                yield from self.readahead.fault_read(file, self.cache, file_page)
                # The vCPU blocked on the read; waking it costs extra
                # (kvm_vcpu_block, Table 3).
                yield self.env.timeout(self.params.vcpu_block_overhead_us)
                kind = FaultKind.MAJOR
                requests = device.stats.requests - before_requests
                bytes_read = device.stats.bytes_read - before_bytes

        if write:
            # MAP_PRIVATE write fault: the private copy happens inside
            # the same fault.
            yield self.env.timeout(self.params.cow_copy_us)
        space.install_pte(page, file.page_value(file_page))
        space.ept.add(page)
        self._apply_write(page, write, value)
        record = FaultRecord(
            kind, page, start, self.env.now - start, requests, bytes_read
        )
        self.stats.add(record)
        return record

    def fast_access(
        self,
        page: int,
        write: bool,
        value: Optional[int],
        vnow: float,
        horizon: float = float("inf"),
    ) -> Any:
        """Service one access synchronously if it cannot block.

        This is the batching fast path (the paper's §3 observation
        that anonymous ≈2.5 µs, minor ≈3.7 µs and EPT-fixup faults
        have deterministic service times makes aggregation exact):
        accesses whose outcome and cost depend only on state this VM
        itself mutates — EPT hits, installed-PTE fixups, anonymous
        zero-fills, sparse-file holes, and page-cache minor faults on
        an unbounded cache — are handled without touching the event
        heap. ``vnow`` is the caller's virtual clock; the return is
        ``(record, new_vnow)`` computed with exactly the float
        arithmetic the per-event path would have produced, so a later
        :meth:`Environment.wake_at` flush lands the real clock on a
        bit-identical instant.

        Major faults are also serviced synchronously when the device
        is idle and no other simulation event fires before the fault
        would complete (checked against the event heap), which covers
        the common cold-start stream of one uncontended readahead
        window per fault.

        Returns ``None`` when the access must take the event-driven
        slow path: userfaultfd-delegated pages, waits on in-flight
        reads, contended major faults, and faults against a
        capacity-bounded cache (whose LRU/eviction behaviour is
        order-sensitive).

        ``horizon`` is the next instant a concurrent observer reads
        the installed-PTE count (the mincore recorder's RSS poll).
        Returns :data:`HORIZON_BLOCKED` instead of installing when the
        per-event completion instant would land at or past it — the
        caller must flush and retry, so the observer never sees an
        install earlier than the per-event path would have made it.
        """
        space = self.space
        params = self.params

        if page in space.ept:
            if not write:
                # The overwhelmingly common case: a read of an
                # already-mapped page costs nothing.
                return FaultRecord(FaultKind.NONE, page, vnow, 0.0), vnow
            record = self._mapped_access(page, write, value, vnow)
            end = vnow
            if record.duration_us > 0:
                end = vnow + record.duration_us
                record.duration_us = end - vnow
            if record.kind is not FaultKind.NONE:
                self.stats.records.append(record)
            return record, end

        if page in space.pte:
            end = vnow + self._cost(params.present_fault_us, page, 1)
            if end >= horizon:
                return HORIZON_BLOCKED
            space.ept.add(page)
            record = FaultRecord(FaultKind.PRESENT, page, vnow, end - vnow)
            if write:
                space.write_anon(page, self._required_value(value))
            self.stats.records.append(record)
            return record, end

        if self.uffd is not None:
            registration = self.uffd.lookup(page)
            if registration is not None:
                return self._fast_uffd(
                    registration, page, write, value, vnow, horizon
                )

        # One-entry VMA cache: consecutive accesses overwhelmingly hit
        # the same region, making the bisect in resolve() the
        # exception rather than the rule.
        vma = self._vma_cache
        if (
            vma is None
            or self._vma_version != space.version
            or not (vma.start <= page < vma.start + vma.npages)
        ):
            vma = space.resolve(page)
            if vma is None:
                raise SimulationError(
                    f"{self.label}: access to unmapped page {page} (SIGSEGV)"
                )
            self._vma_cache = vma
            self._vma_version = space.version

        if vma.backing is ANONYMOUS:
            end = vnow + self._cost(params.anon_fault_us, page, 2)
            if end >= horizon:
                return HORIZON_BLOCKED
            space.pte[page] = space.anon_contents.get(page, 0)
            space.ept.add(page)
            if write:
                space.write_anon(page, self._required_value(value))
            record = FaultRecord(FaultKind.ANON, page, vnow, end - vnow)
            self.stats.records.append(record)
            return record, end

        backing = vma.backing
        file = backing.file
        file_page = backing.file_start_page + (page - vma.start)

        # Inlined StoredFile.is_hole / page_value and the unbounded
        # page-cache residency probe: this branch runs once per minor
        # fault and the attribute/range-check overhead of the general
        # accessors is measurable at that rate.
        content = file.pages.get(file_page, 0)
        cache = self.cache
        if cache.capacity_pages is None:
            runs = cache._runs.get(file.name)
            if runs is not None:
                index = bisect_right(runs.starts, file_page) - 1
                resident = index >= 0 and file_page < runs.ends[index]
            else:
                resident = False
        else:
            resident = False
        if (file.sparse and content == 0) or resident:
            end = vnow + self._cost(params.minor_fault_us, page, 3)
            if write:
                end = end + params.cow_copy_us
            if end >= horizon:
                return HORIZON_BLOCKED
            space.pte[page] = content
            space.ept.add(page)
            if write:
                space.write_anon(page, self._required_value(value))
            record = FaultRecord(FaultKind.MINOR, page, vnow, end - vnow)
            self.stats.records.append(record)
            return record, end

        # MAJOR fault. Its service time is computable synchronously
        # when (a) the device would grant a queue slot and the
        # bandwidth channel immediately, and (b) no event anywhere in
        # the simulation fires at or before the fault's completion —
        # then no other process can contend for the device, mutate the
        # page cache, or observe the eagerly-applied state any earlier
        # than the per-event path would have produced it.
        if self.cache.capacity_pages is not None:
            return None
        if self.cache.has_pending(file.name, file_page):
            # Wait on the in-flight read: inherently event-driven.
            return None
        plan = plan_uncontended_read(
            self.readahead,
            file,
            self.cache,
            file_page,
            vnow + params.major_fault_overhead_us,
        )
        if plan is None:
            return None
        end = plan.end + params.vcpu_block_overhead_us
        if write:
            end = end + params.cow_copy_us
        if end >= horizon or self.env.peek() <= end:
            # Something else runs before this fault would finish (or
            # the observer would see it): flush and retry, or fall to
            # the slow path.
            return HORIZON_BLOCKED
        commit_uncontended_read(self.cache, plan)
        space.install_pte(page, file.page_value(file_page))
        space.ept.add(page)
        self._apply_write(page, write, value)
        record = FaultRecord(
            FaultKind.MAJOR,
            page,
            vnow,
            end - vnow,
            len(plan.reads),
            plan.bytes_total,
        )
        self.stats.add(record)
        return record, end

    def _fast_uffd(
        self,
        registration,
        page: int,
        write: bool,
        value: Optional[int],
        vnow: float,
        horizon: float,
    ) -> Any:
        """Synchronous twin of the userfaultfd delegation protocol.

        The wake-up, UFFDIO_COPY and resume-stall legs are fixed
        costs; the handler's own work is delegated to the
        registration's ``fast_handler`` (when it provides one), which
        prices the fault on a virtual clock without mutating anything.
        The same strict heap/horizon gate as the major-fault fast path
        then guarantees no other process could have interleaved, so
        committing eagerly is indistinguishable from the event path.
        """
        fast_handler = registration.fast_handler
        if fast_handler is None:
            return None
        params = self.params
        t = vnow + params.uffd_wakeup_us
        outcome = fast_handler(page, t)
        if outcome is None:
            return None
        content, t, read_plan = outcome
        t = t + params.uffd_copy_us
        end = t + (
            params.uffd_resume_stall_us + params.vcpu_block_overhead_us
        )
        if end >= horizon or self.env.peek() <= end:
            return HORIZON_BLOCKED
        self.uffd.delegated_faults += 1
        requests = bytes_read = 0
        if read_plan is not None:
            commit_uncontended_read(self.cache, read_plan)
            if self.io_device is read_plan.file.device:
                requests = len(read_plan.reads)
                bytes_read = read_plan.bytes_total
        space = self.space
        space.install_pte(page, content)
        space.ept.add(page)
        self._apply_write(page, write, value)
        record = FaultRecord(
            FaultKind.UFFD, page, vnow, end - vnow, requests, bytes_read
        )
        self.stats.add(record)
        return record, end

    def _mapped_access(
        self, page: int, write: bool, value: Optional[int], start: float
    ) -> FaultRecord:
        """Access to a page the guest already has mapped in EPT."""
        space = self.space
        if not write:
            return FaultRecord(FaultKind.NONE, page, start, 0.0)
        if page in space.anon_contents:
            space.write_anon(page, self._required_value(value))
            return FaultRecord(FaultKind.NONE, page, start, 0.0)
        vma = space.resolve(page)
        if vma is not None and isinstance(vma.backing, FileBacking):
            # First store to a clean MAP_PRIVATE file page: CoW break.
            space.write_anon(page, self._required_value(value))
            return FaultRecord(
                FaultKind.COW,
                page,
                start,
                self.params.anon_fault_us + self.params.cow_copy_us,
            )
        space.write_anon(page, self._required_value(value))
        return FaultRecord(FaultKind.NONE, page, start, 0.0)

    def _device_counters(self):
        if self.io_device is None:
            return (0, 0)
        return (self.io_device.stats.requests, self.io_device.stats.bytes_read)

    def _apply_write(self, page: int, write: bool, value: Optional[int]) -> None:
        if write:
            self.space.write_anon(page, self._required_value(value))

    @staticmethod
    def _required_value(value: Optional[int]) -> int:
        if value is None:
            raise SimulationError("write access requires a value")
        return value

    def observed_value(self, page: int) -> int:
        """Content the guest observes at ``page`` right now (for
        memory-integrity assertions in tests)."""
        return self.space.backing_value(page)
