"""mincore(2): which pages of a mapping are resident.

FaaSnap's host page recording (§4.4) calls ``mincore`` repeatedly on
the mapped memory file to discover pages brought in since the last
call — including pages the kernel's readahead cached that the guest
never faulted on. That relaxation is what makes FaaSnap's working set
tolerant to input changes.

``mincore`` reads the present bits; it does not fault anything in and
does not perturb LRU state, so these helpers use the cache's
non-touching ``peek``.
"""

from __future__ import annotations

from typing import Any, Generator, List, Set

from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.sim import Environment, Event


def mincore_file(
    env: Environment,
    params: HostParams,
    cache: PageCache,
    file_name: str,
    num_pages: int,
) -> Generator[Event, Any, List[bool]]:
    """Process helper: the present-bit vector of a file's pages.

    Charges the syscall's scan cost (base + per page) on the simulated
    clock and returns ``vec[i] is True`` iff file page ``i`` is in the
    host page cache.
    """
    yield env.timeout(
        params.mincore_base_us + params.mincore_per_page_us * num_pages
    )
    return [cache.peek(file_name, page) for page in range(num_pages)]


def mincore_new_pages(
    env: Environment,
    params: HostParams,
    cache: PageCache,
    file_name: str,
    num_pages: int,
    already_seen: Set[int],
) -> Generator[Event, Any, List[int]]:
    """Process helper: pages resident now but not in ``already_seen``.

    This is the recorder's incremental scan: each call returns the
    pages that became resident since the previous call, in ascending
    page order. The caller owns ``already_seen`` and this function
    updates it in place.
    """
    vector = yield from mincore_file(env, params, cache, file_name, num_pages)
    fresh = [
        page
        for page, present in enumerate(vector)
        if present and page not in already_seen
    ]
    already_seen.update(fresh)
    return fresh
