"""procfs: the RSS interface the FaaSnap recorder polls.

Paper §5: "The daemon polls procfs for the resident set size (RSS) of
the guest. Once the RSS has more than 1024 new pages, it calls
mincore to record them." RSS here is the VMM process's resident set —
the number of installed host PTEs for the guest region.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.host.params import HostParams
from repro.host.vma import AddressSpace
from repro.sim import Environment, Event


class Procfs:
    """Read-only process statistics for one VMM process."""

    def __init__(self, env: Environment, params: HostParams, space: AddressSpace):
        self.env = env
        self.params = params
        self.space = space
        self.polls = 0

    def rss_pages(self) -> Generator[Event, Any, int]:
        """Process helper: read the guest region's RSS in pages.

        Charges the procfs read cost and returns the number of
        resident pages.
        """
        yield self.env.timeout(self.params.procfs_poll_us)
        self.polls += 1
        return self.space.rss_pages()
