"""The host OS page cache.

Keyed by ``(file name, page index)``. Two states matter to the
simulation:

* **present** — the page's contents are resident; a file-backed fault
  on it is a *minor* fault.
* **pending** — some process (the FaaSnap loader, a readahead window,
  another VM's fault) has an in-flight disk read for the page. A
  fault arriving meanwhile blocks on the existing read instead of
  issuing a duplicate one — this is how bursty same-snapshot VMs
  "load the cache for each other" (paper §6.6) and why FaaSnap's
  concurrent-paging major faults are cheaper than Firecracker's
  (§6.5).

An optional capacity bound evicts in LRU order; the paper's host has
192 GB of memory so the experiments never evict, but the policy is
implemented and tested for completeness.

Residency is stored one of two ways, chosen at construction:

* **Unbounded** (``capacity_pages=None``, the experiments' setting):
  per-file sorted runs of half-open intervals. Snapshot working sets
  are large and mostly contiguous — loaders, readahead windows and
  sequential scans insert neighbouring pages — so a megabyte of
  residency collapses to a handful of ``[start, end)`` boundary pairs
  instead of hundreds of thousands of set entries, and
  :meth:`insert_range` merges a whole window in one splice.
* **Bounded**: the classic ``OrderedDict`` LRU, unchanged, since
  eviction needs per-page recency.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim import Environment, Event, SimulationError

PageKey = Tuple[str, int]

#: Placeholder for an in-flight read nobody waits on yet. The pending
#: map stores this instead of an :class:`Event` until the first waiter
#: asks for the event (``pending_event``), so bulk loaders and
#: readahead windows never allocate events — or schedule no-callback
#: completions — for the overwhelmingly common uncontended case.
_PENDING_PLACEHOLDER = object()


class _IntervalRuns:
    """Sorted, disjoint, non-adjacent half-open runs of page indices."""

    __slots__ = ("starts", "ends", "count")

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.count = 0

    def contains(self, page: int) -> bool:
        index = bisect_right(self.starts, page) - 1
        return index >= 0 and page < self.ends[index]

    def gaps_in(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-ranges of ``[start, end)`` *not* covered by any run, in
        ascending order. The complement of residency — what a loader
        still has to read."""
        starts, ends = self.starts, self.ends
        cursor = start
        index = bisect_right(starts, start) - 1
        if index >= 0 and start < ends[index]:
            cursor = ends[index]
        index += 1
        gaps: List[Tuple[int, int]] = []
        n = len(starts)
        while cursor < end and index < n and starts[index] < end:
            if starts[index] > cursor:
                gaps.append((cursor, starts[index]))
            if ends[index] > cursor:
                cursor = ends[index]
            index += 1
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def add_range(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Mark ``[start, end)`` resident.

        Returns the sub-ranges that were newly inserted, in ascending
        order — exactly the pages a per-page loop would have inserted,
        so callers can maintain insertion logs and counters
        identically.
        """
        starts, ends = self.starts, self.ends
        # Fast path: at or past the tail run — the common shape for
        # loaders, readahead windows and sequential scans.
        if starts and start >= ends[-1]:
            if start == ends[-1]:
                ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
            self.count += end - start
            return [(start, end)]
        # Runs that overlap or are adjacent to [start, end): the first
        # whose end reaches start, through the last whose start is at
        # most end (end == run.start is adjacency — merge to keep the
        # run list canonical).
        low = bisect_left(ends, start)
        high = bisect_right(starts, end) - 1
        if low > high:
            starts.insert(low, start)
            ends.insert(low, end)
            self.count += end - start
            return [(start, end)]
        gaps: List[Tuple[int, int]] = []
        cursor = start
        for k in range(low, high + 1):
            run_start = starts[k]
            if run_start > cursor:
                gaps.append((cursor, min(run_start, end)))
            if ends[k] > cursor:
                cursor = ends[k]
        if cursor < end:
            gaps.append((cursor, end))
        merged_start = min(start, starts[low])
        merged_end = max(end, ends[high])
        starts[low : high + 1] = [merged_start]
        ends[low : high + 1] = [merged_end]
        self.count += sum(e - s for s, e in gaps)
        return gaps

    def pages(self) -> List[int]:
        out: List[int] = []
        for start, end in zip(self.starts, self.ends):
            out.extend(range(start, end))
        return out


class PageCache:
    """Host page cache with pending-read tracking and optional LRU."""

    def __init__(
        self,
        env: Environment,
        capacity_pages: Optional[int] = None,
        metrics_root: Optional[str] = None,
    ):
        if capacity_pages is not None and capacity_pages < 1:
            raise SimulationError("page cache capacity must be >= 1 or None")
        self.env = env
        self.capacity_pages = capacity_pages
        #: Bounded mode storage (LRU); unused when unbounded.
        self._present: "OrderedDict[PageKey, None]" = OrderedDict()
        #: Unbounded mode storage: file name -> interval runs.
        self._runs: Dict[str, _IntervalRuns] = {}
        #: In-flight reads: value is an :class:`Event` once somebody
        #: waits, else :data:`_PENDING_PLACEHOLDER`.
        self._pending: Dict[PageKey, object] = {}
        self.insertions = 0
        self.evictions = 0
        #: Append-only per-file log of page insertions, in insertion
        #: order. Lets the mincore-based recorder diff "new since last
        #: scan" in O(new) instead of rescanning the whole mapping;
        #: the recorder still charges the full mincore scan *cost* on
        #: the simulated clock.
        self._insertion_log: Dict[str, List[int]] = {}
        # The cache is the one per-host object every invocation's
        # fault handler reaches (``handler.cache``), so it hosts the
        # per-host instrument bundle that invocation teardown absorbs
        # fault records into.
        registry = getattr(env, "metrics", None)
        if registry is None:
            self.metrics_root = None
            self.telemetry = None
        else:
            root = registry.unique_prefix(metrics_root or "host")
            self.metrics_root = root
            registry.gauge(
                f"{root}.page_cache.resident_pages", lambda: len(self)
            )
            registry.gauge(
                f"{root}.page_cache.pending_reads",
                lambda: len(self._pending),
            )
            registry.pull_counter(
                f"{root}.page_cache.insertions", lambda: self.insertions
            )
            registry.pull_counter(
                f"{root}.page_cache.evictions", lambda: self.evictions
            )
            from repro.metrics.telemetry import HostTelemetry

            self.telemetry = HostTelemetry(registry, root)

    @property
    def _unbounded(self) -> bool:
        return self.capacity_pages is None

    def __len__(self) -> int:
        if self._unbounded:
            return sum(runs.count for runs in self._runs.values())
        return len(self._present)

    def contains(self, file_name: str, page_index: int) -> bool:
        """True if the page is resident (touches LRU recency)."""
        if self._unbounded:
            runs = self._runs.get(file_name)
            return runs is not None and runs.contains(page_index)
        key = (file_name, page_index)
        if key in self._present:
            self._present.move_to_end(key)
            return True
        return False

    def peek(self, file_name: str, page_index: int) -> bool:
        """Residency check without touching LRU recency (mincore)."""
        if self._unbounded:
            runs = self._runs.get(file_name)
            return runs is not None and runs.contains(page_index)
        return (file_name, page_index) in self._present

    def insert(self, file_name: str, page_index: int) -> None:
        """Mark a page resident; completes any pending read on it."""
        self.insert_range(file_name, page_index, 1)

    def insert_range(self, file_name: str, start_page: int, npages: int) -> None:
        """Mark ``npages`` consecutive pages resident."""
        if self._unbounded:
            self._insert_range_runs(file_name, start_page, npages)
            return
        for i in range(start_page, start_page + npages):
            self._insert_lru(file_name, i)

    def _insert_range_runs(
        self, file_name: str, start_page: int, npages: int
    ) -> None:
        end_page = start_page + npages
        # Complete pending reads in the range regardless of residency,
        # in ascending page order (succeed() order feeds the event
        # heap's tie-breaking sequence). Iterate whichever of the
        # pending map and the range is smaller.
        pending_map = self._pending
        if pending_map:
            if len(pending_map) < npages:
                hits = sorted(
                    key
                    for key in pending_map
                    if key[0] == file_name and start_page <= key[1] < end_page
                )
                for key in hits:
                    pending = pending_map.pop(key)
                    if (
                        pending is not _PENDING_PLACEHOLDER
                        and not pending.triggered
                    ):
                        pending.succeed()
            else:
                for page in range(start_page, end_page):
                    pending = pending_map.pop((file_name, page), None)
                    if (
                        pending is not None
                        and pending is not _PENDING_PLACEHOLDER
                        and not pending.triggered
                    ):
                        pending.succeed()
        runs = self._runs.get(file_name)
        if runs is None:
            runs = self._runs[file_name] = _IntervalRuns()
        fresh = runs.add_range(start_page, end_page)
        if not fresh:
            return
        log = self._insertion_log.setdefault(file_name, [])
        for gap_start, gap_end in fresh:
            self.insertions += gap_end - gap_start
            log.extend(range(gap_start, gap_end))

    def _insert_lru(self, file_name: str, page_index: int) -> None:
        key = (file_name, page_index)
        pending = self._pending.pop(key, None)
        if (
            pending is not None
            and pending is not _PENDING_PLACEHOLDER
            and not pending.triggered
        ):
            pending.succeed()
        if key in self._present:
            self._present.move_to_end(key)
            return
        self._present[key] = None
        self.insertions += 1
        self._insertion_log.setdefault(file_name, []).append(page_index)
        if self.capacity_pages is not None:
            while len(self._present) > self.capacity_pages:
                self._present.popitem(last=False)
                self.evictions += 1

    def begin_pending(self, file_name: str, page_index: int) -> Event:
        """Announce an in-flight read for the page.

        Returns the completion event; :meth:`insert` fires it. Calling
        this for a page that already has a pending read returns the
        existing event.
        """
        key = (file_name, page_index)
        if self.peek(file_name, page_index):
            raise SimulationError(f"begin_pending on resident page {key}")
        existing = self._pending.get(key)
        if existing is not None and existing is not _PENDING_PLACEHOLDER:
            return existing
        event = Event(self.env)
        self._pending[key] = event
        return event

    def note_pending_range(
        self, file_name: str, start_page: int, npages: int
    ) -> None:
        """Announce in-flight reads for ``npages`` consecutive pages
        without allocating completion events. A fault arriving while
        the read is in flight materializes the event on demand via
        :meth:`pending_event`; pages nobody waits on complete silently
        (no event ever enters the heap). Pages already pending are
        left untouched — in particular a materialized event must
        survive (a waiter holds it; clobbering it with a placeholder
        would strand the waiter forever). Duplicate announcements
        happen: a readahead window always includes its faulting page,
        and two faults on that page can both pass their pending check
        before either announces (the check and the announcement are
        separated by the major-fault overhead timeout)."""
        pending = self._pending
        for page in range(start_page, start_page + npages):
            key = (file_name, page)
            if key not in pending:
                pending[key] = _PENDING_PLACEHOLDER

    def has_pending(self, file_name: str, page_index: int) -> bool:
        """True if an in-flight read covers the page. Unlike
        :meth:`pending_event` this never materializes an event — use
        it for check-only probes."""
        return (file_name, page_index) in self._pending

    def pending_event(self, file_name: str, page_index: int) -> Optional[Event]:
        """The in-flight read event for the page, if any (materialized
        on demand for placeholder entries)."""
        key = (file_name, page_index)
        existing = self._pending.get(key)
        if existing is _PENDING_PLACEHOLDER:
            existing = Event(self.env)
            self._pending[key] = existing
        return existing

    def abandon_pending(self, file_name: str, page_index: int) -> None:
        """Cancel a pending read that failed (fires the event so
        waiters re-check residency and retry)."""
        event = self._pending.pop((file_name, page_index), None)
        if (
            event is not None
            and event is not _PENDING_PLACEHOLDER
            and not event.triggered
        ):
            event.succeed()

    def abandon_pending_range(
        self, file_name: str, start_page: int, npages: int
    ) -> None:
        """Cancel pending reads for ``npages`` consecutive pages, in
        ascending page order."""
        for page in range(start_page, start_page + npages):
            self.abandon_pending(file_name, page)

    def abandon_all_pending(self) -> int:
        """Fire-and-forget every pending read (host crash teardown).

        Waiters wake, re-check residency and reissue their reads, so
        nobody sleeps forever on a read whose owner was interrupted.
        Returns the number of abandoned entries.
        """
        count = len(self._pending)
        if count:
            pending, self._pending = self._pending, {}
            for event in pending.values():
                if event is not _PENDING_PLACEHOLDER and not event.triggered:
                    event.succeed()
        return count

    def missing_ranges(
        self, file_name: str, start_page: int, npages: int
    ) -> List[Tuple[int, int]]:
        """Ascending sub-ranges of ``[start_page, start_page+npages)``
        that are neither resident nor pending — exactly the pages a
        loader chunk still has to read. One interval computation
        replaces the per-page ``peek`` + ``pending_event`` probe loop
        on the restore hot path."""
        end_page = start_page + npages
        if self._unbounded:
            runs = self._runs.get(file_name)
            if runs is None:
                gaps = [(start_page, end_page)]
            else:
                gaps = runs.gaps_in(start_page, end_page)
        else:
            present = self._present
            gaps = []
            run_start: Optional[int] = None
            for page in range(start_page, end_page):
                if (file_name, page) in present:
                    if run_start is not None:
                        gaps.append((run_start, page))
                        run_start = None
                elif run_start is None:
                    run_start = page
            if run_start is not None:
                gaps.append((run_start, end_page))
        pending = self._pending
        if not pending or not gaps:
            return gaps
        out: List[Tuple[int, int]] = []
        for gap_start, gap_end in gaps:
            run_start = None
            for page in range(gap_start, gap_end):
                if (file_name, page) in pending:
                    if run_start is not None:
                        out.append((run_start, page))
                        run_start = None
                elif run_start is None:
                    run_start = page
            if run_start is not None:
                out.append((run_start, gap_end))
        return out

    def drop_file(self, file_name: str) -> int:
        """Evict every resident page of ``file_name`` (drop_caches for
        one file, as the paper does between test runs, §6.1).
        Pending reads are unaffected."""
        if self._unbounded:
            runs = self._runs.pop(file_name, None)
            return runs.count if runs is not None else 0
        victims = [key for key in self._present if key[0] == file_name]
        for key in victims:
            del self._present[key]
        return len(victims)

    def drop_all(self) -> int:
        """Evict everything (echo 3 > /proc/sys/vm/drop_caches)."""
        if self._unbounded:
            count = sum(runs.count for runs in self._runs.values())
            self._runs.clear()
            return count
        count = len(self._present)
        self._present.clear()
        return count

    def pages_for_file(self, file_name: str) -> List[int]:
        """Sorted resident page indices of ``file_name``."""
        if self._unbounded:
            runs = self._runs.get(file_name)
            return runs.pages() if runs is not None else []
        return sorted(p for f, p in self._present if f == file_name)

    def count_for_file(self, file_name: str) -> int:
        if self._unbounded:
            runs = self._runs.get(file_name)
            return runs.count if runs is not None else 0
        return sum(1 for f, _ in self._present if f == file_name)

    def resident_set(self) -> Set[PageKey]:
        """Snapshot of all resident pages (for assertions)."""
        if self._unbounded:
            return {
                (name, page)
                for name, runs in self._runs.items()
                for page in runs.pages()
            }
        return set(self._present)

    def insertion_log(self, file_name: str) -> List[int]:
        """Every page of ``file_name`` ever inserted, in insertion
        order (may repeat after drops). Consumers should slice by
        their own cursor."""
        return self._insertion_log.get(file_name, [])

    def warm_file(self, file_name: str, pages: Iterable[int]) -> None:
        """Instantly mark pages resident without I/O — used only to
        construct the paper's impractical-but-useful *Cached* baseline
        (§3.1) and warm starts. Consecutive pages collapse into range
        insertions (a whole memory file is one or a few runs)."""
        run_start: Optional[int] = None
        run_end = 0
        for page in pages:
            if run_start is None:
                run_start, run_end = page, page + 1
            elif page == run_end:
                run_end += 1
            else:
                self.insert_range(file_name, run_start, run_end - run_start)
                run_start, run_end = page, page + 1
        if run_start is not None:
            self.insert_range(file_name, run_start, run_end - run_start)
