"""The host OS page cache.

Keyed by ``(file name, page index)``. Two states matter to the
simulation:

* **present** — the page's contents are resident; a file-backed fault
  on it is a *minor* fault.
* **pending** — some process (the FaaSnap loader, a readahead window,
  another VM's fault) has an in-flight disk read for the page. A
  fault arriving meanwhile blocks on the existing read instead of
  issuing a duplicate one — this is how bursty same-snapshot VMs
  "load the cache for each other" (paper §6.6) and why FaaSnap's
  concurrent-paging major faults are cheaper than Firecracker's
  (§6.5).

An optional capacity bound evicts in LRU order; the paper's host has
192 GB of memory so the experiments never evict, but the policy is
implemented and tested for completeness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim import Environment, Event, SimulationError

PageKey = Tuple[str, int]


class PageCache:
    """Host page cache with pending-read tracking and optional LRU."""

    def __init__(self, env: Environment, capacity_pages: Optional[int] = None):
        if capacity_pages is not None and capacity_pages < 1:
            raise SimulationError("page cache capacity must be >= 1 or None")
        self.env = env
        self.capacity_pages = capacity_pages
        self._present: "OrderedDict[PageKey, None]" = OrderedDict()
        self._pending: Dict[PageKey, Event] = {}
        self.insertions = 0
        self.evictions = 0
        #: Append-only per-file log of page insertions, in insertion
        #: order. Lets the mincore-based recorder diff "new since last
        #: scan" in O(new) instead of rescanning the whole mapping;
        #: the recorder still charges the full mincore scan *cost* on
        #: the simulated clock.
        self._insertion_log: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        return len(self._present)

    def contains(self, file_name: str, page_index: int) -> bool:
        """True if the page is resident (touches LRU recency)."""
        key = (file_name, page_index)
        if key in self._present:
            self._present.move_to_end(key)
            return True
        return False

    def peek(self, file_name: str, page_index: int) -> bool:
        """Residency check without touching LRU recency (mincore)."""
        return (file_name, page_index) in self._present

    def insert(self, file_name: str, page_index: int) -> None:
        """Mark a page resident; completes any pending read on it."""
        key = (file_name, page_index)
        pending = self._pending.pop(key, None)
        if pending is not None and not pending.triggered:
            pending.succeed()
        if key in self._present:
            self._present.move_to_end(key)
            return
        self._present[key] = None
        self.insertions += 1
        self._insertion_log.setdefault(file_name, []).append(page_index)
        if self.capacity_pages is not None:
            while len(self._present) > self.capacity_pages:
                self._present.popitem(last=False)
                self.evictions += 1

    def insert_range(self, file_name: str, start_page: int, npages: int) -> None:
        """Mark ``npages`` consecutive pages resident."""
        for i in range(start_page, start_page + npages):
            self.insert(file_name, i)

    def begin_pending(self, file_name: str, page_index: int) -> Event:
        """Announce an in-flight read for the page.

        Returns the completion event; :meth:`insert` fires it. Calling
        this for a page that already has a pending read returns the
        existing event.
        """
        key = (file_name, page_index)
        if key in self._present:
            raise SimulationError(f"begin_pending on resident page {key}")
        existing = self._pending.get(key)
        if existing is not None:
            return existing
        event = Event(self.env)
        self._pending[key] = event
        return event

    def pending_event(self, file_name: str, page_index: int) -> Optional[Event]:
        """The in-flight read event for the page, if any."""
        return self._pending.get((file_name, page_index))

    def abandon_pending(self, file_name: str, page_index: int) -> None:
        """Cancel a pending read that failed (fires the event so
        waiters re-check residency and retry)."""
        event = self._pending.pop((file_name, page_index), None)
        if event is not None and not event.triggered:
            event.succeed()

    def drop_file(self, file_name: str) -> int:
        """Evict every resident page of ``file_name`` (drop_caches for
        one file, as the paper does between test runs, §6.1).
        Pending reads are unaffected."""
        victims = [key for key in self._present if key[0] == file_name]
        for key in victims:
            del self._present[key]
        return len(victims)

    def drop_all(self) -> int:
        """Evict everything (echo 3 > /proc/sys/vm/drop_caches)."""
        count = len(self._present)
        self._present.clear()
        return count

    def pages_for_file(self, file_name: str) -> List[int]:
        """Sorted resident page indices of ``file_name``."""
        return sorted(p for f, p in self._present if f == file_name)

    def count_for_file(self, file_name: str) -> int:
        return sum(1 for f, _ in self._present if f == file_name)

    def resident_set(self) -> Set[PageKey]:
        """Snapshot of all resident pages (for assertions)."""
        return set(self._present)

    def insertion_log(self, file_name: str) -> List[int]:
        """Every page of ``file_name`` ever inserted, in insertion
        order (may repeat after drops). Consumers should slice by
        their own cursor."""
        return self._insertion_log.get(file_name, [])

    def warm_file(self, file_name: str, pages: Iterable[int]) -> None:
        """Instantly mark pages resident without I/O — used only to
        construct the paper's impractical-but-useful *Cached* baseline
        (§3.1) and warm starts."""
        for page in pages:
            self.insert(file_name, page)
