"""userfaultfd: user-level page-fault delegation.

REAP (§2.5, §3.3) registers the guest memory region with userfaultfd
so a user-space handler resolves faults: the kernel parks the
faulting vCPU, wakes the handler thread, the handler produces the
page (from its working-set buffer or by reading the memory file) and
installs it with ``UFFDIO_COPY``, then wakes the vCPU. Each hop costs
microseconds, and the vCPU cannot resume instantly — KVM blocks
waiting for the guest CPU to become runnable again (§6.4's
``kvm_vcpu_block`` time) — which is exactly why REAP underperforms
when many faults fall outside its working set.

The handler here is a caller-provided *generator function* so REAP's
logic lives in :mod:`repro.core.reap`, not in the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.host.params import HostParams
from repro.sim import Environment, Event, SimulationError

#: A handler receives the faulting page and yields simulation events
#: while producing it; it returns the content token to install.
UffdHandler = Callable[[int], Generator[Event, Any, int]]

#: Optional synchronous twin of a handler, for the fault fast path: it
#: receives ``(page, now)`` and either returns ``(content, end_time,
#: read_plan_or_None)`` priced on the virtual clock *without mutating
#: any state*, or ``None`` when the fault can block (e.g. on an
#: in-flight read) and must take the event-driven handler. Providers
#: attach it as a ``fast`` attribute on the handler callable.
UffdFastHandler = Callable[[int, float], Optional[tuple]]


@dataclass
class UffdRegistration:
    """A registered address range and its user-space handler."""

    start: int
    npages: int
    handler: UffdHandler
    #: Non-blocking twin used by the batching fast path, if any.
    fast_handler: Optional[UffdFastHandler] = None

    @property
    def end(self) -> int:
        return self.start + self.npages

    def covers(self, page: int) -> bool:
        return self.start <= page < self.end


class UserfaultfdManager:
    """Tracks userfaultfd registrations for one address space."""

    def __init__(self, env: Environment, params: HostParams):
        self.env = env
        self.params = params
        self._registrations: List[UffdRegistration] = []
        #: Faults delegated to user space (paper counts these).
        self.delegated_faults = 0

    def register(
        self, start: int, npages: int, handler: UffdHandler
    ) -> UffdRegistration:
        """Register ``[start, start+npages)`` with ``handler``."""
        if npages < 1:
            raise SimulationError("empty uffd registration")
        for existing in self._registrations:
            if start < existing.end and existing.start < start + npages:
                raise SimulationError("overlapping uffd registrations")
        registration = UffdRegistration(
            start, npages, handler, getattr(handler, "fast", None)
        )
        self._registrations.append(registration)
        return registration

    def unregister(self, registration: UffdRegistration) -> None:
        self._registrations.remove(registration)

    def lookup(self, page: int) -> Optional[UffdRegistration]:
        """The registration covering ``page``, if any."""
        for registration in self._registrations:
            if registration.covers(page):
                return registration
        return None

    def handle_fault(
        self, registration: UffdRegistration, page: int
    ) -> Generator[Event, Any, int]:
        """Process helper: run the full user-level fault protocol.

        Returns the installed content token. Timing: handler wake-up,
        the handler's own work (which may include disk reads), the
        UFFDIO_COPY install, and the vCPU resume stall.
        """
        self.delegated_faults += 1
        yield self.env.timeout(self.params.uffd_wakeup_us)
        value = yield from registration.handler(page)
        yield self.env.timeout(self.params.uffd_copy_us)
        # The parked vCPU cannot resume instantly: the userfaultfd
        # round trip context-switches twice and KVM then waits for the
        # guest CPU to be runnable (paper §3.3, §6.4).
        yield self.env.timeout(
            self.params.uffd_resume_stall_us + self.params.vcpu_block_overhead_us
        )
        return value
