"""Fault-time readahead with sequential ramp-up.

On a major fault the Linux kernel does not read just the faulting
page: it pulls a window of neighbouring file pages into the page
cache, and for sequential fault streams it doubles the window up to a
ceiling so streaming reads approach device bandwidth. The paper leans
on this twice:

* §3.3 — Firecracker's sub-32 us "major" faults are really minor
  faults on pages a previous fault's readahead already cached;
* §4.4 — host page recording deliberately includes readahead-cached
  pages in the working set because readahead "predicts" future
  accesses of invocations with different inputs.

The window extends forward from the faulting page and is trimmed at
the first already-resident (or already in-flight) page, mirroring
Linux's behaviour of not re-reading cached ranges. Sequentiality is
tracked per file: a fault landing at or just past the previous
window's end doubles the next window (up to ``readahead_max_pages``);
anything else resets it to the base size.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.sim import Event
from repro.storage.filestore import StoredFile

#: Slack after the previous window's end still considered sequential.
_SEQUENTIAL_SLACK_PAGES = 4


class ReadaheadPolicy:
    """Computes and executes readahead windows for major faults."""

    def __init__(self, params: HostParams):
        self.params = params
        #: Per-file stream state: file name -> (window_end, window_size).
        self._streams: Dict[str, Tuple[int, int]] = {}

    def next_window_size(self, file_name: str, fault_page: int) -> int:
        """Window size for a fault at ``fault_page``, updating the
        per-file sequential-stream state."""
        base = self.params.readahead_pages
        previous = self._streams.get(file_name)
        if previous is not None:
            window_end, window_size = previous
            sequential = (
                window_end
                <= fault_page
                <= window_end + _SEQUENTIAL_SLACK_PAGES
            )
            if sequential:
                return min(window_size * 2, self.params.readahead_max_pages)
        return base

    def plan(
        self, file: StoredFile, cache: PageCache, fault_page: int
    ) -> Tuple[List[int], int]:
        """Compute the window for a fault on ``fault_page`` without
        committing the per-file stream state: the faulting page plus
        forward neighbours, stopping at the file end, the window
        limit, or the first resident/in-flight page. Returns
        ``(pages, window_size)``; pass both to :meth:`commit` once the
        read is actually issued."""
        name = file.name
        size = self.next_window_size(name, fault_page)
        pages: List[int] = [fault_page]
        limit = min(file.num_pages, fault_page + size)
        pending = cache._pending
        if cache.capacity_pages is None:
            runs = cache._runs.get(name)
            for page in range(fault_page + 1, limit):
                if (runs is not None and runs.contains(page)) or (
                    (name, page) in pending
                ):
                    break
                pages.append(page)
        else:
            present = cache._present
            for page in range(fault_page + 1, limit):
                if (name, page) in present or (name, page) in pending:
                    break
                pages.append(page)
        return pages, size

    def commit(
        self, file_name: str, fault_page: int, pages: List[int], size: int
    ) -> None:
        """Record the issued window in the sequential-stream state."""
        self._streams[file_name] = (fault_page + len(pages), size)

    def window(
        self, file: StoredFile, cache: PageCache, fault_page: int
    ) -> List[int]:
        """File pages to read for a fault on ``fault_page`` (plans and
        commits in one step — the event-driven path)."""
        pages, size = self.plan(file, cache, fault_page)
        self.commit(file.name, fault_page, pages, size)
        return pages

    def fault_read(
        self, file: StoredFile, cache: PageCache, fault_page: int
    ) -> Generator[Event, Any, int]:
        """Process helper: perform the readahead read for a fault.

        Marks the window pending, reads it from the device as one
        contiguous request (split only by sparse holes), inserts the
        pages into the cache, and returns the number of pages read.
        """
        pages = self.window(file, cache, fault_page)
        # The window is contiguous and was trimmed at the first
        # resident/in-flight page, so one placeholder range announces
        # it without allocating per-page events.
        cache.note_pending_range(file.name, pages[0], len(pages))
        try:
            yield from file.read(pages[0], len(pages))
        except BaseException:
            cache.abandon_pending_range(file.name, pages[0], len(pages))
            raise
        # The window is contiguous: one range insertion instead of a
        # per-page loop (completes the pending reads identically).
        cache.insert_range(file.name, pages[0], len(pages))
        return len(pages)
