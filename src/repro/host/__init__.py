"""Host operating-system substrate.

Models the Linux-kernel mechanisms FaaSnap builds on, at the level of
detail the paper measures:

* :mod:`~repro.host.page_cache` — the host OS page cache, including
  *pending* (in-flight) reads so that a guest fault on a page the
  FaaSnap loader is currently fetching waits for that read instead of
  issuing a duplicate disk request (paper §6.5: "less harmful" major
  faults).
* :mod:`~repro.host.readahead` — on-demand fault readahead that pulls
  a window of neighbouring file pages into the cache (paper §4.4:
  readahead "predicts" future accesses).
* :mod:`~repro.host.vma` — mmap address-space semantics, including
  hierarchically overlapping ``MAP_FIXED`` mappings (paper §4.8).
* :mod:`~repro.host.fault` — the page-fault handler with the paper's
  measured cost classes: anonymous ≈2.5 us, page-cache minor ≈3.7 us,
  major = a blocking disk read (paper §3.3, Figure 2).
* :mod:`~repro.host.mincore` — present-page scanning used by FaaSnap's
  host page recording (paper §4.4).
* :mod:`~repro.host.uffd` — userfaultfd delegation with user-level
  wake-up and context-switch overheads (REAP's mechanism, §2.5).
* :mod:`~repro.host.procfs` — RSS polling used by the recorder (§5).
"""

from repro.host.fault import (
    FAULTING_KINDS,
    FaultHandler,
    FaultKind,
    FaultRecord,
    FaultStats,
)
from repro.host.mincore import mincore_file, mincore_new_pages
from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.host.procfs import Procfs
from repro.host.readahead import ReadaheadPolicy
from repro.host.uffd import UffdRegistration, UserfaultfdManager
from repro.host.vma import ANONYMOUS, AddressSpace, Backing, FileBacking, Vma

__all__ = [
    "ANONYMOUS",
    "AddressSpace",
    "Backing",
    "FAULTING_KINDS",
    "FaultHandler",
    "FaultKind",
    "FaultRecord",
    "FaultStats",
    "FileBacking",
    "HostParams",
    "PageCache",
    "Procfs",
    "ReadaheadPolicy",
    "UffdRegistration",
    "UserfaultfdManager",
    "Vma",
    "mincore_file",
    "mincore_new_pages",
]
