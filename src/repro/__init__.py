"""faasnap-repro: a full reproduction of *FaaSnap: FaaS Made Fast
Using Snapshot-based VMs* (EuroSys '22) on a simulated substrate.

The public entry points:

* :class:`repro.core.FaaSnapPlatform` — register functions, run
  record phases, invoke under any restore policy, burst-invoke.
* :mod:`repro.workloads` — the paper's Table 2 benchmark functions.
* :mod:`repro.experiments` — regenerate every paper table/figure.
* :mod:`repro.fleet` — fleet-level serving economics (paper §7.1).

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
