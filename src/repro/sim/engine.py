"""Core event loop: environment, events, timeouts, and processes.

Time is a ``float`` in *microseconds*. Microseconds are the natural
unit for this reproduction because the paper reports page-fault
service times of 2.5-512 us and end-to-end invocation times of
milliseconds to seconds, all of which stay well within float
precision.

Determinism: events scheduled for the same instant fire in schedule
order (a monotonically increasing sequence number breaks ties), so a
simulation run is a pure function of its inputs.
"""

from __future__ import annotations

import heapq
import random
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.metrics.telemetry import MetricsRegistry

#: Upper bound on pooled Timeout objects kept for reuse per
#: environment. Big simulations churn through millions of timeouts;
#: a small pool captures nearly all of the reuse without pinning
#: memory after a burst.
_TIMEOUT_POOL_MAX = 128


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding a
    non-event, or running an environment with no runnable events)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*; calling :meth:`succeed` or
    :meth:`fail` schedules it to fire, at which point every registered
    callback runs and waiting processes resume. Events are also
    yielded by processes, which suspends the process until the event
    fires.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (valid only once triggered)."""
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception, which propagates into
        any process waiting on it."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.env._schedule(self, 0.0 if delay is None else delay)
        return self

    def _run_callbacks(self) -> int:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        return len(callbacks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The wrapped generator yields :class:`Event` instances. When a
    yielded event fires, the process resumes with the event's value
    (or the event's exception is thrown into it). The process event
    itself succeeds with the generator's return value, or fails with
    any uncaught exception.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target is not a generator: {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume once at the current instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current
        simulated instant.

        Interrupting a finished process is an error; interrupting a
        process twice before it handles the first interrupt is too.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting = self._waiting_on
        # Detach from the awaited event so its eventual firing does
        # not also resume the process. A processed event has already
        # handed its callback list to the dispatcher, so there is
        # nothing left to detach from (``callbacks`` itself is never
        # None in this kernel).
        if waiting is not None and not waiting.processed:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        poke = Event(self.env)
        poke.callbacks.append(self._resume)
        poke.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # A stale wakeup (e.g. an event that fired in the same
            # instant the process was interrupted and finished) must
            # not advance a closed generator.
            return
        generator = self._generator
        env = self.env
        # Loop instead of recursing so a chain of already-processed
        # targets (the immediate-dispatch fast path below) cannot
        # overflow the Python stack.
        while True:
            self._waiting_on = None
            try:
                if event._ok:
                    target = generator.send(event._value)
                else:
                    target = generator.throw(event._value)
            except StopIteration as stop:
                self._triggered = True
                self._ok = True
                self._value = stop.value
                env._schedule(self, 0.0)
                return
            except Interrupt as exc:
                self._triggered = True
                self._ok = False
                self._value = exc
                env._schedule(self, 0.0)
                return
            except Exception as exc:
                self._triggered = True
                self._ok = False
                self._value = exc
                env._schedule(self, 0.0)
                return

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                generator.close()
                self._triggered = True
                self._ok = False
                self._value = exc
                env._schedule(self, 0.0)
                return
            if target.env is not env:
                raise SimulationError(
                    "cannot wait on an event from another environment"
                )
            if target._processed:
                # Immediate dispatch: the target already fired, so
                # resume right away with its outcome instead of
                # round-tripping a fresh poke event through the heap.
                event = target
                continue
            self._waiting_on = target
            target.callbacks.append(self._resume)
            return


class AllOf(Event):
    """Fires when all child events have fired successfully.

    Succeeds with the list of child values (in the order given). If
    any child fails, this event fails with that child's exception.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        failed = next(
            (c for c in self._children if c.triggered and not c.ok), None
        )
        if failed is not None:
            self.fail(failed.value)
            return
        pending = [c for c in self._children if not c.triggered]
        self._pending = len(pending)
        if self._pending == 0:
            self.succeed([c.value for c in self._children])
            return
        for child in pending:
            child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class AllFailed(SimulationError):
    """Every child of a :class:`FirstSuccess` race failed.

    ``causes`` lists the children's exceptions in child order.
    """

    def __init__(self, causes: List[BaseException]):
        super().__init__(f"all {len(causes)} raced events failed")
        self.causes = causes


class FirstSuccess(Event):
    """Fires with ``(index, value)`` of the first child to *succeed*.

    Unlike :class:`AnyOf`, a failing child does not decide the race:
    its exception is recorded and the race keeps waiting on the
    others. Only when every child has failed does this event fail,
    with an :class:`AllFailed` carrying all the causes. This is the
    primitive behind request hedging, where a crashed primary attempt
    must not abort the race while its hedge is still running.

    The race deliberately keeps watching the losing children after it
    fires: their late failures then always have at least one
    subscriber, so the dispatcher never re-raises a cancelled loser's
    exception as unhandled.
    """

    __slots__ = ("_children", "_pending", "_causes")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        if not self._children:
            raise SimulationError("FirstSuccess requires at least one event")
        self._pending = len(self._children)
        self._causes: List[Optional[BaseException]] = [None] * len(
            self._children
        )
        for index, child in enumerate(self._children):
            if child.processed:
                self._on_child(index, child)
                if self._triggered and self._ok:
                    break
            else:
                child.callbacks.append(
                    lambda evt, index=index: self._on_child(index, evt)
                )

    def _on_child(self, index: int, child: Event) -> None:
        if self._triggered:
            return
        if child.ok:
            self.succeed((index, child.value))
            return
        self._causes[index] = child.value
        self._pending -= 1
        if self._pending == 0:
            self.fail(AllFailed([c for c in self._causes if c is not None]))


class AnyOf(Event):
    """Fires when the first child event fires; value is ``(index, value)``."""

    __slots__ = ("_children", "_watched")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self._watched: List[Tuple[Event, Callable[[Event], None]]] = []
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            if child.processed:
                self._on_child(index, child)
                break
            callback = lambda evt, index=index: self._on_child(index, evt)  # noqa: E731
            child.callbacks.append(callback)
            self._watched.append((child, callback))

    def _on_child(self, index: int, child: Event) -> None:
        if self._triggered:
            return
        # Detach from the losing children: without this, every loser
        # keeps a callback (and through it this AnyOf) alive for the
        # rest of the run.
        watched, self._watched = self._watched, []
        for other, callback in watched:
            if other is child or other.processed:
                continue
            try:
                other.callbacks.remove(callback)
            except ValueError:
                pass
        if child.ok:
            self.succeed((index, child.value))
        else:
            self.fail(child.value)


class Environment:
    """Owns the simulated clock and the pending-event heap."""

    def __init__(self, initial_time: float = 0.0, seed: int = 0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        #: The run seed, and the run's single source of randomness.
        #: Every stochastic consumer (fault schedules, backoff jitter,
        #: injected device errors) draws from this one stream, so a
        #: whole simulation is reproducible from ``seed`` alone.
        #: Deterministic runs simply never touch it.
        self.seed = seed
        self.rng = random.Random(f"env|{seed}")
        #: Events dispatched by :meth:`step` over the environment's
        #: lifetime (the perf harness derives events/sec from this).
        self.events_processed = 0
        #: Recycled Timeout objects (see :meth:`timeout`).
        self._timeout_pool: List[Timeout] = []
        #: The run's telemetry registry: every component built on this
        #: environment registers its instruments here, so one registry
        #: holds the whole run's picture. Pull-based — dispatch never
        #: touches it.
        self.metrics = MetricsRegistry()
        self.metrics.pull_counter(
            "sim.engine.events", lambda: self.events_processed
        )
        self.metrics.gauge(
            "sim.engine.queue_depth", lambda: len(self._queue)
        )
        self.metrics.gauge(
            "sim.engine.timeout_pool", lambda: len(self._timeout_pool)
        )

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def event(self) -> Event:
        """Create an untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` microseconds.

        Timeouts are the kernel's hottest allocation; finished ones
        with no outside references are recycled through a free-list,
        so most calls here reuse an object instead of allocating.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        return self._arm_timeout(self._now + delay, delay, value)

    def wake_at(self, when: float, value: Any = None) -> Timeout:
        """An event firing at the *absolute* instant ``when``.

        Unlike ``timeout(when - now)``, the clock lands on exactly
        ``when`` (float subtraction then re-addition can be off by an
        ulp). The batched vCPU fast path uses this to keep its
        aggregated wakeups bit-identical to the per-event timeline.
        """
        if when < self._now:
            raise SimulationError(
                f"wake_at({when}) is in the past (now={self._now})"
            )
        return self._arm_timeout(when, when - self._now, value)

    def _arm_timeout(self, when: float, delay: float, value: Any) -> Timeout:
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            timeout._ok = True
            timeout._triggered = True
            timeout._processed = False
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout.callbacks = []
            timeout.delay = delay
            timeout._value = value
            timeout._ok = True
            timeout._triggered = True
            timeout._processed = False
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, timeout))
        return timeout

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start ``generator`` as a concurrent process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    def first_success(self, events: Iterable[Event]) -> FirstSuccess:
        """Event that fires when the first event in ``events``
        *succeeds* (failures are tolerated until all have failed)."""
        return FirstSuccess(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')``."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        subscribers = event._run_callbacks()
        if (
            type(event) is Timeout
            and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
            and getrefcount(event) == 2
        ):
            # Nobody else holds the timeout (the 2 counts this frame's
            # local plus getrefcount's argument): safe to recycle.
            self._timeout_pool.append(event)
            return
        if not event.ok and subscribers == 0:
            # An unhandled failure with nobody waiting: surface it
            # rather than silently dropping the error, unless it is a
            # process that was deliberately interrupted.
            if isinstance(event.value, Interrupt):
                return
            if isinstance(event, Process):
                raise event.value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` fires (if an event), until the clock
        passes ``until`` (if a number), or until no events remain.

        Returns the value of the ``until`` event when one is given.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired"
                    )
                self.step()
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None

    def advance_to(self, deadline: float) -> int:
        """Bounded-horizon stepping: process every event scheduled at
        or before ``deadline``, then land the clock exactly on
        ``deadline``. Returns the number of events dispatched.

        This is the synchronization primitive for conservative
        parallel simulation (sharded cluster execution): each shard
        advances its own event heap to a common virtual-time barrier,
        exchanges state, and continues. Processes blocked on events
        beyond the horizon simply stay pending — calling
        ``advance_to`` again with a later deadline resumes them, and
        a sequence of ``advance_to`` calls dispatches exactly the
        same events in exactly the same order as one ``run(until=T)``
        to the final horizon (window boundaries add no events of
        their own, so windowing cannot perturb simulated results).
        """
        if deadline < self._now:
            raise SimulationError(
                f"advance_to({deadline}) is in the past (now={self._now})"
            )
        before = self.events_processed
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return self.events_processed - before
