"""Shared-resource primitives built on the event kernel.

:class:`Resource` is a counted FIFO resource (disk queue slots, CPU
slots, the FaaSnap loading lock). :class:`Store` is an unbounded FIFO
of items with blocking ``get`` (used for message queues between
daemon components).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from repro.sim.engine import Environment, Event, SimulationError


class ResourceRequest(Event):
    """Event granted when the resource has a free slot.

    Use as a context manager inside a process::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release(req)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting order."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> ResourceRequest:
        """Ask for a slot; the returned event fires when granted."""
        req = ResourceRequest(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: ResourceRequest) -> None:
        """Return a granted slot (or cancel a waiting request)."""
        if request.resource is not self:
            raise SimulationError("release() of a request from another resource")
        if not request.triggered:
            self._waiting.remove(request)
            return
        if self._in_use <= 0:
            raise SimulationError("release() without a matching grant")
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            nxt = self._waiting.popleft()
            self._in_use += 1
            nxt.succeed()

    def acquire(self) -> Generator[Event, Any, ResourceRequest]:
        """Process helper: ``req = yield from resource.acquire()``."""
        req = self.request()
        yield req
        return req


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if one is
        queued)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def items(self) -> List[Any]:
        """Snapshot of queued items (for inspection in tests)."""
        return list(self._items)
