"""Discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: an
:class:`~repro.sim.engine.Environment` owns a simulated clock and an
event heap; *processes* are Python generators that ``yield`` events
(timeouts, other processes, resource requests) and are resumed when
those events fire.

All FaaSnap timing results in this repository are produced by running
host, disk, guest and daemon models as concurrent processes on this
kernel, so that contention (e.g. the FaaSnap loader racing guest page
faults for the disk) emerges from the simulation instead of being
hand-computed.
"""

from repro.sim.engine import (
    AllFailed,
    AllOf,
    AnyOf,
    Environment,
    Event,
    FirstSuccess,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Resource, ResourceRequest, Store

__all__ = [
    "AllFailed",
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "FirstSuccess",
    "Interrupt",
    "Process",
    "Resource",
    "ResourceRequest",
    "SimulationError",
    "Store",
    "Timeout",
]
