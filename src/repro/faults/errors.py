"""The injected-failure exception hierarchy.

These exceptions model *environmental* failures — a device returning
an I/O error, a machine losing power, a snapshot file failing its
checksum — as opposed to :class:`~repro.sim.SimulationError`, which
flags misuse of the simulation kernel itself. They live in their own
leaf module (no imports) so that low layers like
:mod:`repro.storage.device` can raise them without depending on the
fault-injection machinery above.

The recovery layer treats any :class:`FaultError` as retryable except
:class:`DeadlineExceeded`, which marks an invocation that ran out of
its end-to-end time budget.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class for injected environmental failures."""


class DeviceError(FaultError):
    """A block-device read failed (injected error-rate window)."""

    def __init__(self, device: str, offset: int, nbytes: int):
        super().__init__(f"I/O error on {device} reading {nbytes}B @ {offset}")
        self.device = device
        self.offset = offset
        self.nbytes = nbytes


class HostCrashed(FaultError):
    """The host serving an invocation crashed mid-flight."""

    def __init__(self, host_id: str):
        super().__init__(f"host {host_id} crashed")
        self.host_id = host_id


class SnapshotCorrupted(FaultError):
    """A snapshot artefact failed validation at restore time."""

    def __init__(self, host_id: str, function: str):
        super().__init__(
            f"snapshot for {function!r} on {host_id} failed validation"
        )
        self.host_id = host_id
        self.function = function


class DeadlineExceeded(FaultError):
    """An invocation exceeded its end-to-end deadline.

    Not retryable: the time budget is already spent.
    """

    def __init__(self, function: str, deadline_us: float):
        super().__init__(
            f"invocation of {function!r} exceeded its "
            f"{deadline_us / 1000:.1f} ms deadline"
        )
        self.function = function
        self.deadline_us = deadline_us
