"""Replaying a :class:`~repro.faults.plan.FaultPlan` against a run.

The injector is deliberately dumb: each fault in the plan becomes one
small simulation process that sleeps until the fault's virtual time,
applies it through a narrow *target* interface, and (for windowed
faults) revokes it when the window closes. With an empty plan the
injector spawns **zero** processes and touches nothing — the
zero-perturbation guarantee the perf harness gates.

The target is duck-typed so the injector does not import the cluster
scheduler (which sits above it). It must provide::

    devices_for_scope(scope) -> Sequence[BlockDevice]
    crash_host(host_id)      -> None
    reboot_host(host_id)     -> None

Snapshot corruption is latent state the injector itself owns: the
restore path asks :meth:`FaultInjector.check_snapshot` before using
artefacts, and a positive answer both fails that restore and clears
the mark (detection triggers repair/re-fetch).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.faults.plan import FaultPlan
from repro.sim import Environment, Event, Interrupt
from repro.storage.device import Degradation


class FaultInjector:
    """Schedules the faults of one plan on one environment."""

    def __init__(
        self,
        env: Environment,
        plan: Optional[FaultPlan] = None,
        observer: Optional[Any] = None,
    ):
        self.env = env
        self.plan = plan if plan is not None else FaultPlan.empty()
        #: Optional ``observer(kind, scope, **detail)`` callback fired
        #: (synchronously, purely for recording — the flight recorder)
        #: when a fault is applied or revoked. Never a sim event.
        self.observer = observer
        #: Optional :class:`~repro.faults.durability.DurabilityManager`.
        #: When attached, corruption events land on real replica
        #: checksums instead of the latent side-channel set, and the
        #: restore path detects them by verification.
        self.durability: Optional[Any] = None
        self._corrupted: Set[Tuple[str, str]] = set()
        self._armed = False
        self._disarmed = False
        #: Spawned fault processes plus a per-process mutable flag dict
        #: (``keep`` marks a process whose destructive half already
        #: fired but whose *recovery* half — a pending reboot — must
        #: survive a disarm).
        self._procs: List[Tuple[Any, Dict[str, bool]]] = []
        #: Degradation windows currently pushed onto devices, as
        #: mutable ``[devices, degradation]`` entries shared with the
        #: window processes so either side can close a window once.
        self._open_windows: List[list] = []
        # Plain ints on the hot side; exported as pull counters.
        self.device_windows_opened = 0
        self.device_windows_closed = 0
        self.host_crashes = 0
        self.host_reboots = 0
        self.corruptions_marked = 0
        self.corruptions_detected = 0
        self.fail_slows_applied = 0
        self.fail_slows_recovered = 0

    @property
    def armed(self) -> bool:
        """True between :meth:`arm` and :meth:`disarm`."""
        return self._armed and not self._disarmed

    # -- arming --------------------------------------------------------

    def arm(self, target: Any, epoch_us: Optional[float] = None) -> None:
        """Start one process per planned fault, with fault times
        interpreted relative to ``epoch_us`` (default: now). Arming
        an empty plan is a no-op."""
        if self._armed:
            raise RuntimeError("FaultInjector.arm() called twice")
        self._armed = True
        self._register_metrics()
        if self.plan.is_empty:
            return
        epoch = self.env.now if epoch_us is None else epoch_us
        for fault in self.plan.device_faults:
            self._spawn(
                self._device_window(target, fault, epoch),
                f"fault.device.{fault.scope}",
            )
        for crash in self.plan.host_crashes:
            cell: Dict[str, bool] = {}
            self._spawn(
                self._crash(target, crash, epoch, cell),
                f"fault.crash.{crash.host}",
                cell,
            )
        for corruption in self.plan.corruptions:
            self._spawn(
                self._corrupt(corruption, epoch),
                f"fault.corrupt.{corruption.host}",
            )
        for fail_slow in self.plan.fail_slows:
            self._spawn(
                self._fail_slow(target, fail_slow, epoch),
                f"fault.slow.{fail_slow.host}",
            )

    def _spawn(self, generator, name: str, cell=None) -> None:
        proc = self.env.process(generator, name=name)
        self._procs.append((proc, cell if cell is not None else {}))

    def disarm(self) -> None:
        """Cancel every fault that has not happened yet and revoke
        every degradation window still open.

        Already-applied state is handled by intent: open device
        windows close now (the operator asked for the storm to stop),
        latent corruption marks clear (they never became observable),
        but a crashed host's *pending reboot* still runs — killing the
        recovery half of a transient crash would strand the host dead
        forever, which is not what "stop injecting faults" means.
        Idempotent; a no-op before :meth:`arm`."""
        if not self.armed:
            return
        self._disarmed = True
        for proc, cell in self._procs:
            if proc.is_alive and not cell.get("keep", False):
                proc.interrupt("fault plan disarmed")
        self._procs.clear()
        for entry in list(self._open_windows):
            self._close_window(entry)
        self._corrupted.clear()

    def _notify(self, kind: str, scope: str, **detail: Any) -> None:
        if self.observer is not None:
            self.observer(kind, scope, **detail)

    def _close_window(self, entry: list) -> None:
        if entry not in self._open_windows:
            return
        self._open_windows.remove(entry)
        devices, degradation, scope, kind = entry
        for device in devices:
            device.pop_degradation(degradation)
        if kind == "fail-slow":
            self.fail_slows_recovered += 1
            self._notify("fault.fail-slow.close", scope)
        else:
            self.device_windows_closed += 1
            self._notify("fault.device-window.close", scope)

    def _register_metrics(self) -> None:
        registry = getattr(self.env, "metrics", None)
        if registry is None:
            return
        prefix = registry.unique_prefix("fault")
        registry.pull_counter(
            f"{prefix}.device_windows_opened",
            lambda: self.device_windows_opened,
        )
        registry.pull_counter(
            f"{prefix}.device_windows_closed",
            lambda: self.device_windows_closed,
        )
        registry.pull_counter(
            f"{prefix}.host_crashes", lambda: self.host_crashes
        )
        registry.pull_counter(
            f"{prefix}.host_reboots", lambda: self.host_reboots
        )
        registry.pull_counter(
            f"{prefix}.corruptions_marked",
            lambda: self.corruptions_marked,
        )
        registry.pull_counter(
            f"{prefix}.corruptions_detected",
            lambda: self.corruptions_detected,
        )
        registry.pull_counter(
            f"{prefix}.fail_slows_applied",
            lambda: self.fail_slows_applied,
        )
        registry.gauge(
            f"{prefix}.corrupted_snapshots", lambda: len(self._corrupted)
        )

    # -- fault processes -----------------------------------------------

    def _device_window(
        self, target: Any, fault, epoch: float
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(
            max(0.0, epoch + fault.start_us - self.env.now)
        )
        degradation = Degradation(
            latency_factor=fault.latency_factor,
            bandwidth_factor=fault.bandwidth_factor,
            iops_factor=fault.iops_factor,
            error_rate=fault.error_rate,
        )
        devices = list(target.devices_for_scope(fault.scope))
        for device in devices:
            device.push_degradation(degradation)
        self.device_windows_opened += 1
        self._notify(
            "fault.device-window.open",
            fault.scope,
            latency_factor=fault.latency_factor,
            error_rate=fault.error_rate,
        )
        entry = [devices, degradation, fault.scope, "device"]
        self._open_windows.append(entry)
        if fault.duration_us is None:
            return
        try:
            yield self.env.timeout(fault.duration_us)
        except Interrupt:
            # Disarm revokes the window synchronously via
            # ``_close_window``; nothing left to do here.
            return
        self._close_window(entry)

    def _fail_slow(
        self, target: Any, fault, epoch: float
    ) -> Generator[Event, Any, None]:
        """Gray failure: the host's primary device keeps serving
        correctly but ``slowdown``× slower, with no error signal. Only
        the :class:`~repro.faults.health.HealthMonitor`'s
        restore-latency outlier score can catch it."""
        yield self.env.timeout(
            max(0.0, epoch + fault.start_us - self.env.now)
        )
        degradation = Degradation(latency_factor=fault.slowdown)
        devices = list(target.devices_for_scope(fault.host))
        for device in devices:
            device.push_degradation(degradation)
        self.fail_slows_applied += 1
        self._notify(
            "fault.fail-slow.open", fault.host, slowdown=fault.slowdown
        )
        entry = [devices, degradation, fault.host, "fail-slow"]
        self._open_windows.append(entry)
        if fault.duration_us is None:
            return
        try:
            yield self.env.timeout(fault.duration_us)
        except Interrupt:
            return
        self._close_window(entry)

    def _crash(
        self, target: Any, crash, epoch: float, cell: Dict[str, bool]
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(max(0.0, epoch + crash.at_us - self.env.now))
        target.crash_host(crash.host)
        self.host_crashes += 1
        if crash.reboot_after_us is None:
            return
        # The crash fired: from here the process is a pending reboot,
        # which a disarm must let run (see ``disarm``).
        cell["keep"] = True
        yield self.env.timeout(crash.reboot_after_us)
        target.reboot_host(crash.host)
        self.host_reboots += 1

    def _corrupt(self, corruption, epoch: float) -> Generator[Event, Any, None]:
        yield self.env.timeout(
            max(0.0, epoch + corruption.at_us - self.env.now)
        )
        if self.durability is not None:
            # With the durability plane armed, corruption is real
            # bit-rot in replica checksums — detected at read or
            # scrub time by verification, not via the latent mark.
            self.durability.mark_corrupt(
                corruption.host, corruption.function
            )
        else:
            self._corrupted.add((corruption.host, corruption.function))
        self.corruptions_marked += 1
        self._notify(
            "fault.corruption.marked",
            corruption.host,
            function=corruption.function,
        )

    # -- restore-time validation ---------------------------------------

    def check_snapshot(self, host_id: str, function: str) -> bool:
        """True if ``function``'s artefacts on ``host_id`` are
        currently corrupted. Detection clears the mark: validation
        failed, the artefacts are rebuilt, and the *next* restore
        sees healthy files."""
        key = (host_id, function)
        if key in self._corrupted:
            self._corrupted.discard(key)
            self.corruptions_detected += 1
            self._notify(
                "fault.corruption.detected", host_id, function=function
            )
            return True
        return False

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict[str, int]:
        doc = {
            "device_windows_opened": self.device_windows_opened,
            "device_windows_closed": self.device_windows_closed,
            "host_crashes": self.host_crashes,
            "host_reboots": self.host_reboots,
            "corruptions_marked": self.corruptions_marked,
            "corruptions_detected": self.corruptions_detected,
            "corruptions_detected_restore": self.corruptions_detected,
            "corruptions_detected_scrub": 0,
            "fail_slows_applied": self.fail_slows_applied,
            "fail_slows_recovered": self.fail_slows_recovered,
        }
        if self.durability is not None:
            d = self.durability
            doc["corruptions_detected"] = (
                d.detected_restore + d.detected_scrub
            )
            doc["corruptions_detected_restore"] = d.detected_restore
            doc["corruptions_detected_scrub"] = d.detected_scrub
            doc.update(d.summary())
        return doc
