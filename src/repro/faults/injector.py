"""Replaying a :class:`~repro.faults.plan.FaultPlan` against a run.

The injector is deliberately dumb: each fault in the plan becomes one
small simulation process that sleeps until the fault's virtual time,
applies it through a narrow *target* interface, and (for windowed
faults) revokes it when the window closes. With an empty plan the
injector spawns **zero** processes and touches nothing — the
zero-perturbation guarantee the perf harness gates.

The target is duck-typed so the injector does not import the cluster
scheduler (which sits above it). It must provide::

    devices_for_scope(scope) -> Sequence[BlockDevice]
    crash_host(host_id)      -> None
    reboot_host(host_id)     -> None

Snapshot corruption is latent state the injector itself owns: the
restore path asks :meth:`FaultInjector.check_snapshot` before using
artefacts, and a positive answer both fails that restore and clears
the mark (detection triggers repair/re-fetch).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Set, Tuple

from repro.faults.plan import FaultPlan
from repro.sim import Environment, Event
from repro.storage.device import Degradation


class FaultInjector:
    """Schedules the faults of one plan on one environment."""

    def __init__(self, env: Environment, plan: Optional[FaultPlan] = None):
        self.env = env
        self.plan = plan if plan is not None else FaultPlan.empty()
        self._corrupted: Set[Tuple[str, str]] = set()
        self._armed = False
        # Plain ints on the hot side; exported as pull counters.
        self.device_windows_opened = 0
        self.device_windows_closed = 0
        self.host_crashes = 0
        self.host_reboots = 0
        self.corruptions_marked = 0
        self.corruptions_detected = 0

    # -- arming --------------------------------------------------------

    def arm(self, target: Any, epoch_us: Optional[float] = None) -> None:
        """Start one process per planned fault, with fault times
        interpreted relative to ``epoch_us`` (default: now). Arming
        an empty plan is a no-op."""
        if self._armed:
            raise RuntimeError("FaultInjector.arm() called twice")
        self._armed = True
        self._register_metrics()
        if self.plan.is_empty:
            return
        epoch = self.env.now if epoch_us is None else epoch_us
        for fault in self.plan.device_faults:
            self.env.process(
                self._device_window(target, fault, epoch),
                name=f"fault.device.{fault.scope}",
            )
        for crash in self.plan.host_crashes:
            self.env.process(
                self._crash(target, crash, epoch),
                name=f"fault.crash.{crash.host}",
            )
        for corruption in self.plan.corruptions:
            self.env.process(
                self._corrupt(corruption, epoch),
                name=f"fault.corrupt.{corruption.host}",
            )

    def _register_metrics(self) -> None:
        registry = getattr(self.env, "metrics", None)
        if registry is None:
            return
        prefix = registry.unique_prefix("fault")
        registry.pull_counter(
            f"{prefix}.device_windows_opened",
            lambda: self.device_windows_opened,
        )
        registry.pull_counter(
            f"{prefix}.device_windows_closed",
            lambda: self.device_windows_closed,
        )
        registry.pull_counter(
            f"{prefix}.host_crashes", lambda: self.host_crashes
        )
        registry.pull_counter(
            f"{prefix}.host_reboots", lambda: self.host_reboots
        )
        registry.pull_counter(
            f"{prefix}.corruptions_marked",
            lambda: self.corruptions_marked,
        )
        registry.pull_counter(
            f"{prefix}.corruptions_detected",
            lambda: self.corruptions_detected,
        )
        registry.gauge(
            f"{prefix}.corrupted_snapshots", lambda: len(self._corrupted)
        )

    # -- fault processes -----------------------------------------------

    def _device_window(
        self, target: Any, fault, epoch: float
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(
            max(0.0, epoch + fault.start_us - self.env.now)
        )
        degradation = Degradation(
            latency_factor=fault.latency_factor,
            bandwidth_factor=fault.bandwidth_factor,
            iops_factor=fault.iops_factor,
            error_rate=fault.error_rate,
        )
        devices = list(target.devices_for_scope(fault.scope))
        for device in devices:
            device.push_degradation(degradation)
        self.device_windows_opened += 1
        if fault.duration_us is None:
            return
        yield self.env.timeout(fault.duration_us)
        for device in devices:
            device.pop_degradation(degradation)
        self.device_windows_closed += 1

    def _crash(
        self, target: Any, crash, epoch: float
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(max(0.0, epoch + crash.at_us - self.env.now))
        target.crash_host(crash.host)
        self.host_crashes += 1
        if crash.reboot_after_us is None:
            return
        yield self.env.timeout(crash.reboot_after_us)
        target.reboot_host(crash.host)
        self.host_reboots += 1

    def _corrupt(self, corruption, epoch: float) -> Generator[Event, Any, None]:
        yield self.env.timeout(
            max(0.0, epoch + corruption.at_us - self.env.now)
        )
        self._corrupted.add((corruption.host, corruption.function))
        self.corruptions_marked += 1

    # -- restore-time validation ---------------------------------------

    def check_snapshot(self, host_id: str, function: str) -> bool:
        """True if ``function``'s artefacts on ``host_id`` are
        currently corrupted. Detection clears the mark: validation
        failed, the artefacts are rebuilt, and the *next* restore
        sees healthy files."""
        key = (host_id, function)
        if key in self._corrupted:
            self._corrupted.discard(key)
            self.corruptions_detected += 1
            return True
        return False

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict[str, int]:
        return {
            "device_windows_opened": self.device_windows_opened,
            "device_windows_closed": self.device_windows_closed,
            "host_crashes": self.host_crashes,
            "host_reboots": self.host_reboots,
            "corruptions_marked": self.corruptions_marked,
            "corruptions_detected": self.corruptions_detected,
        }
