"""Canned chaos scenarios and the ``repro chaos`` report.

Each scenario is a deterministic :class:`~repro.faults.FaultPlan`
builder plus the cluster-config overrides that make the failure mode
observable (device scenarios disable keep-alive so every start
actually touches the device; the EBS spike forces the shared tier).
``run_chaos`` runs the same dense trace twice — once fault-free on
the legacy serving path, once under the plan with recovery — and the
:class:`ChaosReport` compares them: availability, goodput, retry
amplification, and the p50/p99/p99.9 tail against the no-fault run.

Everything is reproducible from ``(scenario, seed)`` alone: scenario
builders draw from their own ``random.Random(f"chaos|{name}|{seed}")``
stream, the simulation draws only from the environment seed, and the
report contains no wall-clock timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.scheduler import (
    TIER_SHARED_EBS,
    ClusterConfig,
    ClusterSimulator,
)
from repro.faults.durability import DurabilityPolicy
from repro.faults.plan import (
    SCOPE_ALL,
    SCOPE_SHARED,
    DeviceFault,
    FaultPlan,
    HostCrash,
    SnapshotCorruption,
)
from repro.faults.recovery import DISABLED_RECOVERY, RecoveryPolicy
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

US_PER_SECOND = 1_000_000.0

#: Functions used by every scenario trace (distinct working sets).
SCENARIO_PROFILES = ("json", "pyaes")


@dataclass(frozen=True)
class ChaosScenario:
    """One named failure drill."""

    name: str
    description: str
    build_plan: Callable[[int, int, float], FaultPlan]
    #: ``ClusterConfig`` field overrides the scenario needs.
    config_overrides: Dict[str, Any] = field(default_factory=dict)


def _storm_plan(num_hosts: int, seed: int, duration_us: float) -> FaultPlan:
    """Crash a third of the fleet (at least one host) at staggered
    instants in the first half of the run; every host reboots."""
    rng = random.Random(f"chaos|host-crash-storm|{seed}")
    victims = max(1, num_hosts // 3)
    hosts = rng.sample(range(num_hosts), victims)
    crashes = []
    for host in sorted(hosts):
        at = rng.uniform(0.1, 0.5) * duration_us
        crashes.append(
            HostCrash(
                host=f"host{host}",
                at_us=at,
                reboot_after_us=rng.uniform(0.15, 0.3) * duration_us,
            )
        )
    return FaultPlan(host_crashes=crashes)


def _brownout_plan(
    num_hosts: int, seed: int, duration_us: float
) -> FaultPlan:
    """Every device collapses to a fraction of its throughput for the
    middle third of the run, with a small injected error rate."""
    rng = random.Random(f"chaos|slow-device-brownout|{seed}")
    start = rng.uniform(0.2, 0.35) * duration_us
    return FaultPlan(
        device_faults=[
            DeviceFault(
                scope=SCOPE_ALL,
                start_us=start,
                duration_us=duration_us / 3,
                latency_factor=rng.uniform(6.0, 10.0),
                bandwidth_factor=rng.uniform(0.1, 0.25),
                iops_factor=0.25,
                error_rate=0.002,
            )
        ]
    )


def _epidemic_plan(
    num_hosts: int, seed: int, duration_us: float
) -> FaultPlan:
    """Most hosts silently lose one function's snapshot artefact;
    detection happens at the next restore, which must re-record or
    fail over."""
    rng = random.Random(f"chaos|corrupted-snapshot-epidemic|{seed}")
    corruptions = []
    for host in range(num_hosts):
        if rng.random() < 0.75:
            corruptions.append(
                SnapshotCorruption(
                    host=f"host{host}",
                    function=f"f{rng.randrange(len(SCENARIO_PROFILES))}",
                    at_us=rng.uniform(0.05, 0.6) * duration_us,
                )
            )
    return FaultPlan(corruptions=corruptions)


def _ebs_spike_plan(
    num_hosts: int, seed: int, duration_us: float
) -> FaultPlan:
    """The shared snapshot volume's network path degrades: a latency
    spike plus transient request errors, hitting every host at once."""
    rng = random.Random(f"chaos|ebs-latency-spike|{seed}")
    start = rng.uniform(0.15, 0.3) * duration_us
    return FaultPlan(
        device_faults=[
            DeviceFault(
                scope=SCOPE_SHARED,
                start_us=start,
                duration_us=duration_us / 4,
                latency_factor=rng.uniform(10.0, 20.0),
                bandwidth_factor=0.5,
                error_rate=0.001,
            )
        ]
    )


def _bitrot_plan(
    num_hosts: int, seed: int, duration_us: float
) -> FaultPlan:
    """Sustained bit-rot on the shared snapshot volume: corruption
    waves keep landing on random (host, function) artefacts for the
    whole run, so detection has to work under load, not just once."""
    rng = random.Random(f"chaos|bitrot-storm|{seed}")
    waves = 6
    corruptions = []
    for wave in range(waves):
        at_frac = (wave + rng.uniform(0.1, 0.9)) / waves
        for host in range(num_hosts):
            if rng.random() < 0.6:
                corruptions.append(
                    SnapshotCorruption(
                        host=f"host{host}",
                        function=(
                            f"f{rng.randrange(len(SCENARIO_PROFILES))}"
                        ),
                        at_us=at_frac * duration_us,
                    )
                )
    return FaultPlan(corruptions=corruptions)


SCENARIOS: Dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            name="host-crash-storm",
            description="a third of the fleet power-fails mid-run, "
            "then reboots cold",
            build_plan=_storm_plan,
        ),
        ChaosScenario(
            name="slow-device-brownout",
            description="every snapshot device collapses to a fraction "
            "of its throughput for a third of the run",
            build_plan=_brownout_plan,
            config_overrides={
                "assume_snapshots_exist": True,
                "keep_alive_ttl_us": 0.0,
            },
        ),
        ChaosScenario(
            name="corrupted-snapshot-epidemic",
            description="snapshot artefacts silently rot on most hosts; "
            "corruption is detected at restore time",
            build_plan=_epidemic_plan,
            config_overrides={
                "assume_snapshots_exist": True,
                "keep_alive_ttl_us": 0.0,
            },
        ),
        ChaosScenario(
            name="bitrot-storm",
            description="sustained bit-rot on the shared snapshot "
            "volume under load; every corrupted restore must be "
            "caught by verified restore or the scrubber",
            build_plan=_bitrot_plan,
            config_overrides={
                "snapshot_tier": TIER_SHARED_EBS,
                "assume_snapshots_exist": True,
                "keep_alive_ttl_us": 0.0,
                "durability": DurabilityPolicy(
                    enabled=True,
                    replicas=2,
                    scrub_interval_us=2_000_000.0,
                ),
            },
        ),
        ChaosScenario(
            name="ebs-latency-spike",
            description="the shared EBS snapshot volume's network path "
            "spikes in latency and error rate",
            build_plan=_ebs_spike_plan,
            config_overrides={
                "snapshot_tier": TIER_SHARED_EBS,
                "assume_snapshots_exist": True,
                "keep_alive_ttl_us": 0.0,
            },
        ),
    )
}

SCENARIO_NAMES = tuple(SCENARIOS)


def scenario_trace(
    arrivals: int, interarrival_us: float
) -> ArrivalTrace:
    """A dense deterministic trace: ``arrivals`` invocations spaced
    ``interarrival_us`` apart, round-robin over the scenario
    functions — dense enough that crashes abort in-flight work."""
    items = [
        Arrival(
            time_us=i * interarrival_us,
            function=f"f{i % len(SCENARIO_PROFILES)}",
        )
        for i in range(arrivals)
    ]
    return ArrivalTrace(
        arrivals=items, duration_us=arrivals * interarrival_us
    )


def scenario_fleet() -> List[FleetFunction]:
    return [
        FleetFunction(
            name=f"f{i}",
            profile_name=profile,
            mean_interarrival_us=US_PER_SECOND,
        )
        for i, profile in enumerate(SCENARIO_PROFILES)
    ]


@dataclass
class ChaosReport:
    """Outcome of one chaos drill, comparable across runs."""

    scenario: str
    seed: int
    num_hosts: int
    recovery_enabled: bool
    arrivals: int
    plan: FaultPlan
    availability: float
    goodput_per_s: float
    retry_amplification: float
    outcome_counts: Dict[str, int]
    #: Latency percentiles over successfully served invocations, us.
    p50_us: float
    p99_us: float
    p999_us: float
    #: The same percentiles from the fault-free baseline run.
    baseline_p50_us: float
    baseline_p99_us: float
    baseline_p999_us: float
    fault_summary: Dict[str, int]
    host_failures: Dict[str, int]
    #: Fraction of corruption encounters that were detected (verified
    #: restore or scrubber) rather than served silently; 1.0 when the
    #: drill produced no encounters at all.
    detection_rate: float = 1.0
    corruptions_detected: int = 0
    silent_corrupt_serves: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; deterministic for a given (seed, plan) —
        no wall-clock anywhere."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "num_hosts": self.num_hosts,
            "recovery_enabled": self.recovery_enabled,
            "arrivals": self.arrivals,
            "plan": self.plan.as_dict(),
            "availability": self.availability,
            "goodput_per_s": self.goodput_per_s,
            "retry_amplification": self.retry_amplification,
            "outcome_counts": dict(sorted(self.outcome_counts.items())),
            "latency_us": {
                "p50": self.p50_us,
                "p99": self.p99_us,
                "p99.9": self.p999_us,
            },
            "baseline_latency_us": {
                "p50": self.baseline_p50_us,
                "p99": self.baseline_p99_us,
                "p99.9": self.baseline_p999_us,
            },
            "fault_summary": dict(sorted(self.fault_summary.items())),
            "host_failures": dict(sorted(self.host_failures.items())),
            "detection_rate": self.detection_rate,
            "corruptions_detected": self.corruptions_detected,
            "silent_corrupt_serves": self.silent_corrupt_serves,
        }

    def render(self) -> str:
        from repro.metrics import render_table

        rows = [
            ["availability", f"{self.availability:.4f}"],
            ["goodput (inv/s)", f"{self.goodput_per_s:.3f}"],
            ["retry amplification", f"{self.retry_amplification:.3f}"],
        ]
        for outcome, count in sorted(self.outcome_counts.items()):
            rows.append([f"outcome: {outcome}", count])
        rows += [
            ["p50 (ms)", f"{self.p50_us / 1000:.2f}"],
            ["p99 (ms)", f"{self.p99_us / 1000:.2f}"],
            ["p99.9 (ms)", f"{self.p999_us / 1000:.2f}"],
            ["p99.9 no-fault (ms)", f"{self.baseline_p999_us / 1000:.2f}"],
        ]
        for name, value in sorted(self.fault_summary.items()):
            if value:
                rows.append([f"fault: {name}", value])
        if self.corruptions_detected or self.silent_corrupt_serves:
            rows.append(
                ["detection rate", f"{self.detection_rate:.4f}"]
            )
        return render_table(
            ["metric", "value"],
            rows,
            title=f"Chaos drill: {self.scenario} "
            f"({self.num_hosts} hosts, seed {self.seed}, recovery "
            f"{'on' if self.recovery_enabled else 'off'})",
        )


def run_chaos(
    scenario: str,
    num_hosts: int = 4,
    seed: int = 1,
    arrivals: int = 60,
    interarrival_us: float = 250_000.0,
    recovery: Optional[RecoveryPolicy] = None,
    causal=None,
    slo=None,
    flight=None,
) -> ChaosReport:
    """Run one chaos drill and its fault-free baseline.

    ``recovery=None`` uses the full self-healing policy; pass
    :data:`~repro.faults.DISABLED_RECOVERY` to measure how the
    cluster fares with every recovery feature off.

    ``causal`` / ``slo`` / ``flight`` attach the observability plane
    (causal tracer, SLO monitor, flight recorder) to the *faulted*
    run only — the baseline stays pristine so the comparison is
    fault-vs-no-fault, not instrumented-vs-not (instrumentation is
    zero-perturbation anyway; the harness gates that separately).
    """
    spec = SCENARIOS.get(scenario)
    if spec is None:
        raise ValueError(
            f"unknown chaos scenario {scenario!r}; "
            f"known: {', '.join(SCENARIO_NAMES)}"
        )
    if recovery is None:
        recovery = RecoveryPolicy.full()
    fleet = scenario_fleet()
    trace = scenario_trace(arrivals, interarrival_us)
    duration_us = trace.duration_us
    plan = spec.build_plan(num_hosts, seed, duration_us)

    base_config = ClusterConfig(
        num_hosts=num_hosts,
        seed=seed,
        **spec.config_overrides,
    )
    baseline = ClusterSimulator(fleet, base_config).run(trace)

    chaos_config = ClusterConfig(
        num_hosts=num_hosts,
        seed=seed,
        recovery=recovery,
        **spec.config_overrides,
    )
    simulator = ClusterSimulator(fleet, chaos_config)
    report = simulator.run(
        trace, fault_plan=plan, causal=causal, slo=slo, flight=flight
    )

    ok = len(report.ok_invocations())
    summary = simulator.injector.summary()
    detected = summary.get(
        "corruptions_detected_restore", 0
    ) + summary.get("corruptions_detected_scrub", 0)
    silent = summary.get("silent_corrupt_serves", 0)
    encounters = detected + silent
    return ChaosReport(
        scenario=scenario,
        seed=seed,
        num_hosts=num_hosts,
        recovery_enabled=recovery is not DISABLED_RECOVERY
        and bool(recovery.armed_features),
        arrivals=arrivals,
        plan=plan,
        availability=report.availability(),
        goodput_per_s=ok / (duration_us / US_PER_SECOND),
        retry_amplification=report.retry_amplification(),
        outcome_counts=report.outcome_counts(),
        p50_us=report.latency_percentile(50),
        p99_us=report.latency_percentile(99),
        p999_us=report.latency_percentile(99.9),
        baseline_p50_us=baseline.latency_percentile(50),
        baseline_p99_us=baseline.latency_percentile(99),
        baseline_p999_us=baseline.latency_percentile(99.9),
        fault_summary=summary,
        host_failures={
            host: stats.failures
            for host, stats in report.host_stats.items()
        },
        detection_rate=(
            detected / encounters if encounters else 1.0
        ),
        corruptions_detected=detected,
        silent_corrupt_serves=silent,
    )
