"""Snapshot durability: checksummed replicas, repair, and scrubbing.

FaaSnap's latency win assumes the snapshot artefacts it restores from
are *correct*; a rotting snapshot tier silently turns warm restores
into wrong-memory serves. This module models the durability plane a
production snapshot store needs:

* **Integrity** — every published snapshot carries per-chunk
  checksums (:meth:`repro.storage.filestore.StoredFile.chunk_checksums`
  over page content tokens). The restore path verifies the chosen
  replica's stored checksums against the golden set *at read time*,
  so corruption is detected deterministically on the restore path —
  not via the injector's side-channel mark.
* **Replication + repair** — each ``(host, function)`` snapshot has
  ``R`` replicas. A detected-bad replica is quarantined (never
  re-read) and the escalation chain runs: fail over to the next
  healthy replica, re-replicate the bad one in the background (under
  the cluster :class:`~repro.faults.recovery.RetryBudget`, so repair
  traffic cannot starve serving retries), and — when *every* replica
  is bad — rebuild from scratch via a cold boot, which prices the
  loss against the cold-start lower bound.
* **Scrubbing** — a seeded background scrubber walks each host's
  replicas during idle windows and repairs bit-rot before any
  invocation sees it. Scrubber-found and restore-found detections
  are counted separately.

Everything is deterministic: corruption targets replicas and chunks
by a per-snapshot counter (no RNG), events are stamped with virtual
time plus a per-host sequence number, and the merged event stream is
byte-identical across shard counts (``shards=1`` ≡ ``shards=N``).

With :data:`DISABLED_DURABILITY` (the default policy) the manager is
never constructed and the cluster run is bit-identical to one
predating this module — the perf harness gates this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim import Environment, Event, Interrupt

#: Replica states. ``healthy`` replicas may serve restores;
#: ``quarantined`` replicas are never re-read until repaired.
HEALTHY = "healthy"
QUARANTINED = "quarantined"

#: ``verify_restore`` outcomes.
VERIFY_OK = "ok"
VERIFY_CORRUPT = "corrupt"  # detected at read time -> quarantine
VERIFY_SILENT = "silent"  # verification off: wrong memory served
VERIFY_UNTRACKED = "untracked"  # no checksums known for the artefacts


@dataclass(frozen=True)
class DurabilityPolicy:
    """Knobs for the snapshot durability plane.

    The default (``enabled=False``) keeps the plane entirely out of
    the run. ``verify_restores=False`` with ``enabled=True`` models a
    store that replicates and scrubs but does not checksum on the
    read path — corrupted restores then complete as silent
    wrong-memory serves, which the ``bitrot-storm`` drill's
    ``--min-detection`` gate exists to catch.
    """

    enabled: bool = False
    #: Replicas per published snapshot.
    replicas: int = 2
    #: Verify the chosen replica's checksums on every restore.
    verify_restores: bool = True
    #: Pages per checksum chunk.
    chunk_pages: int = 64
    #: Scrubber wake interval (``None`` = no background scrubbing).
    scrub_interval_us: Optional[float] = None
    #: Virtual time to re-replicate one chunk during repair.
    repair_us_per_chunk: float = 50.0
    #: Pause before re-asking the retry budget after a denied repair.
    repair_retry_us: float = 500_000.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.chunk_pages < 1:
            raise ValueError("chunk_pages must be >= 1")
        if self.scrub_interval_us is not None and self.scrub_interval_us <= 0:
            raise ValueError("scrub_interval_us must be positive (or None)")
        if self.repair_us_per_chunk < 0:
            raise ValueError("repair_us_per_chunk must be >= 0")
        if self.repair_retry_us <= 0:
            raise ValueError("repair_retry_us must be positive")

    def as_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "replicas": self.replicas,
            "verify_restores": self.verify_restores,
            "chunk_pages": self.chunk_pages,
            "scrub_interval_us": self.scrub_interval_us,
            "repair_us_per_chunk": self.repair_us_per_chunk,
            "repair_retry_us": self.repair_retry_us,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "DurabilityPolicy":
        return cls(**doc)


#: The do-nothing policy: durability plane off, zero perturbation.
DISABLED_DURABILITY = DurabilityPolicy()


@dataclass
class Replica:
    """One stored copy of a snapshot's artefacts."""

    index: int
    #: Checksums the artefacts were published with (ground truth).
    golden: Tuple[int, ...]
    #: Checksums of what is on disk now (diverges under bit-rot).
    stored: List[int]
    state: str = HEALTHY

    @property
    def intact(self) -> bool:
        return tuple(self.stored) == self.golden


@dataclass
class ReplicaSet:
    """All replicas of one ``(host, function)`` snapshot."""

    host: str
    function: str
    replicas: List[Replica]
    #: Per-set corruption counter driving deterministic targeting.
    corrupt_seq: int = 0

    @property
    def readable(self) -> bool:
        return any(r.state == HEALTHY for r in self.replicas)

    @property
    def rebuilding(self) -> bool:
        """Every replica bad: the snapshot must be rebuilt from
        scratch (the restore path falls back to a cold boot)."""
        return not self.readable

    def pick(self) -> Optional[Replica]:
        """The replica a restore reads: first healthy in index
        order (deterministic, quarantine-aware placement)."""
        for replica in self.replicas:
            if replica.state == HEALTHY:
                return replica
        return None


class DurabilityManager:
    """Owns every replica set of one cluster run (or of one shard's
    host in sharded execution — the plane is per-host state, so the
    split is exact).

    ``checksum_fn(host_id, function)`` returns the golden per-chunk
    checksums of that snapshot's artefacts, or ``None`` when no
    artefacts exist yet (replica sets are created lazily on first
    touch). ``budget_fn()`` returns the run's
    :class:`~repro.faults.recovery.RetryBudget` (or ``None``); repair
    traffic spends from it. ``observer(kind, host, **detail)`` mirrors
    the injector's flight-recorder hook.
    """

    def __init__(
        self,
        env: Environment,
        policy: DurabilityPolicy,
        checksum_fn: Callable[[str, str], Optional[Tuple[int, ...]]],
        budget_fn: Optional[Callable[[], Any]] = None,
        observer: Optional[Any] = None,
    ):
        self.env = env
        self.policy = policy
        self.checksum_fn = checksum_fn
        self.budget_fn = budget_fn
        self.observer = observer
        self._sets: Dict[Tuple[str, str], ReplicaSet] = {}
        #: Corruption marks that arrived before the snapshot existed,
        #: applied when the replica set is first materialised.
        self._pending_corruptions: Dict[Tuple[str, str], int] = {}
        self._seq: Dict[str, int] = {}
        self._procs: List[Any] = []
        #: Deterministic event stream, merged and sorted
        #: ``(t_us, host, seq)`` across shards.
        self.events: List[Dict[str, Any]] = []
        # Counters (plain ints; exported as pull counters).
        self.corruptions_applied = 0
        self.detected_restore = 0
        self.detected_scrub = 0
        self.silent_corrupt_serves = 0
        self.quarantines = 0
        self.repairs = 0
        self.repairs_deferred = 0
        self.rebuilds = 0
        self.scrub_cycles = 0
        self._register_metrics()

    # -- bookkeeping ---------------------------------------------------

    def _register_metrics(self) -> None:
        registry = getattr(self.env, "metrics", None)
        if registry is None:
            return
        prefix = registry.unique_prefix("durability")
        for name in (
            "corruptions_applied",
            "detected_restore",
            "detected_scrub",
            "silent_corrupt_serves",
            "quarantines",
            "repairs",
            "repairs_deferred",
            "rebuilds",
            "scrub_cycles",
        ):
            registry.pull_counter(
                f"{prefix}.{name}",
                (lambda n=name: getattr(self, n)),
            )
        registry.gauge(
            f"{prefix}.quarantined_replicas",
            lambda: sum(
                1
                for rs in self._sets.values()
                for r in rs.replicas
                if r.state == QUARANTINED
            ),
        )

    def _emit(self, kind: str, host: str, **detail: Any) -> None:
        seq = self._seq.get(host, 0)
        self._seq[host] = seq + 1
        event = {
            "t_us": round(self.env.now, 3),
            "host": host,
            "seq": seq,
            "kind": kind,
        }
        event.update(detail)
        self.events.append(event)
        if self.observer is not None:
            self.observer(f"durability.{kind}", host, **detail)

    def drain_events(self) -> List[Dict[str, Any]]:
        """Pop and return the accumulated events (sharded workers
        ship them through window digests)."""
        events, self.events = self.events, []
        return events

    # -- replica-set lifecycle -----------------------------------------

    def ensure(self, host_id: str, function: str) -> Optional[ReplicaSet]:
        """The replica set for ``(host_id, function)``, materialising
        it from the artefacts' checksums on first touch. ``None`` when
        no artefacts exist yet."""
        key = (host_id, function)
        rs = self._sets.get(key)
        if rs is not None:
            return rs
        golden = self.checksum_fn(host_id, function)
        if not golden:
            return None
        golden = tuple(golden)
        rs = ReplicaSet(
            host=host_id,
            function=function,
            replicas=[
                Replica(index=i, golden=golden, stored=list(golden))
                for i in range(self.policy.replicas)
            ],
        )
        self._sets[key] = rs
        pending = self._pending_corruptions.pop(key, 0)
        for _ in range(pending):
            self._apply_corruption(rs)
        return rs

    def publish(self, host_id: str, function: str) -> None:
        """Called when the scheduler (re)records artefacts for
        ``function`` on ``host_id``.

        * No replica set yet → create one silently.
        * Fully-unreadable set → this publish *is* the
          rebuild-from-scratch completing (the cold boot already paid
          the gap-to-bound); reset every replica to the fresh golden
          checksums.
        * Partially-quarantined set → untouched: publish must never
          silently heal a quarantined replica, background repair is
          the only healing path.
        """
        rs = self.ensure(host_id, function)
        if rs is None or rs.readable:
            return
        golden = self.checksum_fn(host_id, function)
        if not golden:
            return
        golden = tuple(golden)
        for replica in rs.replicas:
            replica.golden = golden
            replica.stored = list(golden)
            replica.state = HEALTHY
        self.rebuilds += 1
        self._emit(
            "rebuild",
            host_id,
            function=function,
            replicas=len(rs.replicas),
        )

    # -- corruption ----------------------------------------------------

    def mark_corrupt(self, host_id: str, function: str) -> None:
        """Injector entry point: one corruption event lands on
        ``(host_id, function)``. Target replica and chunk follow the
        per-set corruption counter — no RNG, so shard-invariant."""
        rs = self.ensure(host_id, function)
        if rs is None:
            key = (host_id, function)
            self._pending_corruptions[key] = (
                self._pending_corruptions.get(key, 0) + 1
            )
            return
        self._apply_corruption(rs)

    def _apply_corruption(self, rs: ReplicaSet) -> None:
        replica = rs.replicas[rs.corrupt_seq % len(rs.replicas)]
        if replica.stored:
            chunk = rs.corrupt_seq % len(replica.stored)
            replica.stored[chunk] ^= 0x5A5A5A5A
        rs.corrupt_seq += 1
        self.corruptions_applied += 1

    # -- restore path --------------------------------------------------

    def has_readable(self, host_id: str, function: str) -> bool:
        """Replica-aware warm check: False when every replica is
        quarantined (the caller must fall back to a cold boot — the
        rebuild-from-scratch leg of the escalation chain)."""
        rs = self.ensure(host_id, function)
        if rs is None:
            return True
        return rs.readable

    def verify_restore(self, host_id: str, function: str) -> str:
        """Verify the replica a restore is about to read.

        Returns :data:`VERIFY_OK`, :data:`VERIFY_CORRUPT` (detected —
        the replica is quarantined, background repair starts, and the
        caller must fail the attempt so recovery fails over),
        :data:`VERIFY_SILENT` (verification off and the artefacts are
        bad: the serve proceeds with wrong memory), or
        :data:`VERIFY_UNTRACKED` (no checksums known)."""
        rs = self.ensure(host_id, function)
        if rs is None:
            return VERIFY_UNTRACKED
        replica = rs.pick()
        if replica is None:
            # ``has_readable`` should have routed this to a cold
            # boot; treat as untracked rather than crash the serve.
            return VERIFY_UNTRACKED
        if replica.intact:
            return VERIFY_OK
        if not self.policy.verify_restores:
            self.silent_corrupt_serves += 1
            return VERIFY_SILENT
        self.detected_restore += 1
        self._quarantine(rs, replica, found="restore")
        return VERIFY_CORRUPT

    # -- quarantine + repair -------------------------------------------

    def _quarantine(
        self, rs: ReplicaSet, replica: Replica, found: str
    ) -> None:
        replica.state = QUARANTINED
        self.quarantines += 1
        self._emit(
            "quarantine",
            rs.host,
            function=rs.function,
            replica=replica.index,
            found=found,
            readable=sum(
                1 for r in rs.replicas if r.state == HEALTHY
            ),
        )
        self._procs.append(
            self.env.process(
                self._repair(rs, replica),
                name=f"durability.repair.{rs.host}.{rs.function}",
            )
        )

    def _repair(
        self, rs: ReplicaSet, replica: Replica
    ) -> Generator[Event, Any, None]:
        """Background re-replication of one quarantined replica,
        gated on the cluster retry budget so repair traffic cannot
        starve serving retries."""
        try:
            budget = self.budget_fn() if self.budget_fn else None
            while budget is not None and not budget.try_spend():
                self.repairs_deferred += 1
                yield self.env.timeout(self.policy.repair_retry_us)
            yield self.env.timeout(
                self.policy.repair_us_per_chunk * len(replica.golden)
            )
        except Interrupt:
            return
        if replica.state != QUARANTINED:
            return  # a rebuild already reset this replica
        replica.stored = list(replica.golden)
        replica.state = HEALTHY
        self.repairs += 1
        self._emit(
            "repair",
            rs.host,
            function=rs.function,
            replica=replica.index,
        )

    # -- scrubbing -----------------------------------------------------

    def start_scrubber(self, host_id: str) -> Optional[Any]:
        """Spawn the periodic scrub process for one host's replicas
        (no-op without ``scrub_interval_us``)."""
        if self.policy.scrub_interval_us is None:
            return None
        proc = self.env.process(
            self._scrub_loop(host_id), name=f"durability.scrub.{host_id}"
        )
        self._procs.append(proc)
        return proc

    def _scrub_loop(self, host_id: str) -> Generator[Event, Any, None]:
        try:
            while True:
                yield self.env.timeout(self.policy.scrub_interval_us)
                self.scrub_host(host_id)
        except Interrupt:
            return

    def scrub_host(self, host_id: str) -> Dict[str, int]:
        """One scrub sweep over ``host_id``'s replicas: quarantine
        every healthy-but-rotten replica and queue its repair."""
        self.scrub_cycles += 1
        checked = found = 0
        for key in sorted(self._sets):
            if key[0] != host_id:
                continue
            rs = self._sets[key]
            for replica in rs.replicas:
                if replica.state != HEALTHY:
                    continue
                checked += 1
                if not replica.intact:
                    found += 1
                    self.detected_scrub += 1
                    self._quarantine(rs, replica, found="scrub")
        return {"checked": checked, "found": found}

    def scrub_now(self) -> Dict[str, int]:
        """Operator-forced sweep over every host (the ``scrub``
        service command). Detection is immediate; repairs run in the
        background as usual."""
        hosts = sorted({key[0] for key in self._sets})
        checked = found = 0
        for host_id in hosts:
            result = self.scrub_host(host_id)
            checked += result["checked"]
            found += result["found"]
        return {
            "hosts": len(hosts),
            "checked": checked,
            "found": found,
        }

    def stop(self) -> None:
        """Interrupt in-flight scrub/repair processes (end of the
        serving epoch). Interrupted repairs leave their replica
        quarantined — deterministic, since the stop time is."""
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("durability plane stopped")
        self._procs.clear()

    # -- reporting -----------------------------------------------------

    def readable_functions(self, host_id: str) -> List[str]:
        """Functions with at least one readable replica on
        ``host_id`` (sharded workers export this so the router's
        placement view is quarantine-aware)."""
        return sorted(
            key[1]
            for key, rs in self._sets.items()
            if key[0] == host_id and rs.readable
        )

    def status(self) -> Dict[str, Any]:
        """Canonical point-in-time durability document (the
        ``durability-status`` service command)."""
        sets = []
        for key in sorted(self._sets):
            rs = self._sets[key]
            sets.append(
                {
                    "host": rs.host,
                    "function": rs.function,
                    "replicas": [r.state for r in rs.replicas],
                    "readable": rs.readable,
                    "rebuilding": rs.rebuilding,
                }
            )
        return {
            "policy": self.policy.as_dict(),
            "counters": self.summary(),
            "replica_sets": sets,
        }

    def summary(self) -> Dict[str, int]:
        return {
            "corruptions_applied": self.corruptions_applied,
            "detected_restore": self.detected_restore,
            "detected_scrub": self.detected_scrub,
            "silent_corrupt_serves": self.silent_corrupt_serves,
            "quarantines": self.quarantines,
            "repairs": self.repairs,
            "repairs_deferred": self.repairs_deferred,
            "rebuilds": self.rebuilds,
            "scrub_cycles": self.scrub_cycles,
        }
