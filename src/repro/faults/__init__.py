"""Failure injection and self-healing recovery.

A production FaaS control plane is defined less by its happy path
than by what happens when hosts crash, devices stall, and snapshot
artefacts go bad — cold-start tails are dominated by failures. This
package gives the reproduction both halves of that story:

* **Injection** — :class:`~repro.faults.plan.FaultPlan` declares a
  seeded, virtual-time schedule of failures (device degradation and
  stalls, transient/permanent host crashes, snapshot corruption,
  network-tier latency/error spikes for the shared-EBS path), and
  :class:`~repro.faults.injector.FaultInjector` replays it against a
  running cluster. Everything is deterministic: all randomness flows
  from the run seed through ``Environment.rng``.
* **Recovery** — :class:`~repro.faults.recovery.RecoveryPolicy`
  bundles per-invocation deadlines, jittered exponential-backoff
  retries under a global retry budget, tail-latency hedging with
  loser cancellation, and admission-control load shedding with a
  degraded restore mode; :class:`~repro.faults.health.HealthMonitor`
  turns telemetry signals into host health for placement failover.
* **Chaos** — :mod:`~repro.faults.chaos` packages canned scenarios
  (host-crash storm, slow-device brownout, corrupted-snapshot
  epidemic, EBS latency spike) behind ``python -m repro chaos`` and
  reports availability, goodput, retry amplification, and tail
  latency against the no-fault run.

The layer is zero-cost when idle: with an empty plan and default
recovery policy, the cluster produces bit-identical results to a run
with no fault machinery at all (the perf harness gates this).
"""

from repro.faults.durability import (
    DISABLED_DURABILITY,
    DurabilityManager,
    DurabilityPolicy,
)
from repro.faults.errors import (
    DeadlineExceeded,
    DeviceError,
    FaultError,
    HostCrashed,
    SnapshotCorrupted,
)
from repro.faults.health import HealthMonitor
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    SCOPE_ALL,
    SCOPE_SHARED,
    DeviceFault,
    FailSlow,
    FaultPlan,
    HostCrash,
    SnapshotCorruption,
)
from repro.faults.recovery import (
    DISABLED_RECOVERY,
    HealthPolicy,
    HedgePolicy,
    HedgeTracker,
    RecoveryPolicy,
    RetryBudget,
    RetryPolicy,
    SheddingPolicy,
    rebalance_tokens,
)

__all__ = [
    "DISABLED_DURABILITY",
    "DISABLED_RECOVERY",
    "DeadlineExceeded",
    "DeviceError",
    "DeviceFault",
    "DurabilityManager",
    "DurabilityPolicy",
    "FailSlow",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "HealthMonitor",
    "HealthPolicy",
    "HedgePolicy",
    "HedgeTracker",
    "HostCrash",
    "HostCrashed",
    "RecoveryPolicy",
    "RetryBudget",
    "RetryPolicy",
    "SCOPE_ALL",
    "SCOPE_SHARED",
    "SheddingPolicy",
    "SnapshotCorrupted",
    "SnapshotCorruption",
    "rebalance_tokens",
]
