"""Recovery policies and their runtime state.

The policy dataclasses here are immutable knobs the cluster scheduler
reads on its robust serving path: per-invocation deadlines, jittered
exponential-backoff retries under a global budget, tail-latency
hedging, health-driven failover, and admission-control load shedding
with a degraded restore mode. :class:`RetryBudget` and
:class:`HedgeTracker` are the small pieces of mutable state those
policies need at run time; the scheduler owns one of each per run.

Everything is deterministic: backoff jitter draws from the seeded
``Environment.rng``, and the hedge threshold is a pure function of
the latencies observed so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.policies import Policy


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with a hard cap.

    ``backoff_us(attempt, rng)`` computes the pause before retry
    number ``attempt`` (1 = first retry):
    ``base * multiplier**(attempt-1)``, clamped to ``max_backoff_us``,
    then scaled by a uniform jitter in ``[1-jitter, 1]`` so that a
    thundering herd of simultaneous failures de-synchronises. The
    result is always in ``[0, max_backoff_us]``.
    """

    enabled: bool = False
    #: Total tries per invocation (first attempt included).
    max_attempts: int = 3
    base_backoff_us: float = 20_000.0
    multiplier: float = 2.0
    max_backoff_us: float = 1_000_000.0
    #: Fraction of the backoff randomised away, in [0, 1].
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_us < 0 or self.max_backoff_us < 0:
            raise ValueError("backoff times must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_us(self, attempt: int, rng) -> float:
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        backoff = self.base_backoff_us * self.multiplier ** (attempt - 1)
        backoff = min(backoff, self.max_backoff_us)
        if self.jitter > 0.0:
            backoff *= 1.0 - self.jitter * rng.random()
        return min(max(backoff, 0.0), self.max_backoff_us)


@dataclass(frozen=True)
class HedgePolicy:
    """Tail-latency hedging: once an attempt has been running longer
    than the ``percentile`` of observed attempt latencies (scaled by
    ``multiplier``), launch a second attempt on another healthy host
    and keep whichever finishes first, cancelling the loser. No
    hedges fire until ``min_samples`` latencies have been observed,
    and the threshold never drops below ``floor_us`` — both guards
    keep cold-start noise from triggering a hedging storm."""

    enabled: bool = False
    percentile: float = 95.0
    min_samples: int = 20
    floor_us: float = 10_000.0
    multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.floor_us < 0:
            raise ValueError("floor_us must be >= 0")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")


@dataclass(frozen=True)
class HealthPolicy:
    """How telemetry turns into host health.

    The :class:`~repro.faults.health.HealthMonitor` wakes every
    ``check_interval_us`` and marks a host unhealthy when it has seen
    ``error_threshold`` or more attempt failures within the trailing
    ``window_us`` (or when the host is crashed). An unhealthy host is
    drained — placement stops routing to it — and reintegrated after
    ``reintegrate_after_us`` of quiet.

    ``fail_slow_factor`` arms gray-failure detection: each host's
    first ``fail_slow_min_samples`` restore latencies freeze a
    per-host baseline median, and when the median of the most recent
    ``fail_slow_min_samples`` (within a ``fail_slow_window``-sample
    history) exceeds ``factor × baseline`` the host is drained even
    though it reports no errors. ``None`` (the default) keeps the
    detector off and the monitor byte-identical to before.
    """

    enabled: bool = False
    check_interval_us: float = 250_000.0
    error_threshold: int = 3
    window_us: float = 2_000_000.0
    reintegrate_after_us: float = 1_000_000.0
    fail_slow_factor: Optional[float] = None
    fail_slow_min_samples: int = 8
    fail_slow_window: int = 32

    def __post_init__(self) -> None:
        if self.check_interval_us <= 0:
            raise ValueError("check_interval_us must be positive")
        if self.error_threshold < 1:
            raise ValueError("error_threshold must be >= 1")
        if self.window_us <= 0 or self.reintegrate_after_us < 0:
            raise ValueError("health windows must be positive")
        if self.fail_slow_factor is not None and self.fail_slow_factor <= 1.0:
            raise ValueError("fail_slow_factor must be > 1 (or None)")
        if self.fail_slow_min_samples < 2:
            raise ValueError("fail_slow_min_samples must be >= 2")
        if self.fail_slow_window < self.fail_slow_min_samples:
            raise ValueError(
                "fail_slow_window must be >= fail_slow_min_samples"
            )


@dataclass(frozen=True)
class SheddingPolicy:
    """Admission control under overload.

    With ``max_queue_depth`` set, an arrival finding that many
    invocations already queued+active on its chosen host is rejected
    outright (outcome ``shed``). Before that point, crossing
    ``degraded_queue_depth`` switches the host to the cheaper
    ``degraded_policy`` restore path (by default plain Firecracker
    snapshots — give up the page-level restore win to shed load
    gracefully instead of falling over)."""

    max_queue_depth: Optional[int] = None
    degraded_queue_depth: Optional[int] = None
    degraded_policy: Policy = Policy.FIRECRACKER

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if (
            self.degraded_queue_depth is not None
            and self.degraded_queue_depth < 1
        ):
            raise ValueError("degraded_queue_depth must be >= 1")
        if (
            self.max_queue_depth is not None
            and self.degraded_queue_depth is not None
            and self.degraded_queue_depth > self.max_queue_depth
        ):
            raise ValueError(
                "degraded_queue_depth must not exceed max_queue_depth"
            )

    @property
    def enabled(self) -> bool:
        return (
            self.max_queue_depth is not None
            or self.degraded_queue_depth is not None
        )


@dataclass(frozen=True)
class RecoveryPolicy:
    """The whole self-healing configuration for one cluster run."""

    retry: RetryPolicy = RetryPolicy()
    hedge: HedgePolicy = HedgePolicy()
    health: HealthPolicy = HealthPolicy()
    shedding: SheddingPolicy = SheddingPolicy()
    #: End-to-end wall budget per invocation (``None`` = unlimited).
    deadline_us: Optional[float] = None
    #: Retry on a different healthy host when possible.
    failover: bool = True
    #: Global retry budget: the bucket starts at ``retry_budget_min``
    #: tokens and earns ``retry_budget_ratio`` per arrival, so retry
    #: amplification under a correlated failure is bounded at roughly
    #: ``ratio`` of offered load.
    retry_budget_min: float = 10.0
    retry_budget_ratio: float = 0.1

    def __post_init__(self) -> None:
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ValueError("deadline_us must be positive (or None)")
        if self.retry_budget_min < 0 or self.retry_budget_ratio < 0:
            raise ValueError("retry budget parameters must be >= 0")

    @property
    def armed_features(self) -> Tuple[str, ...]:
        """Names of the enabled recovery features. Non-empty means the
        scheduler must take the robust serving path; empty (the
        default policy) keeps the legacy inline path and its exact
        event schedule."""
        features = []
        if self.retry.enabled:
            features.append("retries")
        if self.hedge.enabled:
            features.append("hedging")
        if self.health.enabled:
            features.append("health")
        if self.shedding.enabled:
            features.append("shedding")
        if self.deadline_us is not None:
            features.append("deadline")
        return tuple(features)

    @classmethod
    def full(
        cls,
        deadline_us: Optional[float] = 30_000_000.0,
        max_queue_depth: Optional[int] = 64,
        degraded_queue_depth: Optional[int] = 16,
    ) -> "RecoveryPolicy":
        """Everything on — the configuration chaos scenarios defend."""
        return cls(
            retry=RetryPolicy(enabled=True),
            hedge=HedgePolicy(enabled=True),
            health=HealthPolicy(enabled=True),
            shedding=SheddingPolicy(
                max_queue_depth=max_queue_depth,
                degraded_queue_depth=degraded_queue_depth,
            ),
            deadline_us=deadline_us,
        )


#: The do-nothing policy: every feature off. A cluster run with this
#: policy and no fault plan is bit-identical to one predating the
#: fault subsystem.
DISABLED_RECOVERY = RecoveryPolicy()


class RetryBudget:
    """A token bucket bounding cluster-wide retry amplification.

    Starts at ``min_budget`` tokens, earns ``ratio`` tokens per
    arrival (capped at ``min_budget + ratio * arrivals`` — deposits
    are never discarded within a run, only bounded by offered load),
    and each retry spends one token. When the bucket is empty,
    retries are denied and the invocation fails fast — which is the
    point: during a correlated outage, retrying harder only adds
    load to whatever is still alive.
    """

    def __init__(self, min_budget: float = 10.0, ratio: float = 0.1):
        if min_budget < 0 or ratio < 0:
            raise ValueError("budget parameters must be >= 0")
        self.min_budget = float(min_budget)
        self.ratio = float(ratio)
        self.tokens = float(min_budget)
        self.arrivals = 0
        self.spent = 0
        self.denied = 0

    def on_arrival(self) -> None:
        self.arrivals += 1
        self.tokens += self.ratio

    def try_spend(self) -> bool:
        """Consume one token if available; False denies the retry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    def summary(self) -> dict:
        """Point-in-time budget snapshot (flight-recorder postmortem
        context)."""
        return {
            "tokens": round(self.tokens, 4),
            "arrivals": self.arrivals,
            "spent": self.spent,
            "denied": self.denied,
        }

    @classmethod
    def partitioned(
        cls, min_budget: float, ratio: float, partitions: int
    ) -> "RetryBudget":
        """One partition of a cluster-wide budget split ``partitions``
        ways: the floor is divided evenly while the per-arrival earn
        rate stays unchanged (each partition only sees its own
        arrivals, so cluster-wide earnings still sum to
        ``ratio * arrivals``). Sharded cluster execution gives every
        host one partition and rebalances the pooled tokens at each
        window barrier with :func:`rebalance_tokens`."""
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        return cls(min_budget / partitions, ratio)


def rebalance_tokens(tokens: Sequence[float]) -> List[float]:
    """Deterministic barrier reconciliation of partitioned retry
    budgets: pool every partition's unspent tokens and redistribute
    the pool evenly.

    The sum is taken in partition order, so the result is a pure
    function of the input list — independent of how many worker
    processes the partitions happen to be packed into. This keeps the
    cluster-wide spend bound intact (the pool is conserved) while
    letting a quiet shard's earnings fund retries in a failing one,
    which is what a single cluster-wide bucket would have done.
    """
    if not tokens:
        return []
    pool = 0.0
    for value in tokens:
        pool += value
    share = pool / len(tokens)
    return [share] * len(tokens)


class HedgeTracker:
    """Observed attempt latencies → hedge-fire threshold.

    Keeps the most recent ``window`` completed-attempt latencies and
    derives the hedge threshold as the policy percentile of that
    window (nearest-rank, matching
    :meth:`repro.fleet.scheduler.FleetReport.latency_percentile`)
    times the policy multiplier, floored at ``floor_us``. Returns
    ``None`` — never hedge — until ``min_samples`` latencies arrive.
    """

    def __init__(self, policy: HedgePolicy, window: int = 512):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.policy = policy
        self.window = window
        self._latencies: List[float] = []
        self.fired = 0
        self.won = 0
        self.cancelled = 0

    def record(self, latency_us: float) -> None:
        self._latencies.append(latency_us)
        if len(self._latencies) > self.window:
            del self._latencies[: -self.window]

    @property
    def samples(self) -> int:
        return len(self._latencies)

    def threshold_us(self) -> Optional[float]:
        if len(self._latencies) < self.policy.min_samples:
            return None
        ordered = sorted(self._latencies)
        rank = max(
            0,
            min(
                len(ordered) - 1,
                int(round(self.policy.percentile / 100.0 * len(ordered)))
                - 1,
            ),
        )
        return max(
            ordered[rank] * self.policy.multiplier, self.policy.floor_us
        )

    def summary(self) -> dict:
        """Point-in-time hedge snapshot (flight-recorder postmortem
        context)."""
        threshold = self.threshold_us()
        return {
            "fired": self.fired,
            "won": self.won,
            "cancelled": self.cancelled,
            "samples": self.samples,
            "threshold_us": (
                round(threshold, 3) if threshold is not None else None
            ),
        }
