"""Telemetry-driven host health.

The :class:`HealthMonitor` is the control loop that turns raw failure
signals (attempt errors, crash flags) into a per-host ``healthy`` bit
that placement consults. Draining is conservative and immediate —
:meth:`note_failure` re-evaluates the affected host at the instant of
the failure rather than waiting for the next periodic sweep — while
reintegration is deliberately slow: a host must look clean for a full
quiet period before traffic returns, so a flapping host cannot whip
the placement policy back and forth.

Host state is duck-typed (the cluster scheduler passes its internal
per-host records). Each state must expose::

    host          -> object with ``.crashed`` and ``.host_id``
    healthy       -> mutable bool (placement reads this)
    error_times   -> mutable list of failure timestamps (us, sorted)
    last_bad_us   -> mutable float, monitor-owned bookkeeping
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

from repro.faults.recovery import HealthPolicy
from repro.sim import Environment, Event, Interrupt


class HealthMonitor:
    """Periodic health sweeps plus instant drain on failure."""

    def __init__(
        self,
        env: Environment,
        policy: HealthPolicy,
        states: Sequence[Any],
        on_drain: Optional[Callable[[Any], None]] = None,
        on_reintegrate: Optional[Callable[[Any], None]] = None,
    ):
        self.env = env
        self.policy = policy
        self.states = list(states)
        self.on_drain = on_drain
        self.on_reintegrate = on_reintegrate
        self.drains = 0
        self.reintegrations = 0
        self.checks = 0
        self._proc = None
        registry = getattr(env, "metrics", None)
        if registry is not None:
            prefix = registry.unique_prefix("health")
            registry.pull_counter(f"{prefix}.drains", lambda: self.drains)
            registry.pull_counter(
                f"{prefix}.reintegrations", lambda: self.reintegrations
            )
            registry.pull_counter(f"{prefix}.checks", lambda: self.checks)
            registry.gauge(
                f"{prefix}.unhealthy_hosts",
                lambda: sum(1 for s in self.states if not s.healthy),
            )

    # -- lifecycle -----------------------------------------------------

    def start(self):
        """Spawn the periodic sweep process (call :meth:`stop` when
        the workload drains, or the sweep keeps the run alive)."""
        if self._proc is not None:
            raise RuntimeError("HealthMonitor.start() called twice")
        self._proc = self.env.process(self._run(), name="health.monitor")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("health monitor stopped")

    def _run(self) -> Generator[Event, Any, None]:
        try:
            while True:
                yield self.env.timeout(self.policy.check_interval_us)
                self.check_now()
        except Interrupt:
            return

    # -- signals -------------------------------------------------------

    def note_failure(self, state: Any) -> None:
        """Record one attempt failure on ``state``'s host and
        re-evaluate it immediately (fast drain)."""
        state.error_times.append(self.env.now)
        self._evaluate(state)

    def check_now(self) -> None:
        """One sweep over every host (the periodic path; also drives
        reintegration, which has no triggering event)."""
        self.checks += 1
        for state in self.states:
            self._evaluate(state)

    # -- evaluation ----------------------------------------------------

    def _evaluate(self, state: Any) -> None:
        if getattr(state, "drained", False):
            # Operator-drained hosts are out of rotation by decree;
            # the monitor must not reintegrate them however clean they
            # look. ``undrain`` flips the bit back.
            return
        now = self.env.now
        cutoff = now - self.policy.window_us
        errors = state.error_times
        drop = 0
        for t in errors:
            if t < cutoff:
                drop += 1
            else:
                break
        if drop:
            del errors[:drop]
        bad = (
            state.host.crashed
            or len(errors) >= self.policy.error_threshold
        )
        if state.healthy:
            if bad:
                state.healthy = False
                state.last_bad_us = now
                self.drains += 1
                if self.on_drain is not None:
                    self.on_drain(state)
        else:
            if bad:
                state.last_bad_us = now
            elif now - state.last_bad_us >= self.policy.reintegrate_after_us:
                state.healthy = True
                self.reintegrations += 1
                if self.on_reintegrate is not None:
                    self.on_reintegrate(state)

    # -- reporting -----------------------------------------------------

    def summary(self) -> dict:
        """Point-in-time health snapshot, used as postmortem context
        by the flight recorder."""
        return {
            "drains": self.drains,
            "reintegrations": self.reintegrations,
            "checks": self.checks,
            "unhealthy": sorted(
                s.host.host_id for s in self.states if not s.healthy
            ),
        }
