"""Telemetry-driven host health.

The :class:`HealthMonitor` is the control loop that turns raw failure
signals (attempt errors, crash flags) into a per-host ``healthy`` bit
that placement consults. Draining is conservative and immediate —
:meth:`note_failure` re-evaluates the affected host at the instant of
the failure rather than waiting for the next periodic sweep — while
reintegration is deliberately slow: a host must look clean for a full
quiet period before traffic returns, so a flapping host cannot whip
the placement policy back and forth.

Host state is duck-typed (the cluster scheduler passes its internal
per-host records). Each state must expose::

    host          -> object with ``.crashed`` and ``.host_id``
    healthy       -> mutable bool (placement reads this)
    error_times   -> mutable list of failure timestamps (us, sorted)
    last_bad_us   -> mutable float, monitor-owned bookkeeping
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

from repro.faults.recovery import HealthPolicy
from repro.sim import Environment, Event, Interrupt


class HealthMonitor:
    """Periodic health sweeps plus instant drain on failure."""

    def __init__(
        self,
        env: Environment,
        policy: HealthPolicy,
        states: Sequence[Any],
        on_drain: Optional[Callable[[Any], None]] = None,
        on_reintegrate: Optional[Callable[[Any], None]] = None,
    ):
        self.env = env
        self.policy = policy
        self.states = list(states)
        self.on_drain = on_drain
        self.on_reintegrate = on_reintegrate
        self.drains = 0
        self.reintegrations = 0
        self.checks = 0
        self.fail_slow_drains = 0
        #: host_id -> [frozen baseline median | None, recent samples].
        self._restore_latency: dict = {}
        self._proc = None
        registry = getattr(env, "metrics", None)
        if registry is not None:
            prefix = registry.unique_prefix("health")
            registry.pull_counter(f"{prefix}.drains", lambda: self.drains)
            registry.pull_counter(
                f"{prefix}.reintegrations", lambda: self.reintegrations
            )
            registry.pull_counter(f"{prefix}.checks", lambda: self.checks)
            registry.gauge(
                f"{prefix}.unhealthy_hosts",
                lambda: sum(1 for s in self.states if not s.healthy),
            )

    # -- lifecycle -----------------------------------------------------

    def start(self):
        """Spawn the periodic sweep process (call :meth:`stop` when
        the workload drains, or the sweep keeps the run alive)."""
        if self._proc is not None:
            raise RuntimeError("HealthMonitor.start() called twice")
        self._proc = self.env.process(self._run(), name="health.monitor")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("health monitor stopped")

    def _run(self) -> Generator[Event, Any, None]:
        try:
            while True:
                yield self.env.timeout(self.policy.check_interval_us)
                self.check_now()
        except Interrupt:
            return

    # -- signals -------------------------------------------------------

    def note_failure(self, state: Any) -> None:
        """Record one attempt failure on ``state``'s host and
        re-evaluate it immediately (fast drain)."""
        state.error_times.append(self.env.now)
        self._evaluate(state)

    def note_restore_latency(self, state: Any, latency_us: float) -> None:
        """Feed one successful restore latency into the fail-slow
        outlier score (no-op unless ``policy.fail_slow_factor`` is
        set).

        A fail-slow host serves *correctly* at k× latency, so
        ``note_failure`` never fires for it. Instead each host's
        first ``fail_slow_min_samples`` latencies freeze a per-host
        baseline median (self-relative, so heterogeneous fleets and
        sharded execution both work), and the host drains when the
        median of its most recent samples exceeds
        ``fail_slow_factor ×`` that baseline. Reintegration reuses
        the ordinary quiet-period path."""
        factor = self.policy.fail_slow_factor
        if factor is None:
            return
        cell = self._restore_latency.setdefault(
            state.host.host_id, [None, []]
        )
        recent = cell[1]
        recent.append(latency_us)
        if len(recent) > self.policy.fail_slow_window:
            del recent[: -self.policy.fail_slow_window]
        if cell[0] is None:
            if len(recent) >= self.policy.fail_slow_min_samples:
                cell[0] = _median(recent)
            return
        if not state.healthy or getattr(state, "drained", False):
            return
        score = _median(recent[-self.policy.fail_slow_min_samples:])
        if score > factor * cell[0]:
            state.healthy = False
            state.last_bad_us = self.env.now
            self.drains += 1
            self.fail_slow_drains += 1
            if self.on_drain is not None:
                self.on_drain(state)

    def check_now(self) -> None:
        """One sweep over every host (the periodic path; also drives
        reintegration, which has no triggering event)."""
        self.checks += 1
        for state in self.states:
            self._evaluate(state)

    # -- evaluation ----------------------------------------------------

    def _evaluate(self, state: Any) -> None:
        if getattr(state, "drained", False):
            # Operator-drained hosts are out of rotation by decree;
            # the monitor must not reintegrate them however clean they
            # look. ``undrain`` flips the bit back.
            return
        now = self.env.now
        cutoff = now - self.policy.window_us
        errors = state.error_times
        drop = 0
        for t in errors:
            if t < cutoff:
                drop += 1
            else:
                break
        if drop:
            del errors[:drop]
        bad = (
            state.host.crashed
            or len(errors) >= self.policy.error_threshold
        )
        if state.healthy:
            if bad:
                state.healthy = False
                state.last_bad_us = now
                self.drains += 1
                if self.on_drain is not None:
                    self.on_drain(state)
        else:
            if bad:
                state.last_bad_us = now
            elif now - state.last_bad_us >= self.policy.reintegrate_after_us:
                state.healthy = True
                self.reintegrations += 1
                if self.on_reintegrate is not None:
                    self.on_reintegrate(state)

    # -- reporting -----------------------------------------------------

    def summary(self) -> dict:
        """Point-in-time health snapshot, used as postmortem context
        by the flight recorder."""
        return {
            "drains": self.drains,
            "reintegrations": self.reintegrations,
            "checks": self.checks,
            "fail_slow_drains": self.fail_slow_drains,
            "unhealthy": sorted(
                s.host.host_id for s in self.states if not s.healthy
            ),
        }


def _median(values) -> float:
    """Median with the usual even-count average — deterministic and
    dependency-free."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0
