"""Declarative fault schedules.

A :class:`FaultPlan` is data, not behaviour: an immutable description
of *what goes wrong and when*, expressed in virtual microseconds
relative to the epoch at which the injector is armed (the start of the
serving phase, so plans are independent of how long snapshot prep
took). :class:`~repro.faults.injector.FaultInjector` turns the plan
into simulation processes.

Keeping the plan declarative buys three things:

* **Determinism** — the same plan and seed replays the same failure
  timeline, so chaos reports are bit-reproducible and diffable.
* **Serialisability** — ``as_dict`` / ``from_dict`` round-trip through
  JSON, so a scenario can be stored next to the report it produced.
* **Composability** — scenario builders in :mod:`repro.faults.chaos`
  are just functions returning plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Device-fault scope selecting every host's primary device.
SCOPE_ALL = "*"
#: Device-fault scope selecting the shared storage tier (the cluster's
#: shared-EBS device, when one exists) — used to model network-tier
#: latency/error spikes between hosts and remote storage.
SCOPE_SHARED = "shared"


@dataclass(frozen=True)
class DeviceFault:
    """A degradation window on one or more block devices.

    ``scope`` is a host id (degrade that host's primary device),
    :data:`SCOPE_ALL` (every host's primary device) or
    :data:`SCOPE_SHARED` (the shared storage device). The window
    opens ``start_us`` after the injector's epoch and closes after
    ``duration_us`` (``None`` = never recovers). The factors have the
    semantics of :class:`~repro.storage.device.Degradation`:
    ``latency_factor`` scales access latency, ``bandwidth_factor``
    scales throughput (0.1 = collapse to a tenth), ``iops_factor``
    scales the IOPS cap, ``error_rate`` injects per-request I/O
    errors.
    """

    scope: str
    start_us: float
    duration_us: Optional[float] = None
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    iops_factor: float = 1.0
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError("start_us must be >= 0")
        if self.duration_us is not None and self.duration_us <= 0:
            raise ValueError("duration_us must be positive (or None)")
        if self.latency_factor <= 0 or self.bandwidth_factor <= 0:
            raise ValueError("degradation factors must be positive")
        if self.iops_factor <= 0:
            raise ValueError("iops_factor must be positive")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")


@dataclass(frozen=True)
class HostCrash:
    """A host power-fails ``at_us`` after the epoch.

    In-flight invocations on the host abort, its page cache and
    keep-alive VM pool are lost, and placement must route around it.
    With ``reboot_after_us`` set the crash is transient: the host
    comes back cold (empty page cache, empty pool) after that long.
    ``None`` means the host never returns.
    """

    host: str
    at_us: float
    reboot_after_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be >= 0")
        if self.reboot_after_us is not None and self.reboot_after_us <= 0:
            raise ValueError("reboot_after_us must be positive (or None)")


@dataclass(frozen=True)
class SnapshotCorruption:
    """One function's snapshot artefacts on one host go bad at
    ``at_us``. The corruption is *latent*: nothing happens until a
    restore validates the artefacts, fails, and falls back — at which
    point the artefacts are re-fetched/rebuilt (the corruption mark
    clears). This mirrors checksum-on-load designs where corruption
    is only observable at use."""

    host: str
    function: str
    at_us: float

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("at_us must be >= 0")


@dataclass(frozen=True)
class FailSlow:
    """A host serves correctly but at ``slowdown``× latency, with no
    error signal — the gray-failure mode health checks built on error
    counts cannot see. Starting ``start_us`` after the epoch the
    host's primary device runs ``slowdown`` times slower for
    ``duration_us`` (``None`` = never recovers). Detection is the
    restore-latency outlier score in
    :class:`~repro.faults.health.HealthMonitor` (enable it with
    ``HealthPolicy.fail_slow_factor``)."""

    host: str
    start_us: float
    slowdown: float = 4.0
    duration_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError("start_us must be >= 0")
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must be > 1")
        if self.duration_us is not None and self.duration_us <= 0:
            raise ValueError("duration_us must be positive (or None)")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of failures for one run."""

    device_faults: tuple = ()
    host_crashes: tuple = ()
    corruptions: tuple = ()
    fail_slows: tuple = ()

    def __post_init__(self) -> None:
        # Accept any iterable but store tuples so plans hash/compare
        # and cannot drift after the injector is armed.
        object.__setattr__(
            self, "device_faults", tuple(self.device_faults)
        )
        object.__setattr__(self, "host_crashes", tuple(self.host_crashes))
        object.__setattr__(self, "corruptions", tuple(self.corruptions))
        object.__setattr__(self, "fail_slows", tuple(self.fail_slows))

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @property
    def is_empty(self) -> bool:
        return not (
            self.device_faults
            or self.host_crashes
            or self.corruptions
            or self.fail_slows
        )

    def __len__(self) -> int:
        return (
            len(self.device_faults)
            + len(self.host_crashes)
            + len(self.corruptions)
            + len(self.fail_slows)
        )

    # -- serialisation -------------------------------------------------

    def as_dict(self) -> Dict[str, List[Dict[str, object]]]:
        """JSON-ready form, stable across runs (plans are ordered)."""
        return {
            "device_faults": [
                {
                    "scope": f.scope,
                    "start_us": f.start_us,
                    "duration_us": f.duration_us,
                    "latency_factor": f.latency_factor,
                    "bandwidth_factor": f.bandwidth_factor,
                    "iops_factor": f.iops_factor,
                    "error_rate": f.error_rate,
                }
                for f in self.device_faults
            ],
            "host_crashes": [
                {
                    "host": c.host,
                    "at_us": c.at_us,
                    "reboot_after_us": c.reboot_after_us,
                }
                for c in self.host_crashes
            ],
            "corruptions": [
                {
                    "host": c.host,
                    "function": c.function,
                    "at_us": c.at_us,
                }
                for c in self.corruptions
            ],
            "fail_slows": [
                {
                    "host": s.host,
                    "start_us": s.start_us,
                    "slowdown": s.slowdown,
                    "duration_us": s.duration_us,
                }
                for s in self.fail_slows
            ],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultPlan":
        return cls(
            device_faults=tuple(
                DeviceFault(**entry)
                for entry in doc.get("device_faults", ())
            ),
            host_crashes=tuple(
                HostCrash(**entry) for entry in doc.get("host_crashes", ())
            ),
            corruptions=tuple(
                SnapshotCorruption(**entry)
                for entry in doc.get("corruptions", ())
            ),
            # ``.get`` keeps pre-durability plan documents loadable.
            fail_slows=tuple(
                FailSlow(**entry) for entry in doc.get("fail_slows", ())
            ),
        )
