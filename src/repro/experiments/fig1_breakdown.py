"""Figure 1: time breakdown of function invocations (paper §3.2).

Five functions (hello-world, image, image-diff, read-list, mmap)
under Warm / Firecracker / Cached / REAP. The gray bars of the paper
are our setup times (VMM start, vmstate restore, and REAP's blocking
working-set load); the colored bars are the invocation times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import DIFF_CONTENT_ID, Cell, Grid
from repro.experiments.runner import CellSpec, measure_cells
from repro.metrics.report import render_table
from repro.workloads.base import INPUT_A, InputSpec

POLICIES = [Policy.WARM, Policy.FIRECRACKER, Policy.CACHED, Policy.REAP]
FUNCTIONS = ["hello-world", "image", "read-list", "mmap"]


@dataclass
class Fig1Result:
    grid: Grid


def run(
    config: Optional[PlatformConfig] = None,
    functions: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> Fig1Result:
    """Measure the Figure 1 matrix. ``image-diff`` is image invoked
    with different same-sized content than its record phase."""
    functions = list(functions or FUNCTIONS)
    specs: List[CellSpec] = []
    for name in functions:
        for policy in POLICIES:
            specs.append(CellSpec(name, policy, INPUT_A))
    renames = {}
    if "image" in functions:
        image_diff = InputSpec(content_id=DIFF_CONTENT_ID, size_ratio=1.0)
        for policy in POLICIES:
            renames[len(specs)] = "image-diff"
            specs.append(CellSpec("image", policy, image_diff))
    grid = Grid()
    for index, cell in enumerate(measure_cells(specs, config, jobs=jobs)):
        if index in renames:
            cell = Cell(
                function=renames[index],
                policy=cell.policy,
                test_input=cell.test_input,
                record_input=cell.record_input,
                result=cell.result,
            )
        grid.add(cell)
    return Fig1Result(grid=grid)


def format_table(result: Fig1Result) -> str:
    rows: List[list] = []
    functions = []
    for cell in result.grid.cells:
        if cell.function not in functions:
            functions.append(cell.function)
    for function in functions:
        for policy in POLICIES:
            cells = [
                c
                for c in result.grid.cells
                if c.function == function and c.policy is policy
            ]
            (cell,) = cells
            rows.append(
                [
                    function,
                    policy.value,
                    cell.setup_ms,
                    cell.invoke_ms,
                    cell.total_ms,
                ]
            )
    return render_table(
        ["function", "system", "setup_ms", "invoke_ms", "total_ms"],
        rows,
        title="Figure 1: time breakdown of function invocations",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
