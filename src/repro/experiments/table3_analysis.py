"""Table 3: performance analysis of ffmpeg and image (§6.4).

For REAP and FaaSnap on the A->B scenario: total time, working-set
fetch time and size, guest page-fault read size, and page-fault
waiting time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.runner import CellSpec, measure_cells
from repro.metrics.report import render_table
from repro.workloads.base import INPUT_A
from repro.workloads.registry import get_profile

FUNCTIONS = ("ffmpeg", "image")
POLICIES = (Policy.REAP, Policy.FAASNAP)


@dataclass
class Table3Row:
    system: Policy
    function: str
    total_ms: float
    fetch_ms: float
    fetch_mb: float
    guest_fault_mb: float
    fault_wait_ms: float


@dataclass
class Table3Result:
    rows: List[Table3Row]

    def get(self, policy: Policy, function: str) -> Table3Row:
        for row in self.rows:
            if row.system is policy and row.function == function:
                return row
        raise KeyError((policy, function))


def run(
    config: Optional[PlatformConfig] = None,
    functions: Sequence[str] = FUNCTIONS,
    jobs: Optional[int] = None,
) -> Table3Result:
    specs = [
        CellSpec(
            name, policy, get_profile(name).input_b(), record_input=INPUT_A
        )
        for name in functions
        for policy in POLICIES
    ]
    rows: List[Table3Row] = []
    for spec, cell in zip(specs, measure_cells(specs, config, jobs=jobs)):
        result = cell.result
        rows.append(
            Table3Row(
                system=spec.policy,
                function=spec.function,
                total_ms=result.total_ms,
                fetch_ms=result.fetch_time_us / 1000.0,
                fetch_mb=result.fetch_bytes / 1e6,
                guest_fault_mb=result.guest_fault_bytes / 1e6,
                fault_wait_ms=result.fault_time_us / 1000.0,
            )
        )
    return Table3Result(rows=rows)


def format_table(result: Table3Result) -> str:
    return render_table(
        [
            "system, function",
            "total_ms",
            "fetch_ms",
            "fetch_MB",
            "guest_fault_MB",
            "fault_wait_ms",
        ],
        [
            [
                f"{row.system.value}, {row.function}",
                row.total_ms,
                row.fetch_ms,
                row.fetch_mb,
                row.guest_fault_mb,
                row.fault_wait_ms,
            ]
            for row in result.rows
        ],
        title="Table 3: performance analysis (record A, test B)",
    )


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
