"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.daemon import FaaSnapPlatform, FunctionHandle
from repro.core.policies import Policy
from repro.core.restore import InvocationResult, PlatformConfig
from repro.workloads.base import INPUT_A, InputSpec
from repro.workloads.registry import get_profile

#: Test-phase content id used when "the same size but different
#: contents" is required (the record phase uses content 1).
DIFF_CONTENT_ID = 9


@dataclass
class Cell:
    """One measured cell of a figure: a (function, policy, input)
    combination with its invocation result."""

    function: str
    policy: Policy
    test_input: InputSpec
    record_input: InputSpec
    result: InvocationResult

    @property
    def total_ms(self) -> float:
        return self.result.total_ms

    @property
    def setup_ms(self) -> float:
        return self.result.setup_us / 1000.0

    @property
    def invoke_ms(self) -> float:
        return self.result.invoke_us / 1000.0


@dataclass
class Grid:
    """A collection of cells with lookup helpers.

    ``get`` is indexed by (function, policy) — figures with hundreds
    of cells (the sensitivity sweeps) look cells up per rendered
    point, which was quadratic with a linear scan.
    """

    cells: List[Cell] = field(default_factory=list)
    _index: Dict[Tuple[str, Policy], List[Cell]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def add(self, cell: Cell) -> None:
        self.cells.append(cell)
        self._index.setdefault((cell.function, cell.policy), []).append(cell)

    def get(
        self, function: str, policy: Policy, **matchers
    ) -> Cell:
        bucket = self._index.get((function, policy), [])
        matches = [
            c
            for c in bucket
            if all(
                getattr(c.test_input, key) == value
                for key, value in matchers.items()
            )
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} cells match ({function}, {policy.value}, "
                f"{matchers})"
            )
        return matches[0]

    def totals_ms(self, policy: Policy) -> Dict[str, float]:
        return {
            c.function: c.total_ms for c in self.cells if c.policy is policy
        }


def fresh_platform(
    config: Optional[PlatformConfig] = None,
    remote_storage: bool = False,
    functions: Tuple[str, ...] = (),
) -> Tuple[FaaSnapPlatform, Dict[str, FunctionHandle]]:
    """A platform with the named Table 2 functions registered."""
    platform = FaaSnapPlatform(config=config, remote_storage=remote_storage)
    handles = {
        name: platform.register_function(get_profile(name))
        for name in functions
    }
    return platform, handles


def measure(
    platform: FaaSnapPlatform,
    handle: FunctionHandle,
    policy: Policy,
    test_input: InputSpec,
    record_input: InputSpec = INPUT_A,
) -> Cell:
    """One measured invocation as a grid cell."""
    result = platform.invoke(
        handle, test_input, policy, record_input=record_input
    )
    return Cell(
        function=handle.name,
        policy=policy,
        test_input=test_input,
        record_input=record_input,
        result=result,
    )
