"""Figure 7: execution time of the three synthetic functions (§6.2).

hello-world, read-list and mmap use the same input in the record and
test phases, so they are reported separately from Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import MAIN_POLICIES
from repro.core.restore import PlatformConfig
from repro.experiments.common import Grid
from repro.experiments.runner import CellSpec, measure_cells
from repro.metrics.report import render_table
from repro.workloads.base import INPUT_A
from repro.workloads.registry import SYNTHETIC_FUNCTIONS


@dataclass
class Fig7Result:
    grid: Grid


def run(
    config: Optional[PlatformConfig] = None,
    functions: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> Fig7Result:
    functions = tuple(functions or SYNTHETIC_FUNCTIONS)
    specs = [
        CellSpec(name, policy, INPUT_A)
        for name in functions
        for policy in MAIN_POLICIES
    ]
    grid = Grid()
    for cell in measure_cells(specs, config, jobs=jobs):
        grid.add(cell)
    return Fig7Result(grid=grid)


def format_table(result: Fig7Result) -> str:
    functions: List[str] = []
    for cell in result.grid.cells:
        if cell.function not in functions:
            functions.append(cell.function)
    rows = []
    for function in functions:
        row: List[object] = [function]
        for policy in MAIN_POLICIES:
            cell = result.grid.get(function, policy)
            row.append(cell.total_ms)
        rows.append(row)
    return render_table(
        ["function"] + [p.value + "_ms" for p in MAIN_POLICIES],
        rows,
        title="Figure 7: synthetic functions, total execution time",
    )


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
