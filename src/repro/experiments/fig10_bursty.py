"""Figure 10: performance with bursty workloads (§6.6).

1..64 simultaneous invocations of hello-world and json, restoring
either the same snapshot (one bursty application) or different
snapshots (many applications), under Firecracker / REAP / FaaSnap.
Host CPU slots are modelled so the 64-way burst saturates the CPU as
in the paper.

Per the artifact appendix (E3 runs ``test-2inputs.json``), the record
phase uses input A and the burst invocations use input B — which is
why the paper notes REAP suffers for json, "whose working set has
more variance".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import fresh_platform
from repro.experiments.runner import parallel_map
from repro.metrics.report import render_table
from repro.metrics.stats import mean, stddev
from repro.workloads.base import INPUT_A
from repro.workloads.registry import get_profile

POLICIES = (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP)
DEFAULT_PARALLELISMS = (1, 4, 16, 64)
DEFAULT_FUNCTIONS = ("hello-world", "json")

BurstKey = Tuple[str, str, Policy, int]  # function, mode, policy, parallelism


@dataclass
class BurstPoint:
    mean_ms: float
    std_ms: float
    max_ms: float


@dataclass
class Fig10Result:
    points: Dict[BurstKey, BurstPoint] = field(default_factory=dict)
    parallelisms: Tuple[int, ...] = DEFAULT_PARALLELISMS
    functions: Tuple[str, ...] = DEFAULT_FUNCTIONS


def _run_curve(
    payload: Tuple[PlatformConfig, str, str, Tuple[int, ...]],
) -> Dict[BurstKey, BurstPoint]:
    """One (mode, function) curve on its own platform (pool worker).

    A fresh platform per curve keeps snapshot files and cache state
    independent across curves — which is also what makes the curves
    safe to fan out.
    """
    config, name, mode, parallelisms = payload
    platform, handles = fresh_platform(config, functions=(name,))
    clones = (
        platform.make_clones(handles[name], max(parallelisms))
        if mode == "diff"
        else None
    )
    test_input = get_profile(name).input_b()
    points: Dict[BurstKey, BurstPoint] = {}
    for policy in POLICIES:
        for parallelism in parallelisms:
            results = platform.invoke_burst(
                handles[name],
                test_input,
                policy,
                parallelism=parallelism,
                same_snapshot=(mode == "same"),
                record_input=INPUT_A,
                clones=clones,
            )
            totals = [r.total_ms for r in results]
            points[(name, mode, policy, parallelism)] = BurstPoint(
                mean_ms=mean(totals),
                std_ms=stddev(totals),
                max_ms=max(totals),
            )
    return points


def run(
    config: Optional[PlatformConfig] = None,
    functions: Sequence[str] = DEFAULT_FUNCTIONS,
    parallelisms: Sequence[int] = DEFAULT_PARALLELISMS,
    jobs: Optional[int] = None,
) -> Fig10Result:
    if config is None:
        config = PlatformConfig()
    if config.cpu_slots is None:
        config = dataclasses.replace(config, cpu_slots=config.host.cpu_slots)
    result = Fig10Result(
        parallelisms=tuple(parallelisms), functions=tuple(functions)
    )
    payloads = [
        (config, name, mode, tuple(parallelisms))
        for mode in ("same", "diff")
        for name in functions
    ]
    for points in parallel_map(_run_curve, payloads, jobs):
        result.points.update(points)
    return result


def format_table(result: Fig10Result) -> str:
    blocks: List[str] = []
    for mode in ("same", "diff"):
        for name in result.functions:
            rows = []
            for policy in POLICIES:
                row: List[object] = [policy.value]
                for parallelism in result.parallelisms:
                    point = result.points.get((name, mode, policy, parallelism))
                    row.append(point.mean_ms if point else float("nan"))
                rows.append(row)
            blocks.append(
                render_table(
                    ["system"]
                    + [f"p={p}_ms" for p in result.parallelisms],
                    rows,
                    title=(
                        f"Figure 10: {name}, "
                        f"{'same snapshot' if mode == 'same' else 'different snapshots'}"
                        " (mean total ms)"
                    ),
                )
            )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
