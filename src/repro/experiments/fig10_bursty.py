"""Figure 10: performance with bursty workloads (§6.6).

1..64 simultaneous invocations of hello-world and json, restoring
either the same snapshot (one bursty application) or different
snapshots (many applications), under Firecracker / REAP / FaaSnap.
Host CPU slots are modelled so the 64-way burst saturates the CPU as
in the paper.

Per the artifact appendix (E3 runs ``test-2inputs.json``), the record
phase uses input A and the burst invocations use input B — which is
why the paper notes REAP suffers for json, "whose working set has
more variance".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import fresh_platform
from repro.experiments.runner import parallel_map
from repro.metrics.report import render_table
from repro.metrics.stats import mean, stddev
from repro.workloads.base import INPUT_A
from repro.workloads.registry import get_profile

POLICIES = (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP)
DEFAULT_PARALLELISMS = (1, 4, 16, 64)
DEFAULT_FUNCTIONS = ("hello-world", "json")

BurstKey = Tuple[str, str, Policy, int]  # function, mode, policy, parallelism


@dataclass
class BurstPoint:
    mean_ms: float
    std_ms: float
    max_ms: float


@dataclass
class Fig10Result:
    points: Dict[BurstKey, BurstPoint] = field(default_factory=dict)
    parallelisms: Tuple[int, ...] = DEFAULT_PARALLELISMS
    functions: Tuple[str, ...] = DEFAULT_FUNCTIONS


def _run_curve(
    payload: Tuple[PlatformConfig, str, str, Tuple[int, ...]],
) -> Dict[BurstKey, BurstPoint]:
    """One (mode, function) curve on its own platform (pool worker).

    A fresh platform per curve keeps snapshot files and cache state
    independent across curves — which is also what makes the curves
    safe to fan out.
    """
    config, name, mode, parallelisms = payload
    platform, handles = fresh_platform(config, functions=(name,))
    clones = (
        platform.make_clones(handles[name], max(parallelisms))
        if mode == "diff"
        else None
    )
    test_input = get_profile(name).input_b()
    points: Dict[BurstKey, BurstPoint] = {}
    for policy in POLICIES:
        for parallelism in parallelisms:
            results = platform.invoke_burst(
                handles[name],
                test_input,
                policy,
                parallelism=parallelism,
                same_snapshot=(mode == "same"),
                record_input=INPUT_A,
                clones=clones,
            )
            totals = [r.total_ms for r in results]
            points[(name, mode, policy, parallelism)] = BurstPoint(
                mean_ms=mean(totals),
                std_ms=stddev(totals),
                max_ms=max(totals),
            )
    return points


def run(
    config: Optional[PlatformConfig] = None,
    functions: Sequence[str] = DEFAULT_FUNCTIONS,
    parallelisms: Sequence[int] = DEFAULT_PARALLELISMS,
    jobs: Optional[int] = None,
) -> Fig10Result:
    if config is None:
        config = PlatformConfig()
    if config.cpu_slots is None:
        config = dataclasses.replace(config, cpu_slots=config.host.cpu_slots)
    result = Fig10Result(
        parallelisms=tuple(parallelisms), functions=tuple(functions)
    )
    payloads = [
        (config, name, mode, tuple(parallelisms))
        for mode in ("same", "diff")
        for name in functions
    ]
    for points in parallel_map(_run_curve, payloads, jobs):
        result.points.update(points)
    return result


def format_table(result: Fig10Result) -> str:
    blocks: List[str] = []
    for mode in ("same", "diff"):
        for name in result.functions:
            rows = []
            for policy in POLICIES:
                row: List[object] = [policy.value]
                for parallelism in result.parallelisms:
                    point = result.points.get((name, mode, policy, parallelism))
                    row.append(point.mean_ms if point else float("nan"))
                rows.append(row)
            blocks.append(
                render_table(
                    ["system"]
                    + [f"p={p}_ms" for p in result.parallelisms],
                    rows,
                    title=(
                        f"Figure 10: {name}, "
                        f"{'same snapshot' if mode == 'same' else 'different snapshots'}"
                        " (mean total ms)"
                    ),
                )
            )
    return "\n\n".join(blocks)


#: Contention-aware mode: how many distinct functions burst at once,
#: and across how many hosts.
DEFAULT_CLUSTER_PARALLELISMS = (1, 4, 8, 16)
DEFAULT_CLUSTER_HOSTS = (1, 4)
DEFAULT_CLUSTER_FUNCTIONS = ("json",)

ClusterKey = Tuple[str, int, int]  # function, hosts, parallelism


@dataclass
class ClusterPoint:
    mean_ms: float
    max_ms: float


@dataclass
class Fig10ClusterResult:
    points: Dict[ClusterKey, ClusterPoint] = field(default_factory=dict)
    parallelisms: Tuple[int, ...] = DEFAULT_CLUSTER_PARALLELISMS
    host_counts: Tuple[int, ...] = DEFAULT_CLUSTER_HOSTS
    functions: Tuple[str, ...] = DEFAULT_CLUSTER_FUNCTIONS


def _cluster_cell(payload: Tuple[str, int, int]) -> Tuple[ClusterKey, ClusterPoint]:
    """One (function, hosts, parallelism) burst on a fresh cluster
    (pool worker; fresh state keeps cells order-independent)."""
    from repro.cluster import ClusterConfig, ClusterSimulator
    from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

    name, hosts, parallelism = payload
    fleet = [
        FleetFunction(
            name=f"{name}@burst{i}",
            profile_name=name,
            mean_interarrival_us=1e6,
        )
        for i in range(parallelism)
    ]
    arrivals = sorted(
        (Arrival(time_us=0.0, function=f.name) for f in fleet),
        key=lambda a: (a.time_us, a.function),
    )
    trace = ArrivalTrace(arrivals=list(arrivals), duration_us=1.0)
    config = ClusterConfig(
        num_hosts=hosts,
        placement="least-loaded",
        restore_policy=Policy.FAASNAP,
        # Every burst VM restores; the burst measures restore
        # contention, not cold-boot frequency.
        assume_snapshots_exist=True,
    )
    report = ClusterSimulator(fleet, config).run(trace)
    latencies = [s.latency_us for s in report.served]
    point = ClusterPoint(
        mean_ms=mean(latencies) / 1000.0, max_ms=max(latencies) / 1000.0
    )
    return (name, hosts, parallelism), point


def run_cluster(
    functions: Sequence[str] = DEFAULT_CLUSTER_FUNCTIONS,
    parallelisms: Sequence[int] = DEFAULT_CLUSTER_PARALLELISMS,
    host_counts: Sequence[int] = DEFAULT_CLUSTER_HOSTS,
    jobs: Optional[int] = None,
) -> Fig10ClusterResult:
    """Figure 10's burst, but emergent: ``p`` different applications
    burst at once and each snapshot start runs the real page-level
    restore, so the slowdown at high parallelism is the hosts' device
    queues filling up — the effect the static cost table cannot show
    (its p=64 costs exactly what its p=1 costs)."""
    result = Fig10ClusterResult(
        parallelisms=tuple(parallelisms),
        host_counts=tuple(host_counts),
        functions=tuple(functions),
    )
    payloads = [
        (name, hosts, parallelism)
        for name in result.functions
        for hosts in result.host_counts
        for parallelism in result.parallelisms
    ]
    for key, point in parallel_map(_cluster_cell, payloads, jobs):
        result.points[key] = point
    return result


def format_cluster_table(result: Fig10ClusterResult) -> str:
    blocks: List[str] = []
    for name in result.functions:
        rows = []
        for hosts in result.host_counts:
            base = result.points[(name, hosts, result.parallelisms[0])]
            row: List[object] = [hosts]
            for parallelism in result.parallelisms:
                point = result.points[(name, hosts, parallelism)]
                row.append(point.mean_ms)
            row.append(
                result.points[
                    (name, hosts, result.parallelisms[-1])
                ].mean_ms
                / base.mean_ms
            )
            rows.append(row)
        blocks.append(
            render_table(
                ["hosts"]
                + [f"p={p}_ms" for p in result.parallelisms]
                + [f"slowdown@p={result.parallelisms[-1]}"],
                rows,
                title=(
                    f"Figure 10 (cluster mode): {name}, {result.parallelisms[-1]}"
                    " different applications bursting, page-level restores"
                    " (mean latency)"
                ),
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
