"""Machine-checkable versions of the paper's major claims.

The artifact appendix (A.4.1) names four claims; each function here
evaluates one against regenerated experiment results and returns a
:class:`ClaimResult` with the supporting numbers. ``check_all`` runs
everything (optionally with reduced sweeps) — the programmatic
equivalent of re-doing the paper's artifact evaluation.

* **C1** — FaaSnap averages ~2x better than Firecracker and ~1.4x
  better than REAP end to end (E1: Figures 6 and 7).
* **C2** — FaaSnap stays ahead when input sizes vary greatly, where
  REAP degrades (E2: Figure 8).
* **C3** — FaaSnap handles bursty workloads well (E3: Figure 10).
* **C4** — FaaSnap outperforms Firecracker and REAP on remote
  storage (E4: Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policies import Policy
from repro.experiments import (
    fig6_execution,
    fig8_sensitivity,
    fig10_bursty,
    fig11_remote,
)


@dataclass
class ClaimResult:
    claim_id: str
    description: str
    passed: bool
    details: Dict[str, float]

    def __str__(self) -> str:  # pragma: no cover - display helper
        status = "PASS" if self.passed else "FAIL"
        numbers = ", ".join(f"{k}={v:.2f}" for k, v in self.details.items())
        return f"[{status}] {self.claim_id}: {self.description} ({numbers})"


def check_c1(result: Optional[fig6_execution.Fig6Result] = None) -> ClaimResult:
    """C1: FaaSnap beats Firecracker and REAP on average (E1)."""
    result = result or fig6_execution.run()
    fc = result.speedup("A->B", Policy.FIRECRACKER)
    reap = result.speedup("A->B", Policy.REAP)
    cached = result.speedup("A->B", Policy.CACHED)
    passed = fc > 1.25 and reap > 1.1 and cached > 0.7
    return ClaimResult(
        claim_id="C1",
        description=(
            "FaaSnap achieves ~2x better performance than Firecracker "
            "and ~1.4x than REAP (paper 6.2)"
        ),
        passed=passed,
        details={
            "speedup_vs_firecracker": fc,
            "speedup_vs_reap": reap,
            "vs_cached": cached,
        },
    )


def check_c2(
    result: Optional[fig8_sensitivity.Fig8Result] = None,
) -> ClaimResult:
    """C2: FaaSnap wins when input sizes vary greatly (E2)."""
    result = result or fig8_sensitivity.run()
    functions = sorted({c.function for c in result.grid.cells})
    reap_worse = 0
    always_ahead = True
    for function in functions:
        if result.degradation(function, Policy.REAP) > 0.95 * (
            result.degradation(function, Policy.FAASNAP)
        ):
            reap_worse += 1
        top = max(result.ratios)
        ours = result.grid.get(function, Policy.FAASNAP, size_ratio=top)
        fc = result.grid.get(function, Policy.FIRECRACKER, size_ratio=top)
        if ours.total_ms >= fc.total_ms:
            always_ahead = False
    passed = always_ahead and reap_worse >= 0.8 * len(functions)
    return ClaimResult(
        claim_id="C2",
        description=(
            "FaaSnap beats Firecracker and REAP under varying input "
            "sizes; REAP's curve climbs more steeply (paper 6.3)"
        ),
        passed=passed,
        details={
            "functions_checked": float(len(functions)),
            "functions_where_reap_degrades_more": float(reap_worse),
        },
    )


def check_c3(
    result: Optional[fig10_bursty.Fig10Result] = None,
) -> ClaimResult:
    """C3: FaaSnap handles bursty workloads well (E3)."""
    result = result or fig10_bursty.run()
    wins = total = 0
    for name in result.functions:
        for mode in ("same", "diff"):
            for parallelism in result.parallelisms:
                faasnap = result.points[
                    (name, mode, Policy.FAASNAP, parallelism)
                ].mean_ms
                reap = result.points[
                    (name, mode, Policy.REAP, parallelism)
                ].mean_ms
                fc = result.points[
                    (name, mode, Policy.FIRECRACKER, parallelism)
                ].mean_ms
                total += 1
                if mode == "diff" and parallelism >= 64:
                    # Byte-bound disk saturation point; see
                    # EXPERIMENTS.md deviations.
                    if faasnap <= reap * 1.25:
                        wins += 1
                elif faasnap <= reap * 1.05 and faasnap < fc:
                    wins += 1
    passed = wins == total
    return ClaimResult(
        claim_id="C3",
        description="FaaSnap handles bursty workloads well (paper 6.6)",
        passed=passed,
        details={"points_checked": float(total), "points_won": float(wins)},
    )


def check_c4(
    result: Optional[fig11_remote.Fig11Result] = None,
) -> ClaimResult:
    """C4: FaaSnap wins on remote snapshot storage (E4)."""
    result = result or fig11_remote.run()
    fc = result.speedup_over(Policy.FIRECRACKER)
    reap = result.speedup_over(Policy.REAP)
    passed = fc > 1.3 and reap > 1.0
    return ClaimResult(
        claim_id="C4",
        description=(
            "FaaSnap achieves better performance than Firecracker and "
            "REAP when using remote snapshots (paper 6.7)"
        ),
        passed=passed,
        details={
            "speedup_vs_firecracker": fc,
            "speedup_vs_reap": reap,
        },
    )


#: Reduced sweeps used when ``quick`` validation is requested.
_QUICK = {
    "fig6": {"functions": ["json", "image", "chameleon"]},
    "fig8": {"functions": ["json", "image"], "ratios": (0.5, 1.0, 4.0)},
    "fig10": {"functions": ("hello-world",), "parallelisms": (1, 4, 16)},
    "fig11": {"functions": ["hello-world", "json", "image"]},
}


def check_all(quick: bool = True) -> List[ClaimResult]:
    """Evaluate C1-C4; ``quick`` shrinks the underlying sweeps."""
    kwargs = _QUICK if quick else {}
    return [
        check_c1(fig6_execution.run(**kwargs.get("fig6", {}))),
        check_c2(fig8_sensitivity.run(**kwargs.get("fig8", {}))),
        check_c3(fig10_bursty.run(**kwargs.get("fig10", {}))),
        check_c4(fig11_remote.run(**kwargs.get("fig11", {}))),
    ]
