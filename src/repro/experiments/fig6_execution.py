"""Figure 6: execution time of the benchmark functions (paper §6.2).

Nine variable-input functions under Firecracker / REAP / FaaSnap /
Cached, in both directions: record with input A and test with input B
(left subfigure), and record with B, test with A (right subfigure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.policies import MAIN_POLICIES, Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import Grid
from repro.experiments.runner import CellSpec, measure_cells
from repro.metrics.report import render_table
from repro.metrics.stats import geometric_mean
from repro.workloads.base import INPUT_A
from repro.workloads.registry import VARIABLE_INPUT_FUNCTIONS, get_profile


@dataclass
class Fig6Result:
    #: direction "A->B" and "B->A" grids.
    grids: Dict[str, Grid]

    def speedup(
        self, direction: str, over: Policy, of: Policy = Policy.FAASNAP
    ) -> float:
        """Geometric-mean speedup of ``of`` over ``over``."""
        grid = self.grids[direction]
        base = grid.totals_ms(over)
        ours = grid.totals_ms(of)
        return geometric_mean(
            [base[fn] / ours[fn] for fn in ours]
        )


def run(
    config: Optional[PlatformConfig] = None,
    functions: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> Fig6Result:
    functions = tuple(functions or VARIABLE_INPUT_FUNCTIONS)
    specs: List[CellSpec] = []
    for name in functions:
        input_b = get_profile(name).input_b()
        for policy in MAIN_POLICIES:
            specs.append(
                CellSpec(name, policy, input_b, record_input=INPUT_A)
            )
            specs.append(
                CellSpec(name, policy, INPUT_A, record_input=input_b)
            )
    cells = measure_cells(specs, config, jobs=jobs)
    grids = {"A->B": Grid(), "B->A": Grid()}
    for spec, cell in zip(specs, cells):
        direction = "A->B" if spec.record_input == INPUT_A else "B->A"
        grids[direction].add(cell)
    return Fig6Result(grids=grids)


def format_table(result: Fig6Result) -> str:
    blocks: List[str] = []
    for direction, grid in result.grids.items():
        functions: List[str] = []
        for cell in grid.cells:
            if cell.function not in functions:
                functions.append(cell.function)
        rows = []
        for function in functions:
            row: List[object] = [function]
            for policy in MAIN_POLICIES:
                row.append(
                    grid.totals_ms(policy)[function]
                )
            rows.append(row)
        blocks.append(
            render_table(
                ["function"] + [p.value + "_ms" for p in MAIN_POLICIES],
                rows,
                title=f"Figure 6 ({direction}): end-to-end execution time",
            )
        )
        blocks.append(
            "geomean speedup of faasnap: "
            f"{result.speedup(direction, Policy.FIRECRACKER):.2f}x over "
            "firecracker, "
            f"{result.speedup(direction, Policy.REAP):.2f}x over reap, "
            f"{result.speedup(direction, Policy.CACHED):.2f}x vs cached"
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
