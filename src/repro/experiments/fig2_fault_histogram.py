"""Figure 2: distribution of page-fault handling times (paper §3.3).

The image-diff invocation under the four systems, with fault times
bucketed on the paper's log-scale x axis (0.5 us .. 512 us). Also
reports the per-system fault count, average and total handling time,
matching the numbers quoted in §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import DIFF_CONTENT_ID
from repro.experiments.runner import CellSpec, measure_cells
from repro.host.fault import FaultKind
from repro.metrics.report import render_table
from repro.metrics.stats import Histogram, fault_time_histogram, mean
from repro.workloads.base import InputSpec

POLICIES = [Policy.WARM, Policy.FIRECRACKER, Policy.CACHED, Policy.REAP]


@dataclass
class SystemFaults:
    policy: Policy
    histogram: Histogram
    count: int
    mean_us: float
    total_ms: float


@dataclass
class Fig2Result:
    systems: Dict[Policy, SystemFaults]


def run(
    config: Optional[PlatformConfig] = None,
    jitter: float = 0.6,
    jobs: Optional[int] = None,
) -> Fig2Result:
    """Measure the Figure 2 distributions.

    ``jitter`` enables deterministic per-fault service-time spread so
    the histogram occupies neighbouring buckets the way the paper's
    bpftrace measurements do; set 0 for the exact calibrated costs.
    """
    import dataclasses

    config = config or PlatformConfig()
    if jitter > 0:
        config = dataclasses.replace(
            config,
            host=config.host.with_overrides(fault_jitter_fraction=jitter),
        )
    image_diff = InputSpec(content_id=DIFF_CONTENT_ID, size_ratio=1.0)
    specs = [CellSpec("image", policy, image_diff) for policy in POLICIES]
    cells = measure_cells(specs, config, jobs=jobs)
    systems: Dict[Policy, SystemFaults] = {}
    for policy, cell in zip(POLICIES, cells):
        durations = [
            r.duration_us
            for r in cell.result.fault_records
            if r.kind is not FaultKind.NONE
        ]
        systems[policy] = SystemFaults(
            policy=policy,
            histogram=fault_time_histogram(durations),
            count=len(durations),
            mean_us=mean(durations),
            total_ms=sum(durations) / 1000.0,
        )
    return Fig2Result(systems=systems)


def format_table(result: Fig2Result) -> str:
    sample = next(iter(result.systems.values()))
    bucket_labels = [label for label, _ in sample.histogram.buckets()]
    rows: List[list] = []
    for policy in POLICIES:
        system = result.systems[policy]
        rows.append(
            [policy.value]
            + [count for _, count in system.histogram.buckets()]
        )
    histogram_table = render_table(
        ["system"] + bucket_labels,
        rows,
        title="Figure 2: page-fault handling time distribution (us buckets), image-diff",
    )
    summary_rows = [
        [
            policy.value,
            result.systems[policy].count,
            result.systems[policy].mean_us,
            result.systems[policy].total_ms,
        ]
        for policy in POLICIES
    ]
    summary_table = render_table(
        ["system", "faults", "mean_us", "total_ms"],
        summary_rows,
        title="Summary (paper quotes: warm 2.5us avg/12ms total; cached 3.7/35; firecracker 13.3/120; reap 6.7/56)",
    )
    return histogram_table + "\n\n" + summary_table


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
