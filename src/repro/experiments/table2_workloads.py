"""Table 2: the evaluation functions and their working sets.

Regenerates the paper's Table 2 from the workload models: for every
function, the measured working-set size under input A and input B,
next to the paper's reported values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.runner import parallel_map
from repro.metrics.report import render_table
from repro.workloads.base import INPUT_A, generate_trace
from repro.workloads.registry import BENCHMARK_FUNCTIONS, get_profile


@dataclass
class Table2Row:
    function: str
    description: str
    ws_a_mb: float
    ws_b_mb: float
    paper_ws_a_mb: float
    paper_ws_b_mb: float


@dataclass
class Table2Result:
    rows: List[Table2Row]


def _row_for(name: str) -> Table2Row:
    profile = get_profile(name)
    trace_a = generate_trace(profile, INPUT_A)
    trace_b = generate_trace(profile, profile.input_b())
    return Table2Row(
        function=name,
        description=profile.description,
        ws_a_mb=trace_a.working_set_mb,
        ws_b_mb=trace_b.working_set_mb,
        paper_ws_a_mb=profile.ws_a_mb,
        paper_ws_b_mb=profile.ws_b_mb,
    )


def run(
    functions: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> Table2Result:
    names = list(functions or BENCHMARK_FUNCTIONS)
    return Table2Result(rows=parallel_map(_row_for, names, jobs))


def format_table(result: Table2Result) -> str:
    return render_table(
        ["function", "WS A (MB)", "paper A", "WS B (MB)", "paper B"],
        [
            [r.function, r.ws_a_mb, r.paper_ws_a_mb, r.ws_b_mb, r.paper_ws_b_mb]
            for r in result.rows
        ],
        title="Table 2: working sets, measured vs paper",
    )


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
