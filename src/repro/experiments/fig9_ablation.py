"""Figure 9: optimization steps and their effects (§6.5).

Starting from stock Firecracker, add concurrent paging, then the
per-region mapping bundle (working-set groups + host page recording +
per-region mapping), then the full FaaSnap loading-set file. For the
image benchmark, report invocation time, major-fault count, total
page-fault handling time, and the number of block read requests
issued by VM page faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policies import ABLATION_POLICIES, Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import DIFF_CONTENT_ID
from repro.experiments.runner import CellSpec, measure_cells
from repro.metrics.report import render_table
from repro.workloads.base import INPUT_A, InputSpec

FUNCTION = "image"

STEP_LABELS = {
    Policy.FIRECRACKER: "firecracker",
    Policy.FAASNAP_CONCURRENT: "con-paging",
    Policy.FAASNAP_PER_REGION: "per-region",
    Policy.FAASNAP: "faasnap",
}


@dataclass
class AblationStep:
    policy: Policy
    invoke_ms: float
    major_faults: int
    fault_time_ms: float
    block_requests: int


@dataclass
class Fig9Result:
    steps: Dict[Policy, AblationStep]


def run(
    config: Optional[PlatformConfig] = None,
    function: str = FUNCTION,
    jobs: Optional[int] = None,
) -> Fig9Result:
    test_input = InputSpec(content_id=DIFF_CONTENT_ID, size_ratio=1.0)
    specs = [
        CellSpec(function, policy, test_input, record_input=INPUT_A)
        for policy in ABLATION_POLICIES
    ]
    cells = measure_cells(specs, config, jobs=jobs)
    steps: Dict[Policy, AblationStep] = {}
    for policy, cell in zip(ABLATION_POLICIES, cells):
        result = cell.result
        steps[policy] = AblationStep(
            policy=policy,
            invoke_ms=cell.invoke_ms,
            major_faults=result.major_faults,
            fault_time_ms=result.fault_time_us / 1000.0,
            block_requests=result.fault_block_requests,
        )
    return Fig9Result(steps=steps)


def format_table(result: Fig9Result) -> str:
    rows: List[list] = []
    for policy in ABLATION_POLICIES:
        step = result.steps[policy]
        rows.append(
            [
                STEP_LABELS[policy],
                step.invoke_ms,
                step.major_faults,
                step.fault_time_ms,
                step.block_requests,
            ]
        )
    return render_table(
        [
            "step",
            "invoke_ms",
            "major_faults",
            "fault_time_ms",
            "block_requests",
        ],
        rows,
        title="Figure 9: optimization steps and their effects (image)",
    )


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
