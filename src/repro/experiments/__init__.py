"""One module per table/figure of the paper's evaluation.

Each module exposes ``run(...)`` returning a result object with raw
rows, and ``format_table(result)`` rendering the same rows the paper
reports. The benchmark harness under ``benchmarks/`` wraps these, and
``examples/paper_figures.py`` drives them from the command line.

Experiment index (see DESIGN.md for the full mapping):

========  ==========================================================
fig1      Setup/invocation time breakdown, 5 functions x 4 systems
fig2      Page-fault handling-time histogram for image-diff
table2    Working-set sizes of all 13 Table 2 functions
fig6      Execution time, 9 functions, inputs A->B and B->A
fig7      Execution time of the 3 synthetic functions
fig8      Input-size sensitivity sweep (ratios 1/4..4)
table3    ffmpeg/image performance analysis, REAP vs FaaSnap
fig9      Optimization-step ablation on image
fig10     Bursty workloads (1..64 parallel, same/diff snapshots)
fig11     All functions on remote (EBS) storage
========  ==========================================================
"""

from repro.experiments import (  # noqa: F401
    fig1_breakdown,
    fig2_fault_histogram,
    fig6_execution,
    fig7_synthetic,
    fig8_sensitivity,
    fig9_ablation,
    fig10_bursty,
    fig11_remote,
    table2_workloads,
    table3_analysis,
)

ALL_EXPERIMENTS = {
    "fig1": fig1_breakdown,
    "fig2": fig2_fault_histogram,
    "table2": table2_workloads,
    "fig6": fig6_execution,
    "fig7": fig7_synthetic,
    "fig8": fig8_sensitivity,
    "table3": table3_analysis,
    "fig9": fig9_ablation,
    "fig10": fig10_bursty,
    "fig11": fig11_remote,
}
