"""Figure 8: execution time under varying input-size ratios (§6.3).

Record with input A; test with inputs whose effective size is 1/4x to
4x of A (and whose contents are entirely different). REAP's execution
time should climb steeply for ratios above 1 while FaaSnap tracks
Cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.policies import MAIN_POLICIES, Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import DIFF_CONTENT_ID, Grid
from repro.experiments.runner import CellSpec, measure_cells
from repro.metrics.report import render_table
from repro.workloads.base import INPUT_A, InputSpec
from repro.workloads.registry import VARIABLE_INPUT_FUNCTIONS

#: The paper's x axis.
DEFAULT_RATIOS = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass
class Fig8Result:
    grid: Grid
    ratios: Tuple[float, ...]

    def series(self, function: str, policy: Policy) -> List[float]:
        """Execution time (ms) by ratio for one curve of the figure."""
        return [
            self.grid.get(function, policy, size_ratio=ratio).total_ms
            for ratio in self.ratios
        ]

    def degradation(self, function: str, policy: Policy) -> float:
        """total(4x) / total(1x): how steeply the curve climbs."""
        series = dict(zip(self.ratios, self.series(function, policy)))
        return series[max(self.ratios)] / series[1.0]


def run(
    config: Optional[PlatformConfig] = None,
    functions: Optional[Sequence[str]] = None,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    jobs: Optional[int] = None,
) -> Fig8Result:
    functions = tuple(functions or VARIABLE_INPUT_FUNCTIONS)
    specs = [
        CellSpec(
            name,
            policy,
            InputSpec(content_id=DIFF_CONTENT_ID, size_ratio=ratio),
            record_input=INPUT_A,
        )
        for name in functions
        for ratio in ratios
        for policy in MAIN_POLICIES
    ]
    grid = Grid()
    for cell in measure_cells(specs, config, jobs=jobs):
        grid.add(cell)
    return Fig8Result(grid=grid, ratios=tuple(ratios))


def format_table(result: Fig8Result) -> str:
    functions: List[str] = []
    for cell in result.grid.cells:
        if cell.function not in functions:
            functions.append(cell.function)
    blocks = []
    for function in functions:
        rows = []
        for policy in MAIN_POLICIES:
            rows.append(
                [policy.value] + list(result.series(function, policy))
            )
        blocks.append(
            render_table(
                ["system"] + [f"{r:g}x_ms" for r in result.ratios],
                rows,
                title=f"Figure 8: {function} under input size ratios",
            )
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
