"""Figure 11: performance using remote storage for snapshots (§6.7).

All Table 2 functions with snapshot, working-set and loading-set
files on a remote EBS io2 volume, under Firecracker / REAP / FaaSnap.
The paper's headline: FaaSnap on EBS averages 2.06x faster than
Firecracker and 1.20x faster than REAP, and is ~28% slower than
FaaSnap on the local NVMe SSD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import Grid
from repro.experiments.runner import CellSpec, measure_cells
from repro.metrics.report import render_table
from repro.metrics.stats import geometric_mean
from repro.workloads.base import INPUT_A
from repro.workloads.registry import BENCHMARK_FUNCTIONS, get_profile

POLICIES = (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP)


@dataclass
class Fig11Result:
    grid: Grid
    functions: Sequence[str]

    def speedup_over(self, base: Policy) -> float:
        base_totals = self.grid.totals_ms(base)
        ours = self.grid.totals_ms(Policy.FAASNAP)
        return geometric_mean([base_totals[f] / ours[f] for f in ours])


def run(
    config: Optional[PlatformConfig] = None,
    functions: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> Fig11Result:
    functions = tuple(functions or BENCHMARK_FUNCTIONS)
    # Variable-input functions test with input B, as in Figure 6;
    # the synthetics reuse input A.
    specs = [
        CellSpec(
            name, policy, get_profile(name).input_b(), record_input=INPUT_A
        )
        for name in functions
        for policy in POLICIES
    ]
    grid = Grid()
    for cell in measure_cells(
        specs, config, remote_storage=True, jobs=jobs
    ):
        grid.add(cell)
    return Fig11Result(grid=grid, functions=functions)


def format_table(result: Fig11Result) -> str:
    rows: List[list] = []
    for function in result.functions:
        row: List[object] = [function]
        for policy in POLICIES:
            row.append(result.grid.totals_ms(policy)[function])
        rows.append(row)
    table = render_table(
        ["function"] + [p.value + "_ms" for p in POLICIES],
        rows,
        title="Figure 11: remote (EBS) snapshot storage, total execution time",
    )
    summary = (
        "geomean speedup of faasnap on EBS: "
        f"{result.speedup_over(Policy.FIRECRACKER):.2f}x over firecracker, "
        f"{result.speedup_over(Policy.REAP):.2f}x over reap "
        "(paper: 2.06x and 1.20x)"
    )
    return table + "\n" + summary


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
