"""Figure 11: performance using remote storage for snapshots (§6.7).

All Table 2 functions with snapshot, working-set and loading-set
files on a remote EBS io2 volume, under Firecracker / REAP / FaaSnap.
The paper's headline: FaaSnap on EBS averages 2.06x faster than
Firecracker and 1.20x faster than REAP, and is ~28% slower than
FaaSnap on the local NVMe SSD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import Grid
from repro.experiments.runner import CellSpec, measure_cells
from repro.metrics.report import render_table
from repro.metrics.stats import geometric_mean
from repro.workloads.base import INPUT_A
from repro.workloads.registry import BENCHMARK_FUNCTIONS, get_profile

POLICIES = (Policy.FIRECRACKER, Policy.REAP, Policy.FAASNAP)


@dataclass
class Fig11Result:
    grid: Grid
    functions: Sequence[str]

    def speedup_over(self, base: Policy) -> float:
        base_totals = self.grid.totals_ms(base)
        ours = self.grid.totals_ms(Policy.FAASNAP)
        return geometric_mean([base_totals[f] / ours[f] for f in ours])


def run(
    config: Optional[PlatformConfig] = None,
    functions: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> Fig11Result:
    functions = tuple(functions or BENCHMARK_FUNCTIONS)
    # Variable-input functions test with input B, as in Figure 6;
    # the synthetics reuse input A.
    specs = [
        CellSpec(
            name, policy, get_profile(name).input_b(), record_input=INPUT_A
        )
        for name in functions
        for policy in POLICIES
    ]
    grid = Grid()
    for cell in measure_cells(
        specs, config, remote_storage=True, jobs=jobs
    ):
        grid.add(cell)
    return Fig11Result(grid=grid, functions=functions)


def format_table(result: Fig11Result) -> str:
    rows: List[list] = []
    for function in result.functions:
        row: List[object] = [function]
        for policy in POLICIES:
            row.append(result.grid.totals_ms(policy)[function])
        rows.append(row)
    table = render_table(
        ["function"] + [p.value + "_ms" for p in POLICIES],
        rows,
        title="Figure 11: remote (EBS) snapshot storage, total execution time",
    )
    summary = (
        "geomean speedup of faasnap on EBS: "
        f"{result.speedup_over(Policy.FIRECRACKER):.2f}x over firecracker, "
        f"{result.speedup_over(Policy.REAP):.2f}x over reap "
        "(paper: 2.06x and 1.20x)"
    )
    return table + "\n" + summary


#: Contention-aware mode: concurrent restores across a small cluster,
#: with snapshots on per-host NVMe vs one shared EBS volume.
DEFAULT_CLUSTER_CONCURRENCY = (1, 4, 8, 16)
DEFAULT_CLUSTER_NUM_HOSTS = 4
CLUSTER_TIERS = ("local-nvme", "shared-ebs")


@dataclass
class Fig11ClusterResult:
    #: mean latency (ms) per (tier, concurrent restores).
    points: Dict[Tuple[str, int], float]
    concurrency: Tuple[int, ...]
    num_hosts: int

    def tier_penalty(self, concurrent: int) -> float:
        """shared-ebs mean latency over local-nvme at ``concurrent``."""
        return (
            self.points[("shared-ebs", concurrent)]
            / self.points[("local-nvme", concurrent)]
        )


def _cluster_tier_cell(
    payload: Tuple[str, int, int],
) -> Tuple[Tuple[str, int], float]:
    """Mean latency of ``concurrent`` simultaneous page-level FaaSnap
    restores of distinct functions on a fresh cluster (pool worker)."""
    from repro.cluster import ClusterConfig, ClusterSimulator
    from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction

    tier, concurrent, num_hosts = payload
    fleet = [
        FleetFunction(
            name=f"json@r{i}",
            profile_name="json",
            mean_interarrival_us=1e6,
        )
        for i in range(concurrent)
    ]
    arrivals = sorted(
        (Arrival(time_us=0.0, function=f.name) for f in fleet),
        key=lambda a: (a.time_us, a.function),
    )
    trace = ArrivalTrace(arrivals=list(arrivals), duration_us=1.0)
    config = ClusterConfig(
        num_hosts=num_hosts,
        placement="least-loaded",
        restore_policy=Policy.FAASNAP,
        snapshot_tier=tier,
        assume_snapshots_exist=True,
    )
    report = ClusterSimulator(fleet, config).run(trace)
    mean_ms = report.mean_latency_us() / 1000.0
    return (tier, concurrent), mean_ms


def run_cluster(
    concurrency: Sequence[int] = DEFAULT_CLUSTER_CONCURRENCY,
    num_hosts: int = DEFAULT_CLUSTER_NUM_HOSTS,
    jobs: Optional[int] = None,
) -> Fig11ClusterResult:
    """Figure 11's remote-storage gap, but emergent: spreading K
    concurrent restores over the cluster keeps per-host NVMe devices
    uncontended, while the shared EBS volume serialises every host's
    reads — so the local-vs-remote penalty *grows* with K instead of
    being a fixed per-function constant."""
    from repro.experiments.runner import parallel_map

    payloads = [
        (tier, concurrent, num_hosts)
        for tier in CLUSTER_TIERS
        for concurrent in concurrency
    ]
    points: Dict[Tuple[str, int], float] = {}
    for key, mean_ms in parallel_map(_cluster_tier_cell, payloads, jobs):
        points[key] = mean_ms
    return Fig11ClusterResult(
        points=points, concurrency=tuple(concurrency), num_hosts=num_hosts
    )


def format_cluster_table(result: Fig11ClusterResult) -> str:
    rows: List[list] = []
    for tier in CLUSTER_TIERS:
        row: List[object] = [tier]
        for concurrent in result.concurrency:
            row.append(result.points[(tier, concurrent)])
        rows.append(row)
    rows.append(
        ["ebs/nvme"]
        + [result.tier_penalty(c) for c in result.concurrency]
    )
    return render_table(
        ["tier"] + [f"k={c}_ms" for c in result.concurrency],
        rows,
        title=(
            f"Figure 11 (cluster mode): k concurrent faasnap restores on "
            f"{result.num_hosts} hosts, per-host NVMe vs shared EBS "
            "(mean latency)"
        ),
    )


def main() -> None:  # pragma: no cover
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
