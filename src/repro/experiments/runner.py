"""Parallel experiment runner.

Every figure is a grid of independent *cells* — (function, policy,
input) combinations, each simulated on its own platform state after a
``drop_caches``. The runner exploits that independence: cells are
grouped into **shards** that share a record artifact (same function,
same record input, same sanitize family), each shard runs on a fresh
platform, and shards fan out across a :mod:`multiprocessing` pool.

Determinism is by construction, not by luck: the serial path
(``jobs=1``) evaluates exactly the same shards on exactly the same
fresh platforms in exactly the same per-shard order as the parallel
path — only the wall-clock interleaving differs — and the merged cell
list is reassembled in the caller's original spec order. So
``jobs=1`` and ``jobs=N`` produce bit-identical results (the
golden-parity tests machine-check this).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.common import Cell, fresh_platform, measure
from repro.workloads.base import INPUT_A, InputSpec

#: When set (to a list) by the caller — the CLI's
#: ``experiment --metrics-out`` — every shard returns a plain-dict
#: snapshot of its platform's telemetry registry and
#: :func:`measure_cells` appends them here. Snapshots are plain dicts
#: because shards run in forked workers: registries hold closures over
#: live simulation state and never cross the process boundary.
TELEMETRY_SINK: Optional[List[dict]] = None


@dataclass(frozen=True)
class CellSpec:
    """A cell to measure: what :func:`repro.experiments.common.measure`
    takes, minus the platform."""

    function: str
    policy: Policy
    test_input: InputSpec
    record_input: InputSpec = INPUT_A


#: A shard shares one record artifact: the platform's ``ensure_record``
#: caches per (function, record input, sanitize family), so cells in
#: the same shard pay the record phase once, exactly like the old
#: one-platform-per-figure loop did.
ShardKey = Tuple[str, InputSpec, bool]


def shard_key(spec: CellSpec) -> ShardKey:
    return (
        spec.function,
        spec.record_input,
        spec.policy.is_faasnap_family,
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/0/1 mean serial, negative
    means one worker per CPU."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(
    worker: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    start_method: Optional[str] = None,
) -> List[Any]:
    """Order-preserving map over ``items``.

    Serial when ``jobs`` resolves to 1; otherwise fans out over a
    process pool. ``fork`` is preferred (cheap, shares the warm
    interpreter), with a documented fallback to ``spawn`` where fork
    is unavailable (macOS with threads, Windows) — worker payloads
    are module-level callables with picklable arguments precisely so
    the spawn path works too; results are identical either way, just
    with a slower pool start. Only when *no* process start method
    exists does the map silently run serially. ``start_method``
    forces a specific method (tests use it to pin the spawn path).
    Results come back in input order regardless of completion order.
    """
    njobs = resolve_jobs(jobs)
    if njobs <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    import multiprocessing

    if start_method is not None:
        context = multiprocessing.get_context(start_method)
    else:
        context = None
        for method in ("fork", "spawn"):
            try:
                context = multiprocessing.get_context(method)
                break
            except ValueError:
                continue
        if context is None:  # pragma: no cover - no multiprocessing
            return [worker(item) for item in items]
    with context.Pool(processes=min(njobs, len(items))) as pool:
        return pool.map(worker, items)


def _run_shard(
    payload: Tuple[
        Optional[PlatformConfig], bool, List[Tuple[int, CellSpec]], bool
    ],
) -> Tuple[List[Tuple[int, Cell]], Optional[dict]]:
    """Evaluate one shard on a fresh platform (pool worker)."""
    config, remote_storage, indexed_specs, collect_telemetry = payload
    functions = []
    for _, spec in indexed_specs:
        if spec.function not in functions:
            functions.append(spec.function)
    platform, handles = fresh_platform(
        config, remote_storage, tuple(functions)
    )
    out: List[Tuple[int, Cell]] = []
    for index, spec in indexed_specs:
        cell = measure(
            platform,
            handles[spec.function],
            spec.policy,
            spec.test_input,
            record_input=spec.record_input,
        )
        out.append((index, cell))
    snapshot: Optional[dict] = None
    if collect_telemetry:
        from repro.metrics.exporters import registry_snapshot

        snapshot = registry_snapshot(platform.metrics)
        snapshot["virtual_time_us"] = platform.env.now
    return out, snapshot


def measure_cells(
    specs: Sequence[CellSpec],
    config: Optional[PlatformConfig] = None,
    remote_storage: bool = False,
    jobs: Optional[int] = None,
) -> List[Cell]:
    """Measure every spec, sharded by record artifact, optionally in
    parallel. Returns cells in the order of ``specs``."""
    # Decide collection in the parent so forked workers need no access
    # to the parent's module state.
    sink = TELEMETRY_SINK
    shards: Dict[ShardKey, List[Tuple[int, CellSpec]]] = {}
    for index, spec in enumerate(specs):
        shards.setdefault(shard_key(spec), []).append((index, spec))
    payloads = [
        (config, remote_storage, indexed, sink is not None)
        for indexed in shards.values()
    ]
    results: List[Optional[Cell]] = [None] * len(specs)
    for shard_result, snapshot in parallel_map(_run_shard, payloads, jobs):
        for index, cell in shard_result:
            results[index] = cell
        if sink is not None and snapshot is not None:
            sink.append(snapshot)
    return results  # type: ignore[return-value]
