"""The vCPU: replays a guest access trace through the fault handler.

A trace is a list of :class:`GuestAccess` items, each "compute for
``think_us``, then touch ``page``". Traces contain only *first
touches* plus the compute time between them — repeated accesses to an
already-mapped page cost nothing at the host, so folding them into
think time loses no fidelity while keeping the simulation fast.

When a host CPU :class:`~repro.sim.Resource` is supplied, think time
runs while holding a CPU slot; fault waits release it. With more
runnable vCPUs than slots, invocations slow down and their variance
grows — the paper's observation at 64-way parallelism (§6.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.host.fault import FaultHandler, FaultKind, FaultRecord
from repro.sim import Environment, Event, Resource


@dataclass(frozen=True)
class GuestAccess:
    """One step of guest execution: compute, then touch a page."""

    page: int
    write: bool = False
    #: Content token stored when ``write`` (ignored for reads).
    value: Optional[int] = None
    #: Compute time preceding the access, microseconds.
    think_us: float = 0.0


@dataclass
class VCpuResult:
    """Outcome of running one trace."""

    started_us: float
    finished_us: float
    records: List[FaultRecord]

    @property
    def elapsed_us(self) -> float:
        return self.finished_us - self.started_us

    @property
    def fault_count(self) -> int:
        return sum(1 for r in self.records if r.kind is not FaultKind.NONE)


class VCpu:
    """Executes guest access traces against a host fault handler."""

    def __init__(
        self,
        env: Environment,
        handler: FaultHandler,
        cpu: Optional[Resource] = None,
    ):
        self.env = env
        self.handler = handler
        self.cpu = cpu

    def run_trace(
        self, trace: List[GuestAccess], tail_think_us: float = 0.0
    ) -> Generator[Event, Any, VCpuResult]:
        """Process helper: execute ``trace`` then ``tail_think_us`` of
        final compute (e.g. serialising the response)."""
        started = self.env.now
        records: List[FaultRecord] = []
        for access in trace:
            if access.think_us > 0:
                yield from self._compute(access.think_us)
            record = yield from self.handler.access(
                access.page, write=access.write, value=access.value
            )
            records.append(record)
        if tail_think_us > 0:
            yield from self._compute(tail_think_us)
        return VCpuResult(started, self.env.now, records)

    def _compute(self, think_us: float) -> Generator[Event, Any, None]:
        """Burn CPU time, holding a host CPU slot if one is modelled."""
        if self.cpu is None:
            yield self.env.timeout(think_us)
            return
        request = self.cpu.request()
        yield request
        try:
            yield self.env.timeout(think_us)
        finally:
            self.cpu.release(request)
