"""The vCPU: replays a guest access trace through the fault handler.

A trace is a list of :class:`GuestAccess` items, each "compute for
``think_us``, then touch ``page``". Traces contain only *first
touches* plus the compute time between them — repeated accesses to an
already-mapped page cost nothing at the host, so folding them into
think time loses no fidelity while keeping the simulation fast.

When a host CPU :class:`~repro.sim.Resource` is supplied, think time
runs while holding a CPU slot; fault waits release it. With more
runnable vCPUs than slots, invocations slow down and their variance
grows — the paper's observation at 64-way parallelism (§6.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.host.fault import (
    HORIZON_BLOCKED,
    FaultHandler,
    FaultKind,
    FaultRecord,
)
from repro.sim import Environment, Event, Resource

INFINITY = float("inf")


class ObservationHorizon:
    """The next simulated instant at which a concurrent observer (the
    mincore recorder) will read state the fault fast path mutates
    eagerly (the installed-PTE count). The batching vCPU never lets an
    install whose per-event completion would land at or past this
    instant happen early — it flushes, lets the observer catch up, and
    retries — so observers see bit-identical state either way."""

    __slots__ = ("next_at",)

    def __init__(self, next_at: float = float("inf")):
        self.next_at = next_at


@dataclass(frozen=True, slots=True)
class GuestAccess:
    """One step of guest execution: compute, then touch a page."""

    page: int
    write: bool = False
    #: Content token stored when ``write`` (ignored for reads).
    value: Optional[int] = None
    #: Compute time preceding the access, microseconds.
    think_us: float = 0.0


@dataclass
class VCpuResult:
    """Outcome of running one trace."""

    started_us: float
    finished_us: float
    records: List[FaultRecord]

    @property
    def elapsed_us(self) -> float:
        return self.finished_us - self.started_us

    @property
    def fault_count(self) -> int:
        return sum(1 for r in self.records if r.kind is not FaultKind.NONE)


class VCpu:
    """Executes guest access traces against a host fault handler.

    With ``batch_faults`` (the default) runs of accesses that cannot
    block — EPT hits, anonymous and present faults, minor faults on an
    unbounded page cache — are serviced synchronously on a virtual
    clock and the whole run sleeps once via
    :meth:`~repro.sim.Environment.wake_at`, instead of dispatching one
    heap event per page. Service costs are deterministic (paper §3),
    so every :class:`FaultRecord` and the final clock are bit-identical
    to the per-event path; only major faults, in-flight-read waits and
    userfaultfd delegations drop back to the event-driven slow path.
    """

    def __init__(
        self,
        env: Environment,
        handler: FaultHandler,
        cpu: Optional[Resource] = None,
        batch_faults: bool = True,
    ):
        self.env = env
        self.handler = handler
        self.cpu = cpu
        self.batch_faults = batch_faults
        #: Set when a concurrent observer (mincore recorder) watches
        #: this VM's resident-set size; bounds how far ahead of the
        #: real clock the fast path may install PTEs.
        self.observer_horizon: Optional[ObservationHorizon] = None

    def run_trace(
        self, trace: List[GuestAccess], tail_think_us: float = 0.0
    ) -> Generator[Event, Any, VCpuResult]:
        """Process helper: execute ``trace`` then ``tail_think_us`` of
        final compute (e.g. serialising the response)."""
        if self.batch_faults:
            return (yield from self._run_trace_batched(trace, tail_think_us))
        started = self.env.now
        records: List[FaultRecord] = []
        for access in trace:
            if access.think_us > 0:
                yield from self._compute(access.think_us)
            record = yield from self.handler.access(
                access.page, write=access.write, value=access.value
            )
            records.append(record)
        if tail_think_us > 0:
            yield from self._compute(tail_think_us)
        self._count_paths(len(records), slow=len(records))
        return VCpuResult(started, self.env.now, records)

    def _count_paths(self, total: int, slow: int) -> None:
        """Attribute this run's accesses to the fast vs event path in
        the host's telemetry bundle (one batched update at trace end;
        the access loop itself stays instrument-free)."""
        telemetry = getattr(self.handler.cache, "telemetry", None)
        if telemetry is None or total == 0:
            return
        fast = total - slow
        telemetry.vcpu_fast.value += fast
        telemetry.vcpu_slow.value += slow
        if fast:
            telemetry.profiler.add("vcpu.fast_path", 0.0, fast)
        if slow:
            telemetry.profiler.add("vcpu.event_path", 0.0, slow)

    def _run_trace_batched(
        self, trace: List[GuestAccess], tail_think_us: float = 0.0
    ) -> Generator[Event, Any, VCpuResult]:
        """Batched twin of :meth:`run_trace`.

        ``vnow`` is the vCPU's virtual clock: it runs ahead of
        ``env.now`` while accesses are serviced synchronously, and a
        single ``wake_at(vnow)`` flush realises the accumulated time
        whenever the trace hits a slow-path access (or ends). Think
        time folds into the batch when no host CPU slot is modelled;
        with a CPU resource it must contend, so it flushes first.
        """
        env = self.env
        handler = self.handler
        started = env.now
        records: List[FaultRecord] = []
        vnow = started
        horizon = self.observer_horizon
        fast_access = handler.fast_access
        append = records.append
        no_cpu = self.cpu is None
        slow = 0
        for access in trace:
            if access.think_us > 0:
                if no_cpu:
                    vnow += access.think_us
                else:
                    if vnow > env.now:
                        yield env.wake_at(vnow)
                    yield from self._compute(access.think_us)
                    vnow = env.now
            while True:
                fast = fast_access(
                    access.page,
                    access.write,
                    access.value,
                    vnow,
                    horizon.next_at if horizon is not None else INFINITY,
                )
                if fast is HORIZON_BLOCKED and vnow > env.now:
                    # An eager install would land at or past the next
                    # observer read. Flush so the observer catches up
                    # (moving its horizon forward), then retry.
                    yield env.wake_at(vnow)
                    continue
                break
            if fast is None or fast is HORIZON_BLOCKED:
                if vnow > env.now:
                    yield env.wake_at(vnow)
                record = yield from handler.access(
                    access.page, write=access.write, value=access.value
                )
                vnow = env.now
                slow += 1
            else:
                record, vnow = fast
            append(record)
        if tail_think_us > 0:
            if self.cpu is None:
                vnow += tail_think_us
            else:
                if vnow > env.now:
                    yield env.wake_at(vnow)
                yield from self._compute(tail_think_us)
                vnow = env.now
        if vnow > env.now:
            yield env.wake_at(vnow)
        self._count_paths(len(records), slow)
        return VCpuResult(started, env.now, records)

    def _compute(self, think_us: float) -> Generator[Event, Any, None]:
        """Burn CPU time, holding a host CPU slot if one is modelled."""
        if self.cpu is None:
            yield self.env.timeout(think_us)
            return
        # Yield inside the try: an interrupt while queueing for the
        # slot must withdraw the request (release handles both the
        # granted and still-waiting cases).
        request = self.cpu.request()
        try:
            yield request
            yield self.env.timeout(think_us)
        finally:
            self.cpu.release(request)
