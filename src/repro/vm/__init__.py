"""Virtual-machine substrate: VMM, guest memory, vCPU, snapshots.

Models the Firecracker-style microVM the paper builds on (§2.4):

* :mod:`~repro.vm.layout` — the guest physical memory map (2 GB, with
  boot / runtime / data / heap regions) that workload traces and
  snapshot synthesis share.
* :mod:`~repro.vm.snapshot` — snapshot artefacts: the vmstate file and
  the full guest-memory file (saved sparse, §7.2), plus helpers to
  capture a running VM's memory contents.
* :mod:`~repro.vm.vcpu` — guest accesses and the vCPU process that
  replays an access trace through the host fault handler, optionally
  contending for host CPU slots (bursty workloads, §6.6).
* :mod:`~repro.vm.vmm` — the microVM: restore-time setup costs, the
  default whole-file guest memory mapping, snapshot capture.
"""

from repro.vm.layout import GuestLayout
from repro.vm.snapshot import Snapshot, capture_memory_contents, create_snapshot
from repro.vm.vcpu import GuestAccess, VCpu, VCpuResult
from repro.vm.vmm import (
    MapDirective,
    MappingPlan,
    MicroVM,
    VmmParams,
    full_file_plan,
)

__all__ = [
    "GuestAccess",
    "GuestLayout",
    "MapDirective",
    "MappingPlan",
    "MicroVM",
    "Snapshot",
    "VCpu",
    "VCpuResult",
    "VmmParams",
    "capture_memory_contents",
    "create_snapshot",
    "full_file_plan",
]
