"""The microVM monitor (Firecracker model).

Restoring a snapshot (paper §2.4) means: start the VMM process,
restore vCPU/device state from the vmstate file, and mmap the guest
memory. Stock Firecracker maps the *entire* memory file in one call;
FaaSnap instead applies a :class:`MappingPlan` — an ordered list of
``MAP_FIXED`` mappings forming the hierarchy of Figure 4. Every
mapped region costs an mmap() call (§4.6), which is why FaaSnap
merges adjacent loading-set regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.host.fault import FaultHandler
from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.host.procfs import Procfs
from repro.host.uffd import UserfaultfdManager
from repro.host.vma import AddressSpace
from repro.sim import Environment, Event, Resource, SimulationError
from repro.storage.filestore import StoredFile
from repro.vm.snapshot import Snapshot
from repro.vm.vcpu import VCpu


@dataclass(frozen=True)
class VmmParams:
    """Fixed costs of VM lifecycle operations.

    Calibrated to the paper's Figure 1 setup bars: restoring a
    Firecracker snapshot takes tens of milliseconds of VMM start,
    device restore and network setup before any guest page is
    touched.
    """

    #: Starting the VMM process and its API handler.
    vmm_start_us: float = 28_000.0
    #: Restoring vCPU and virtual-device state from the vmstate file.
    vmstate_restore_us: float = 12_000.0
    #: Cold boot of the guest kernel (Firecracker boots a kernel in
    #: ~125 ms, §2.2); only used by the cold-boot reference path.
    cold_boot_us: float = 125_000.0


@dataclass(frozen=True)
class MapDirective:
    """One mmap() in a mapping plan. ``file=None`` maps anonymous."""

    start: int
    npages: int
    file: Optional[StoredFile] = None
    file_start_page: int = 0

    @property
    def is_anonymous(self) -> bool:
        return self.file is None


@dataclass
class MappingPlan:
    """An ordered list of MAP_FIXED mappings, applied bottom-up."""

    directives: List[MapDirective] = field(default_factory=list)

    def add_anonymous(self, start: int, npages: int) -> None:
        self.directives.append(MapDirective(start, npages))

    def add_file(
        self, start: int, npages: int, file: StoredFile, file_start_page: int
    ) -> None:
        self.directives.append(
            MapDirective(start, npages, file, file_start_page)
        )

    def __len__(self) -> int:
        return len(self.directives)


def full_file_plan(snapshot: Snapshot) -> MappingPlan:
    """Stock Firecracker: one mapping of the whole memory file."""
    plan = MappingPlan()
    plan.add_file(0, snapshot.num_pages, snapshot.memory_file, 0)
    return plan


class MicroVM:
    """A guest VM instance on the simulated host."""

    def __init__(
        self,
        env: Environment,
        host_params: HostParams,
        vmm_params: VmmParams,
        cache: PageCache,
        num_pages: int,
        label: str = "vm",
        cpu: Optional[Resource] = None,
        use_uffd: bool = False,
        batch_faults: bool = True,
    ):
        self.env = env
        self.host_params = host_params
        self.vmm_params = vmm_params
        self.cache = cache
        self.label = label
        self.space = AddressSpace(num_pages)
        self.uffd = (
            UserfaultfdManager(env, host_params) if use_uffd else None
        )
        self.handler = FaultHandler(
            env, host_params, cache, self.space, uffd=self.uffd, label=label
        )
        self.vcpu = VCpu(env, self.handler, cpu=cpu, batch_faults=batch_faults)
        self.procfs = Procfs(env, host_params, self.space)
        self._setup_done = False

    def restore(
        self, snapshot: Snapshot, plan: Optional[MappingPlan] = None
    ) -> Generator[Event, Any, float]:
        """Process helper: restore from ``snapshot``.

        Starts the VMM, reads the vmstate file from disk, and applies
        the mapping plan (stock full-file mapping when ``plan`` is
        None). Returns the setup time in microseconds.
        """
        if self._setup_done:
            raise SimulationError(f"{self.label}: VM already set up")
        start = self.env.now
        yield self.env.timeout(self.vmm_params.vmm_start_us)
        yield from snapshot.vmstate_file.read(0, snapshot.vmstate_file.num_pages)
        yield self.env.timeout(self.vmm_params.vmstate_restore_us)
        yield from self.apply_plan(plan or full_file_plan(snapshot))
        self._setup_done = True
        return self.env.now - start

    def apply_plan(self, plan: MappingPlan) -> Generator[Event, Any, None]:
        """Process helper: apply mappings in order, charging the mmap
        syscall cost per region."""
        for directive in plan.directives:
            yield self.env.timeout(self.host_params.mmap_region_us)
            if directive.is_anonymous:
                self.space.mmap_anonymous(directive.start, directive.npages)
            else:
                self.space.mmap_file(
                    directive.start,
                    directive.npages,
                    directive.file,
                    directive.file_start_page,
                )

    def cold_boot(
        self,
        contents: "dict[int, int]",
        runtime_init_us: float,
    ) -> Generator[Event, Any, float]:
        """Process helper: full cold start (paper §2.1).

        Starts the VMM, boots the guest kernel (~125 ms for
        Firecracker, §2.2), then initialises the runtime — starting
        the interpreter, installing code, importing libraries — which
        the paper reports takes "seconds to minutes". Afterwards the
        guest holds ``contents`` in anonymous memory with everything
        mapped, exactly like a warm VM. Returns the elapsed time.
        """
        if self._setup_done:
            raise SimulationError(f"{self.label}: VM already set up")
        start = self.env.now
        yield self.env.timeout(self.vmm_params.vmm_start_us)
        yield self.env.timeout(self.vmm_params.cold_boot_us)
        yield self.env.timeout(runtime_init_us)
        self.space.mmap_anonymous(0, self.space.num_pages)
        nonzero = {
            page: value for page, value in contents.items() if value != 0
        }
        self.space.anon_contents.update(nonzero)
        self.space.pte.update(nonzero)
        self.space.ept.update(nonzero)
        self._setup_done = True
        return self.env.now - start

    def make_warm(self, snapshot: Snapshot) -> None:
        """Turn this VM into a *warm* VM that previously served an
        invocation (paper §3.1): guest memory is anonymous host
        memory holding the snapshot's contents, and every non-zero
        page is already mapped at both levels, so only first touches
        of new pages fault (cheap anonymous faults)."""
        if self._setup_done:
            raise SimulationError(f"{self.label}: VM already set up")
        self.space.mmap_anonymous(0, self.space.num_pages)
        # Bulk-install every snapshot page: dict/set updates in C
        # rather than a per-page Python loop. A warm start installs
        # tens of thousands of PTEs, and this is the cluster serving
        # path's hottest wall-clock cost.
        pages = snapshot.memory_file.pages
        self.space.anon_contents.update(pages)
        self.space.pte.update(pages)
        self.space.ept.update(pages)
        self._setup_done = True

    @property
    def is_set_up(self) -> bool:
        return self._setup_done
