"""Snapshot artefacts.

A Firecracker snapshot (paper §2.4) is a small *vmstate* file (vCPU
registers, device state) plus a *memory file* that is a full copy of
guest physical memory. Memory files are saved sparse — zero pages
become holes — which both shrinks storage (§7.2) and lets the
simulation distinguish zero from non-zero pages exactly the way
FaaSnap's zero-region scan does (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.host.vma import AddressSpace, FileBacking
from repro.storage.filestore import FileStore, StoredFile

#: Size of the vmstate file: device + vCPU state is tens of KB.
VMSTATE_PAGES = 16


@dataclass
class Snapshot:
    """An on-disk snapshot of a guest VM."""

    name: str
    memory_file: StoredFile
    vmstate_file: StoredFile

    @property
    def num_pages(self) -> int:
        return self.memory_file.num_pages

    def nonzero_pages(self) -> List[int]:
        """Sorted guest pages with non-zero contents — the scan
        FaaSnap performs after the record phase (§4.5)."""
        return self.memory_file.nonzero_pages()

    def page_value(self, page: int) -> int:
        return self.memory_file.page_value(page)


def create_snapshot(
    store: FileStore,
    name: str,
    num_pages: int,
    contents: Dict[int, int],
    sparse: bool = True,
) -> Snapshot:
    """Write a snapshot named ``name`` into ``store``.

    ``contents`` maps guest page -> content token; zero / missing
    pages become holes when ``sparse``. Snapshot creation happens in
    the record phase, off the measured critical path, so no simulated
    time is charged.
    """
    memory = store.create(
        f"{name}.mem",
        num_pages,
        pages={p: v for p, v in contents.items() if v != 0},
        sparse=sparse,
    )
    vmstate = store.create(f"{name}.vmstate", VMSTATE_PAGES)
    return Snapshot(name=name, memory_file=memory, vmstate_file=vmstate)


def capture_memory_contents(
    space: AddressSpace, base: Optional[Snapshot] = None
) -> Dict[int, int]:
    """Guest memory contents as observed through ``space``.

    Pages privately dirtied by the guest take their written values;
    other pages fall back to whatever backs them (the base snapshot's
    memory file, or zero for anonymous regions). This is what gets
    written to a *new* memory file when a snapshot is taken after an
    invocation (paper Figure 5: "create new snapshot").

    Iterates only pages that can be non-zero — each mapping's backing
    file entries plus the dirtied pages — so capturing a 2 GB guest
    stays cheap. (``base`` is accepted for call-site symmetry; the
    mappings themselves carry everything needed.)
    """
    contents: Dict[int, int] = {}
    for vma in space.vmas():
        backing = vma.backing
        if not isinstance(backing, FileBacking):
            continue
        file_pages = backing.file.pages
        first = backing.file_start_page
        last = first + vma.npages
        base_guest = vma.start - first
        if len(file_pages) <= vma.npages:
            for file_page, value in file_pages.items():
                if first <= file_page < last and value != 0:
                    contents[base_guest + file_page] = value
        else:
            for file_page in range(first, last):
                value = file_pages.get(file_page, 0)
                if value != 0:
                    contents[base_guest + file_page] = value
    # Private (dirtied) pages override whatever backs them.
    for page, value in space.anon_contents.items():
        if value != 0:
            contents[page] = value
        else:
            contents.pop(page, None)
    return contents
