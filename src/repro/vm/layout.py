"""Guest physical memory layout.

Paper §6.1: each guest VM has 2 GB of memory — 524,288 4-KiB pages.
After boot and runtime initialisation the guest memory divides into
regions that behave differently under snapshotting:

* **boot** — kernel text/data and pages dirtied during boot. These
  are non-zero in the snapshot but rarely touched by invocations:
  the paper's *cold set* is "usually more than 100 MB in size, and
  most of them are pages used in the guest booting process" (§4.8).
* **runtime** — the Python interpreter, Flask server and imported
  libraries. Partially touched on every invocation; how much of it
  an invocation touches varies with input and execution flow.
* **data** — long-lived function data (read-list's 512 MB list,
  recognition's ResNet weights) resident when the snapshot is taken.
* **heap** — free guest physical pages that anonymous allocations
  draw from during an invocation.

The regions are contiguous spans; workload generators address pages
by (region, offset) through this layout so traces, snapshots and
mapping plans all agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: 2 GB guest / 4 KiB pages (paper §6.1).
DEFAULT_GUEST_PAGES = 524_288

#: Default boot-region size: ~128 MB of boot-dirtied pages (§4.8
#: notes the cold set is usually >100 MB, mostly boot pages).
DEFAULT_BOOT_PAGES = 32_768


@dataclass(frozen=True)
class GuestLayout:
    """Region map of guest physical memory, in pages."""

    total_pages: int = DEFAULT_GUEST_PAGES
    boot_pages: int = DEFAULT_BOOT_PAGES
    runtime_pages: int = 16_384
    data_pages: int = 0

    def __post_init__(self) -> None:
        if min(self.total_pages, self.boot_pages, self.runtime_pages) <= 0:
            raise ValueError("layout regions must be positive")
        if self.data_pages < 0:
            raise ValueError("data_pages must be >= 0")
        if self.heap_start >= self.total_pages:
            raise ValueError(
                "layout regions exceed guest memory: "
                f"{self.heap_start} >= {self.total_pages}"
            )
        # Trace generators address hundreds of thousands of pages per
        # run through ``_page``; cache the bounds table once (the
        # dataclass is frozen, so it can never go stale).
        object.__setattr__(
            self,
            "_bounds",
            {
                "boot": (self.boot_start, self.boot_pages),
                "runtime": (self.runtime_start, self.runtime_pages),
                "data": (self.data_start, self.data_pages),
                "heap": (self.heap_start, self.heap_pages),
            },
        )

    # -- region bounds -------------------------------------------------

    @property
    def boot_start(self) -> int:
        return 0

    @property
    def runtime_start(self) -> int:
        return self.boot_pages

    @property
    def data_start(self) -> int:
        return self.runtime_start + self.runtime_pages

    @property
    def heap_start(self) -> int:
        return self.data_start + self.data_pages

    @property
    def heap_pages(self) -> int:
        return self.total_pages - self.heap_start

    def region_bounds(self) -> Dict[str, Tuple[int, int]]:
        """``{region: (start, npages)}`` for all four regions."""
        return dict(self._bounds)

    # -- addressing ------------------------------------------------------

    def boot_page(self, offset: int) -> int:
        return self._page("boot", offset)

    def runtime_page(self, offset: int) -> int:
        return self._page("runtime", offset)

    def data_page(self, offset: int) -> int:
        return self._page("data", offset)

    def heap_page(self, offset: int) -> int:
        return self._page("heap", offset)

    def _page(self, region: str, offset: int) -> int:
        start, npages = self._bounds[region]
        if not 0 <= offset < npages:
            raise ValueError(
                f"offset {offset} outside {region} region of {npages} pages"
            )
        return start + offset

    def region_of(self, page: int) -> str:
        """Name of the region containing ``page``."""
        if not 0 <= page < self.total_pages:
            raise ValueError(f"page {page} outside guest memory")
        for region, (start, npages) in self._bounds.items():
            if start <= page < start + npages:
                return region
        raise AssertionError("regions must cover the address space")
