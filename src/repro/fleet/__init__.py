"""Fleet-level serving simulation (paper §2.1, §7.1).

The paper motivates snapshots with fleet economics: warm VMs are
fastest but hold memory; most functions are invoked too rarely to
stay warm (the Azure traces: fewer than half of all functions fire
every hour, fewer than 10% every minute); cold boots take seconds.
Section 7.1 concludes snapshots should serve the middle of the
frequency distribution and replace warm VMs on eviction.

This package makes that tradeoff measurable:

* :mod:`~repro.fleet.workload` — synthesizes a fleet of functions
  with an Azure-like invocation-frequency distribution and generates
  deterministic arrival traces.
* :mod:`~repro.fleet.costs` — measures each function's warm /
  snapshot / cold serving costs and memory footprint by running the
  page-level core simulation once per (function, policy).
* :mod:`~repro.fleet.scheduler` — an event-driven fleet simulator
  with keep-alive TTLs and a host memory budget, reporting latency
  percentiles, start-type mix, and memory usage.
"""

from repro.fleet.costs import CostModel, FunctionCosts
from repro.fleet.scheduler import (
    ClusterScheduler,
    FleetConfig,
    FleetReport,
    FleetSimulator,
    IdlePool,
    PooledVm,
    ServedInvocation,
    StartKind,
)
from repro.fleet.workload import (
    ArrivalTrace,
    FleetFunction,
    generate_arrivals,
    synthesize_fleet,
)

__all__ = [
    "ArrivalTrace",
    "ClusterScheduler",
    "CostModel",
    "FleetConfig",
    "FleetFunction",
    "FleetReport",
    "FleetSimulator",
    "FunctionCosts",
    "IdlePool",
    "PooledVm",
    "ServedInvocation",
    "StartKind",
    "generate_arrivals",
    "synthesize_fleet",
]
