"""Fleet workload synthesis.

Mirrors the shape of the Azure Functions traces the paper cites
(Shahrad et al., ATC '20; paper §2.1): invocation rates span orders
of magnitude, with a small hot head and a long cold tail — "less than
half of the functions are invoked every hour, and less than 10% are
invoked every minute". We synthesize that by drawing each function's
mean interarrival time log-uniformly between a hot bound (seconds)
and a cold bound (several hours), which reproduces both quoted
quantiles to within a few percent for the default bounds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.workloads.registry import VARIABLE_INPUT_FUNCTIONS

US_PER_SECOND = 1_000_000.0
US_PER_MINUTE = 60 * US_PER_SECOND
US_PER_HOUR = 60 * US_PER_MINUTE

#: Default interarrival bounds, solved so the log-uniform draw hits
#: the Azure-trace quantiles the paper quotes (~45% of functions
#: invoked at least hourly, ~8% at least once a minute): 25 seconds
#: for the hottest functions, ~18 days for the coldest.
DEFAULT_HOT_INTERARRIVAL_US = 25 * US_PER_SECOND
DEFAULT_COLD_INTERARRIVAL_US = 436 * US_PER_HOUR


@dataclass(frozen=True)
class FleetFunction:
    """One function in the fleet."""

    name: str
    #: Which Table 2 profile models its memory/compute behaviour.
    profile_name: str
    #: Mean interarrival time of its invocations, microseconds.
    mean_interarrival_us: float

    @property
    def invocations_per_hour(self) -> float:
        return US_PER_HOUR / self.mean_interarrival_us


@dataclass(frozen=True)
class Arrival:
    """One invocation request."""

    time_us: float
    function: str


@dataclass
class ArrivalTrace:
    """A sorted sequence of arrivals over a fixed horizon."""

    arrivals: List[Arrival] = field(default_factory=list)
    duration_us: float = 0.0

    def __len__(self) -> int:
        return len(self.arrivals)

    def per_function_counts(self) -> dict:
        counts: dict = {}
        for arrival in self.arrivals:
            counts[arrival.function] = counts.get(arrival.function, 0) + 1
        return counts


def synthesize_fleet(
    num_functions: int,
    seed: int = 1,
    profile_names: Optional[Sequence[str]] = None,
    hot_interarrival_us: float = DEFAULT_HOT_INTERARRIVAL_US,
    cold_interarrival_us: float = DEFAULT_COLD_INTERARRIVAL_US,
) -> List[FleetFunction]:
    """Create ``num_functions`` functions with log-uniform rates."""
    if num_functions < 1:
        raise ValueError("need at least one function")
    if not 0 < hot_interarrival_us < cold_interarrival_us:
        raise ValueError("interarrival bounds must be ordered and positive")
    profiles = list(profile_names or VARIABLE_INPUT_FUNCTIONS)
    rng = random.Random(f"fleet|{seed}")
    log_hot = math.log(hot_interarrival_us)
    log_cold = math.log(cold_interarrival_us)
    fleet = []
    for index in range(num_functions):
        interarrival = math.exp(rng.uniform(log_hot, log_cold))
        fleet.append(
            FleetFunction(
                name=f"fn{index:04d}",
                profile_name=profiles[index % len(profiles)],
                mean_interarrival_us=interarrival,
            )
        )
    return fleet


def generate_arrivals(
    fleet: Sequence[FleetFunction],
    duration_us: float,
    seed: int = 1,
) -> ArrivalTrace:
    """Deterministic Poisson arrivals for every function."""
    if duration_us <= 0:
        raise ValueError("duration must be positive")
    arrivals: List[Arrival] = []
    for function in fleet:
        rng = random.Random(f"arrivals|{seed}|{function.name}")
        clock = rng.expovariate(1.0 / function.mean_interarrival_us)
        while clock < duration_us:
            arrivals.append(Arrival(time_us=clock, function=function.name))
            clock += rng.expovariate(1.0 / function.mean_interarrival_us)
    arrivals.sort(key=lambda a: (a.time_us, a.function))
    return ArrivalTrace(arrivals=arrivals, duration_us=duration_us)


def frequency_quantiles(fleet: Sequence[FleetFunction]) -> dict:
    """Fraction of functions at the paper's quoted rates: invoked at
    least hourly, and at least once a minute."""
    total = len(fleet)
    hourly = sum(
        1 for f in fleet if f.mean_interarrival_us <= US_PER_HOUR
    )
    minutely = sum(
        1 for f in fleet if f.mean_interarrival_us <= US_PER_MINUTE
    )
    return {
        "at_least_hourly": hourly / total,
        "at_least_minutely": minutely / total,
    }
