"""Fleet workload synthesis.

Mirrors the shape of the Azure Functions traces the paper cites
(Shahrad et al., ATC '20; paper §2.1): invocation rates span orders
of magnitude, with a small hot head and a long cold tail — "less than
half of the functions are invoked every hour, and less than 10% are
invoked every minute". We synthesize that by drawing each function's
mean interarrival time log-uniformly between a hot bound (seconds)
and a cold bound (several hours), which reproduces both quoted
quantiles to within a few percent for the default bounds.
"""

from __future__ import annotations

import heapq
import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.workloads.registry import VARIABLE_INPUT_FUNCTIONS

US_PER_SECOND = 1_000_000.0
US_PER_MINUTE = 60 * US_PER_SECOND
US_PER_HOUR = 60 * US_PER_MINUTE

#: Default interarrival bounds, solved so the log-uniform draw hits
#: the Azure-trace quantiles the paper quotes (~45% of functions
#: invoked at least hourly, ~8% at least once a minute): 25 seconds
#: for the hottest functions, ~18 days for the coldest.
DEFAULT_HOT_INTERARRIVAL_US = 25 * US_PER_SECOND
DEFAULT_COLD_INTERARRIVAL_US = 436 * US_PER_HOUR


@dataclass(frozen=True)
class FleetFunction:
    """One function in the fleet."""

    name: str
    #: Which Table 2 profile models its memory/compute behaviour.
    profile_name: str
    #: Mean interarrival time of its invocations, microseconds.
    mean_interarrival_us: float

    @property
    def invocations_per_hour(self) -> float:
        return US_PER_HOUR / self.mean_interarrival_us


@dataclass(frozen=True)
class Arrival:
    """One invocation request."""

    time_us: float
    function: str


@dataclass
class ArrivalTrace:
    """A sorted sequence of arrivals over a fixed horizon."""

    arrivals: List[Arrival] = field(default_factory=list)
    duration_us: float = 0.0

    def __len__(self) -> int:
        return len(self.arrivals)

    def per_function_counts(self) -> dict:
        counts: dict = {}
        for arrival in self.arrivals:
            counts[arrival.function] = counts.get(arrival.function, 0) + 1
        return counts


def synthesize_fleet(
    num_functions: int,
    seed: int = 1,
    profile_names: Optional[Sequence[str]] = None,
    hot_interarrival_us: float = DEFAULT_HOT_INTERARRIVAL_US,
    cold_interarrival_us: float = DEFAULT_COLD_INTERARRIVAL_US,
) -> List[FleetFunction]:
    """Create ``num_functions`` functions with log-uniform rates."""
    if num_functions < 1:
        raise ValueError("need at least one function")
    if not 0 < hot_interarrival_us < cold_interarrival_us:
        raise ValueError("interarrival bounds must be ordered and positive")
    profiles = list(profile_names or VARIABLE_INPUT_FUNCTIONS)
    rng = random.Random(f"fleet|{seed}")
    log_hot = math.log(hot_interarrival_us)
    log_cold = math.log(cold_interarrival_us)
    fleet = []
    for index in range(num_functions):
        interarrival = math.exp(rng.uniform(log_hot, log_cold))
        fleet.append(
            FleetFunction(
                name=f"fn{index:04d}",
                profile_name=profiles[index % len(profiles)],
                mean_interarrival_us=interarrival,
            )
        )
    return fleet


def generate_arrivals(
    fleet: Sequence[FleetFunction],
    duration_us: float,
    seed: int = 1,
) -> ArrivalTrace:
    """Deterministic Poisson arrivals for every function."""
    if duration_us <= 0:
        raise ValueError("duration must be positive")
    arrivals: List[Arrival] = []
    for function in fleet:
        rng = random.Random(f"arrivals|{seed}|{function.name}")
        clock = rng.expovariate(1.0 / function.mean_interarrival_us)
        while clock < duration_us:
            arrivals.append(Arrival(time_us=clock, function=function.name))
            clock += rng.expovariate(1.0 / function.mean_interarrival_us)
    arrivals.sort(key=lambda a: (a.time_us, a.function))
    return ArrivalTrace(arrivals=arrivals, duration_us=duration_us)


# -- streaming arrival sources -----------------------------------------
#
# The live service core (:mod:`repro.service`) does not hold a whole
# trace in memory: it *pulls* arrivals from a source as virtual time
# advances. ``take_until`` is the only operation — return every
# arrival with ``time_us <= rel_time_us`` (relative to the serving
# epoch) that has not been taken yet, in nondecreasing
# ``(time_us, function)`` order, and remember the cursor. Sources are
# single-pass and deterministic: the same sequence of ``take_until``
# horizons yields the same arrivals regardless of how the horizons
# are chunked.


class ArrivalSource:
    """Incremental arrival stream consumed horizon by horizon."""

    def take_until(self, rel_time_us: float) -> List[Arrival]:
        raise NotImplementedError


class TraceArrivalSource(ArrivalSource):
    """A canned :class:`ArrivalTrace` (or arrival list) replayed as a
    stream — the bridge from the batch world to the service core."""

    def __init__(self, trace) -> None:
        arrivals = trace.arrivals if isinstance(trace, ArrivalTrace) else trace
        self._arrivals: List[Arrival] = list(arrivals)
        self._cursor = 0

    def take_until(self, rel_time_us: float) -> List[Arrival]:
        arrivals = self._arrivals
        start = cursor = self._cursor
        n = len(arrivals)
        while cursor < n and arrivals[cursor].time_us <= rel_time_us:
            cursor += 1
        self._cursor = cursor
        return arrivals[start:cursor]


class PoissonArrivalSource(ArrivalSource):
    """Unbounded Poisson arrivals, chunk-for-chunk identical to
    :func:`generate_arrivals`.

    Each function keeps the exact per-function RNG stream
    (``random.Random(f"arrivals|{seed}|{name}")`` expovariate clocks)
    the batch generator uses; the per-function clocks are merged
    through a heap keyed ``(clock, name)``, which reproduces the
    batch generator's ``(time_us, function)`` sort order — so for any
    horizon, the concatenation of ``take_until`` chunks equals the
    prefix of the batch trace, while the stream itself never ends.
    """

    def __init__(self, fleet: Sequence[FleetFunction], seed: int = 1):
        if not fleet:
            raise ValueError("need at least one function")
        self._streams: Dict[str, Tuple[random.Random, float]] = {}
        self._heap: List[Tuple[float, str]] = []
        for function in fleet:
            rng = random.Random(f"arrivals|{seed}|{function.name}")
            clock = rng.expovariate(1.0 / function.mean_interarrival_us)
            self._streams[function.name] = (rng, function.mean_interarrival_us)
            heapq.heappush(self._heap, (clock, function.name))

    def take_until(self, rel_time_us: float) -> List[Arrival]:
        taken: List[Arrival] = []
        heap = self._heap
        while heap and heap[0][0] <= rel_time_us:
            clock, name = heapq.heappop(heap)
            taken.append(Arrival(time_us=clock, function=name))
            rng, mean = self._streams[name]
            heapq.heappush(heap, (clock + rng.expovariate(1.0 / mean), name))
        return taken


class JsonLinesArrivalSource(ArrivalSource):
    """Arrivals read lazily from JSON-lines text, one object per line:
    ``{"time_us": <float>, "function": "<name>"}``.

    Blank lines and ``#`` comments are skipped. Times must be
    nondecreasing (it is a stream; the reader cannot sort), and only
    one record of lookahead is held, so piping an unbounded stream
    through stdin works."""

    def __init__(self, lines: Iterable[str]):
        self._lines: Iterator[str] = iter(lines)
        self._lookahead: Optional[Arrival] = None
        self._last_time = float("-inf")
        self._exhausted = False

    def _next(self) -> Optional[Arrival]:
        for line in self._lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            doc = json.loads(line)
            arrival = Arrival(
                time_us=float(doc["time_us"]), function=str(doc["function"])
            )
            if arrival.time_us < self._last_time:
                raise ValueError(
                    f"arrival times must be nondecreasing: "
                    f"{arrival.time_us} after {self._last_time}"
                )
            self._last_time = arrival.time_us
            return arrival
        self._exhausted = True
        return None

    def take_until(self, rel_time_us: float) -> List[Arrival]:
        taken: List[Arrival] = []
        while True:
            if self._lookahead is None:
                if self._exhausted:
                    break
                self._lookahead = self._next()
                if self._lookahead is None:
                    break
            if self._lookahead.time_us <= rel_time_us:
                taken.append(self._lookahead)
                self._lookahead = None
            else:
                break
        return taken


def frequency_quantiles(fleet: Sequence[FleetFunction]) -> dict:
    """Fraction of functions at the paper's quoted rates: invoked at
    least hourly, and at least once a minute."""
    total = len(fleet)
    hourly = sum(
        1 for f in fleet if f.mean_interarrival_us <= US_PER_HOUR
    )
    minutely = sum(
        1 for f in fleet if f.mean_interarrival_us <= US_PER_MINUTE
    )
    return {
        "at_least_hourly": hourly / total,
        "at_least_minutely": minutely / total,
    }
