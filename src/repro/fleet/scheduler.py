"""Event-driven fleet scheduler with keep-alive and memory budget.

Implements the serving hierarchy of paper §7.1: an invocation lands
on a warm VM if one is idle, is served from a snapshot if one exists,
and cold-boots otherwise. Warm VMs are kept alive for a TTL after
their last invocation (AWS Lambda keeps 15-60 minutes, §2.1) and are
evicted LRU-first under a host memory budget — eviction-to-snapshot
being exactly the role the paper assigns FaaSnap.

:class:`FleetSimulator` is the *fast path*: it replays arrivals
against a static per-function cost table, so a million-invocation
trace runs in milliseconds but concurrent restores cannot contend.
The page-level, multi-host path lives in
:class:`repro.cluster.ClusterSimulator`; both implement the common
:class:`ClusterScheduler` interface so experiments can switch between
them.
"""

from __future__ import annotations

import abc
import enum
import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.fleet.costs import CostModel, FunctionCosts
from repro.fleet.workload import ArrivalTrace, FleetFunction
from repro.metrics.telemetry import MetricsRegistry

US_PER_MINUTE = 60_000_000.0


class StartKind(enum.Enum):
    WARM = "warm"
    SNAPSHOT = "snapshot"
    COLD = "cold"


class InvocationOutcome(enum.Enum):
    """The defined end state of one arrival.

    Historically an invocation that raised inside a host process had
    *no* defined outcome — the failure either crashed the run or
    vanished. Every arrival now ends in exactly one of these states,
    and reports account for all of them.
    """

    #: Completed on the first attempt.
    OK = "ok"
    #: Completed, but only after one or more retries.
    RETRIED = "retried"
    #: Completed because a tail-latency hedge attempt finished first.
    HEDGE_WON = "hedge-won"
    #: Rejected at admission by load shedding; never attempted.
    SHED = "shed"
    #: All attempts failed (crash, device error, deadline, budget).
    FAILED = "failed"


#: Outcomes that count as successfully served for availability.
SERVED_OK = frozenset(
    {
        InvocationOutcome.OK,
        InvocationOutcome.RETRIED,
        InvocationOutcome.HEDGE_WON,
    }
)


@dataclass(frozen=True)
class FleetConfig:
    """Scheduler policy knobs."""

    #: Restore policy used for snapshot starts.
    restore_policy: Policy = Policy.FAASNAP
    #: Keep a finished VM warm for this long (§2.1: 15-60 min at AWS).
    keep_alive_ttl_us: float = 15 * US_PER_MINUTE
    #: Host memory available for keeping VMs (warm or running), MB.
    memory_budget_mb: float = 16_384.0
    #: Disable to model a platform with no snapshot tier (warm or
    #: cold only) — the baseline FaaSnap argues against.
    snapshots_enabled: bool = True


@dataclass
class PooledVm:
    """A VM tracked by the keep-alive machinery (fleet and cluster)."""

    function: str
    memory_mb: float
    busy_until: float
    last_used: float
    #: True while the VM sits in an idle pool; cleared on reuse and
    #: eviction so stale heap entries can be recognised and skipped.
    idle: bool = False


_Vm = PooledVm


class IdlePool:
    """Idle VMs indexed two ways: per-function deques ordered
    oldest-first by ``last_used`` (completions arrive in completion
    order, so appends keep the order), and a lazy global min-heap over
    ``last_used`` for TTL expiry and LRU eviction.

    A VM reused or evicted since its heap entry was pushed leaves the
    entry behind as garbage; consumers detect that by re-checking
    ``vm.idle`` and the recorded timestamp. This replaces the old
    rescan-every-pool / ``list.remove`` bookkeeping that made large
    traces O(n²).
    """

    def __init__(self) -> None:
        self._pools: Dict[str, Deque[PooledVm]] = {}
        self._heap: List[Tuple[float, int, PooledVm]] = []
        self._seq = itertools.count()

    def park(self, vm: PooledVm) -> None:
        vm.idle = True
        self._pools.setdefault(vm.function, deque()).append(vm)
        heapq.heappush(self._heap, (vm.last_used, next(self._seq), vm))

    def _unpark(self, vm: PooledVm) -> None:
        pool = self._pools[vm.function]
        if pool[-1] is vm:
            pool.pop()
        elif pool[0] is vm:
            pool.popleft()
        else:  # pragma: no cover - equal-timestamp stragglers
            pool.remove(vm)
        vm.idle = False

    def has_idle(self, function: str) -> bool:
        return bool(self._pools.get(function))

    def idle_functions(self) -> List[str]:
        """Sorted names of functions with at least one idle VM (the
        sharded cluster publishes this in its barrier digests so the
        router can answer ``has_idle_warm`` remotely)."""
        return sorted(fn for fn, pool in self._pools.items() if pool)

    def __len__(self) -> int:
        """Idle VMs across all functions (the idle-pool-size gauge)."""
        return sum(len(pool) for pool in self._pools.values())

    def reuse_mru(self, function: str) -> Optional[PooledVm]:
        """Claim the most recently used idle VM of ``function``."""
        pool = self._pools.get(function)
        if not pool:
            return None
        vm = pool[-1]
        self._unpark(vm)
        return vm

    def pop_expired(self, now: float, ttl_us: float) -> List[PooledVm]:
        """Claim every idle VM whose keep-alive has lapsed."""
        expired: List[PooledVm] = []
        while self._heap:
            parked_at, _, vm = self._heap[0]
            if not vm.idle or vm.last_used != parked_at:
                heapq.heappop(self._heap)  # stale entry
                continue
            if now - parked_at > ttl_us:
                heapq.heappop(self._heap)
                self._unpark(vm)
                expired.append(vm)
            else:
                break  # the oldest survivor fixes all the rest
        return expired

    def pop_lru(self) -> Optional[PooledVm]:
        """Claim the least recently used idle VM, if any."""
        while self._heap:
            parked_at, _, vm = heapq.heappop(self._heap)
            if vm.idle and vm.last_used == parked_at:
                self._unpark(vm)
                return vm
        return None


@dataclass
class ServedInvocation:
    time_us: float
    function: str
    #: Start kind of the winning attempt; ``None`` when the arrival
    #: never started (shed, or failed before any start decision).
    kind: Optional[StartKind]
    latency_us: float
    #: Host that served the invocation (single-host schedulers use
    #: the default).
    host: str = "host0"
    #: Structured end state — see :class:`InvocationOutcome`.
    outcome: InvocationOutcome = InvocationOutcome.OK
    #: Attempts launched on its behalf (retries and hedges included;
    #: 0 for a shed arrival).
    attempts: int = 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the exporters' serving-report schema)."""
        return {
            "time_us": self.time_us,
            "function": self.function,
            "kind": self.kind.value if self.kind is not None else None,
            "latency_us": self.latency_us,
            "host": self.host,
            "outcome": self.outcome.value,
            "attempts": self.attempts,
        }


@dataclass
class FleetReport:
    """Outcome of one fleet simulation."""

    served: List[ServedInvocation] = field(default_factory=list)
    #: Memory in use (warm + running VMs) sampled at each arrival.
    memory_samples_mb: List[float] = field(default_factory=list)
    evictions: int = 0

    def count(self, kind: Optional[StartKind] = None) -> int:
        if kind is None:
            return len(self.served)
        return sum(1 for s in self.served if s.kind is kind)

    def fraction(self, kind: StartKind) -> float:
        return self.count(kind) / len(self.served) if self.served else 0.0

    def ok_invocations(self) -> List[ServedInvocation]:
        """The successfully served arrivals (ok / retried /
        hedge-won). Latency statistics are computed over these: a
        shed or failed arrival has no meaningful service latency, and
        including its sentinel value would corrupt the tails."""
        return [s for s in self.served if s.outcome in SERVED_OK]

    def outcome_counts(self) -> Dict[str, int]:
        """Arrivals per outcome, every outcome present (zeros too) so
        serialized reports have a stable shape."""
        counts = {outcome.value: 0 for outcome in InvocationOutcome}
        for s in self.served:
            counts[s.outcome.value] += 1
        return counts

    def availability(self) -> float:
        """Fraction of arrivals successfully served (1.0 when there
        were no arrivals — an empty run failed nobody)."""
        if not self.served:
            return 1.0
        return len(self.ok_invocations()) / len(self.served)

    def total_attempts(self) -> int:
        return sum(s.attempts for s in self.served)

    def retry_amplification(self) -> float:
        """Attempts launched per arrival (1.0 = no extra work; 0.0
        for an empty run). Retries and hedges both amplify."""
        if not self.served:
            return 0.0
        return self.total_attempts() / len(self.served)

    def latency_percentile(self, percentile: float) -> float:
        """Latency at ``percentile`` (0..100) by the nearest-rank
        method: the smallest observation with at least ``percentile``
        percent of the sample at or below it, microseconds. Computed
        over successfully served arrivals; 0.0 when none succeeded
        (e.g. a fully-shed overload run)."""
        ok = self.ok_invocations()
        if not ok:
            return 0.0
        ordered = sorted(s.latency_us for s in ok)
        if percentile <= 0:
            return ordered[0]
        rank = math.ceil(percentile / 100.0 * len(ordered))
        return ordered[min(len(ordered), rank) - 1]

    def mean_latency_us(self) -> float:
        ok = self.ok_invocations()
        if not ok:
            return 0.0
        return sum(s.latency_us for s in ok) / len(ok)

    def mean_memory_mb(self) -> float:
        if not self.memory_samples_mb:
            return 0.0
        return sum(self.memory_samples_mb) / len(self.memory_samples_mb)


class ClusterScheduler(abc.ABC):
    """Anything that replays an arrival trace into a report.

    The cost-table :class:`FleetSimulator` and the page-level
    :class:`repro.cluster.ClusterSimulator` both satisfy this, so
    fleet experiments can swap the fast path for the contention-aware
    path without changing their driver code.
    """

    @abc.abstractmethod
    def run(self, trace: ArrivalTrace) -> FleetReport:
        """Serve every arrival in ``trace`` and report the outcome."""


class FleetSimulator(ClusterScheduler):
    """Replays an arrival trace against measured serving costs."""

    def __init__(
        self,
        fleet: Sequence[FleetFunction],
        config: FleetConfig,
        cost_model: Optional[CostModel] = None,
        costs: Optional[Dict[str, FunctionCosts]] = None,
    ):
        """``costs`` may be supplied directly (keyed by fleet function
        name); otherwise each function's costs are measured through
        ``cost_model`` (created on demand)."""
        self.fleet = {f.name: f for f in fleet}
        self.config = config
        if costs is not None:
            self._costs = dict(costs)
        else:
            cost_model = cost_model or CostModel()
            self._costs = {
                f.name: cost_model.costs(
                    f.profile_name, config.restore_policy
                )
                for f in fleet
            }

    def run(self, trace: ArrivalTrace) -> FleetReport:
        report = FleetReport()
        idle = IdlePool()
        running: List = []  # heap of (busy_until, seq, _Vm)
        seq = itertools.count()
        has_snapshot: Dict[str, bool] = {name: False for name in self.fleet}
        memory_mb = 0.0

        # The fast path has no Environment, so the run owns a
        # standalone registry. The gauges close over this frame's
        # cells (``memory_mb`` is a nonlocal of the helpers below, so
        # the lambda reads the same cell they update).
        registry = self.registry = MetricsRegistry()
        ctr_invocations = registry.counter("fleet.scheduler.invocations")
        ctr_warm = registry.counter("fleet.scheduler.warm_starts")
        ctr_snapshot = registry.counter("fleet.scheduler.snapshot_starts")
        ctr_cold = registry.counter("fleet.scheduler.cold_starts")
        ctr_evictions = registry.counter("fleet.scheduler.evictions")
        registry.gauge(
            "fleet.scheduler.memory_in_use_mb", lambda: memory_mb
        )
        registry.gauge("fleet.scheduler.idle_vms", lambda: len(idle))

        def complete_up_to(now: float) -> None:
            nonlocal memory_mb
            while running and running[0][0] <= now:
                _, _, vm = heapq.heappop(running)
                # The first completed invocation leaves a snapshot
                # behind (the record phase, Figure 5).
                has_snapshot[vm.function] = True
                if self.config.keep_alive_ttl_us > 0:
                    vm.last_used = vm.busy_until
                    idle.park(vm)
                else:
                    memory_mb -= vm.memory_mb

        def evict_expired(now: float) -> None:
            nonlocal memory_mb
            for vm in idle.pop_expired(now, self.config.keep_alive_ttl_us):
                memory_mb -= vm.memory_mb
                report.evictions += 1
                ctr_evictions.value += 1

        def evict_lru_until_fits(extra_mb: float) -> None:
            nonlocal memory_mb
            while memory_mb + extra_mb > self.config.memory_budget_mb:
                vm = idle.pop_lru()
                if vm is None:
                    break
                memory_mb -= vm.memory_mb
                report.evictions += 1
                ctr_evictions.value += 1

        for arrival in trace.arrivals:
            now = arrival.time_us
            complete_up_to(now)
            evict_expired(now)

            name = arrival.function
            costs = self._costs[name]
            # Reuse the most recently used warm VM, if any.
            reused = idle.reuse_mru(name)
            ctr_invocations.value += 1
            if reused is not None:
                vm = reused
                kind = StartKind.WARM
                latency = costs.warm_us
                ctr_warm.value += 1
            else:
                if self.config.snapshots_enabled and has_snapshot[name]:
                    kind = StartKind.SNAPSHOT
                    latency = costs.snapshot_us
                    ctr_snapshot.value += 1
                else:
                    kind = StartKind.COLD
                    latency = costs.cold_us
                    ctr_cold.value += 1
                evict_lru_until_fits(costs.warm_memory_mb)
                memory_mb += costs.warm_memory_mb
                vm = PooledVm(
                    function=name,
                    memory_mb=costs.warm_memory_mb,
                    busy_until=0.0,
                    last_used=now,
                )
            vm.busy_until = now + latency
            vm.last_used = now
            heapq.heappush(running, (vm.busy_until, next(seq), vm))

            report.served.append(
                ServedInvocation(
                    time_us=now, function=name, kind=kind, latency_us=latency
                )
            )
            report.memory_samples_mb.append(memory_mb)

        return report
