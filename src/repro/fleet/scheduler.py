"""Event-driven fleet scheduler with keep-alive and memory budget.

Implements the serving hierarchy of paper §7.1: an invocation lands
on a warm VM if one is idle, is served from a snapshot if one exists,
and cold-boots otherwise. Warm VMs are kept alive for a TTL after
their last invocation (AWS Lambda keeps 15-60 minutes, §2.1) and are
evicted LRU-first under a host memory budget — eviction-to-snapshot
being exactly the role the paper assigns FaaSnap.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.policies import Policy
from repro.fleet.costs import CostModel, FunctionCosts
from repro.fleet.workload import ArrivalTrace, FleetFunction

US_PER_MINUTE = 60_000_000.0


class StartKind(enum.Enum):
    WARM = "warm"
    SNAPSHOT = "snapshot"
    COLD = "cold"


@dataclass(frozen=True)
class FleetConfig:
    """Scheduler policy knobs."""

    #: Restore policy used for snapshot starts.
    restore_policy: Policy = Policy.FAASNAP
    #: Keep a finished VM warm for this long (§2.1: 15-60 min at AWS).
    keep_alive_ttl_us: float = 15 * US_PER_MINUTE
    #: Host memory available for keeping VMs (warm or running), MB.
    memory_budget_mb: float = 16_384.0
    #: Disable to model a platform with no snapshot tier (warm or
    #: cold only) — the baseline FaaSnap argues against.
    snapshots_enabled: bool = True


@dataclass
class _Vm:
    function: str
    memory_mb: float
    busy_until: float
    last_used: float


@dataclass
class ServedInvocation:
    time_us: float
    function: str
    kind: StartKind
    latency_us: float


@dataclass
class FleetReport:
    """Outcome of one fleet simulation."""

    served: List[ServedInvocation] = field(default_factory=list)
    #: Memory in use (warm + running VMs) sampled at each arrival.
    memory_samples_mb: List[float] = field(default_factory=list)
    evictions: int = 0

    def count(self, kind: Optional[StartKind] = None) -> int:
        if kind is None:
            return len(self.served)
        return sum(1 for s in self.served if s.kind is kind)

    def fraction(self, kind: StartKind) -> float:
        return self.count(kind) / len(self.served) if self.served else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Latency at ``percentile`` (0..100), microseconds."""
        if not self.served:
            return 0.0
        ordered = sorted(s.latency_us for s in self.served)
        index = min(
            len(ordered) - 1, int(percentile / 100.0 * len(ordered))
        )
        return ordered[index]

    def mean_latency_us(self) -> float:
        if not self.served:
            return 0.0
        return sum(s.latency_us for s in self.served) / len(self.served)

    def mean_memory_mb(self) -> float:
        if not self.memory_samples_mb:
            return 0.0
        return sum(self.memory_samples_mb) / len(self.memory_samples_mb)


class FleetSimulator:
    """Replays an arrival trace against measured serving costs."""

    def __init__(
        self,
        fleet: Sequence[FleetFunction],
        config: FleetConfig,
        cost_model: Optional[CostModel] = None,
        costs: Optional[Dict[str, FunctionCosts]] = None,
    ):
        """``costs`` may be supplied directly (keyed by fleet function
        name); otherwise each function's costs are measured through
        ``cost_model`` (created on demand)."""
        self.fleet = {f.name: f for f in fleet}
        self.config = config
        if costs is not None:
            self._costs = dict(costs)
        else:
            cost_model = cost_model or CostModel()
            self._costs = {
                f.name: cost_model.costs(
                    f.profile_name, config.restore_policy
                )
                for f in fleet
            }

    def run(self, trace: ArrivalTrace) -> FleetReport:
        report = FleetReport()
        idle: Dict[str, List[_Vm]] = {name: [] for name in self.fleet}
        running: List = []  # heap of (busy_until, seq, _Vm)
        seq = itertools.count()
        has_snapshot: Dict[str, bool] = {name: False for name in self.fleet}
        memory_mb = 0.0

        def complete_up_to(now: float) -> None:
            nonlocal memory_mb
            while running and running[0][0] <= now:
                _, _, vm = heapq.heappop(running)
                # The first completed invocation leaves a snapshot
                # behind (the record phase, Figure 5).
                has_snapshot[vm.function] = True
                if self.config.keep_alive_ttl_us > 0:
                    vm.last_used = vm.busy_until
                    idle[vm.function].append(vm)
                else:
                    memory_mb -= vm.memory_mb

        def evict_expired(now: float) -> None:
            nonlocal memory_mb
            ttl = self.config.keep_alive_ttl_us
            for pool in idle.values():
                keep = []
                for vm in pool:
                    if now - vm.last_used > ttl:
                        memory_mb -= vm.memory_mb
                        report.evictions += 1
                    else:
                        keep.append(vm)
                pool[:] = keep

        def evict_lru_until_fits(extra_mb: float) -> None:
            nonlocal memory_mb
            candidates = [
                vm for pool in idle.values() for vm in pool
            ]
            candidates.sort(key=lambda vm: vm.last_used)
            for vm in candidates:
                if memory_mb + extra_mb <= self.config.memory_budget_mb:
                    break
                idle[vm.function].remove(vm)
                memory_mb -= vm.memory_mb
                report.evictions += 1

        for arrival in trace.arrivals:
            now = arrival.time_us
            complete_up_to(now)
            evict_expired(now)

            name = arrival.function
            costs = self._costs[name]
            pool = idle[name]
            if pool:
                # Reuse the most recently used warm VM.
                vm = max(pool, key=lambda v: v.last_used)
                pool.remove(vm)
                kind = StartKind.WARM
                latency = costs.warm_us
            else:
                if self.config.snapshots_enabled and has_snapshot[name]:
                    kind = StartKind.SNAPSHOT
                    latency = costs.snapshot_us
                else:
                    kind = StartKind.COLD
                    latency = costs.cold_us
                evict_lru_until_fits(costs.warm_memory_mb)
                memory_mb += costs.warm_memory_mb
                vm = _Vm(
                    function=name,
                    memory_mb=costs.warm_memory_mb,
                    busy_until=0.0,
                    last_used=now,
                )
            vm.busy_until = now + latency
            vm.last_used = now
            heapq.heappush(running, (vm.busy_until, next(seq), vm))

            report.served.append(
                ServedInvocation(
                    time_us=now, function=name, kind=kind, latency_us=latency
                )
            )
            report.memory_samples_mb.append(memory_mb)

        return report
