"""Per-function serving costs, measured by the core simulation.

The fleet simulator schedules thousands of invocations; replaying
each one at page granularity would be wasteful and adds nothing —
serving cost depends only on (function, start kind, restore policy),
all of which the page-level simulator measures exactly once here.

* **warm** — a warm VM serves the invocation (paper §3.1's Warm).
* **snapshot** — restore under the configured policy (Firecracker /
  REAP / FaaSnap), setup plus invocation, caches cold (§6.1's
  methodology: the pessimistic-but-fair case for a function that has
  not run recently).
* **cold** — boot the VMM and kernel, initialise the runtime, then
  run with warm-equivalent memory (nothing to page in from a
  snapshot).

Memory numbers feed the scheduler's budget: a warm VM holds its RSS;
a stored snapshot holds no memory (it lives on disk) but its restore
temporarily populates the page cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.daemon import FaaSnapPlatform
from repro.core.policies import Policy
from repro.core.restore import PlatformConfig
from repro.experiments.runner import parallel_map
from repro.workloads.base import INPUT_A, InputSpec
from repro.workloads.registry import get_profile


@dataclass(frozen=True)
class FunctionCosts:
    """Measured serving costs of one function."""

    profile_name: str
    policy: Policy
    warm_us: float
    snapshot_us: float
    cold_us: float
    #: Resident memory of a warm VM of this function, MB.
    warm_memory_mb: float

    def start_cost_us(self, kind: str) -> float:
        return {
            "warm": self.warm_us,
            "snapshot": self.snapshot_us,
            "cold": self.cold_us,
        }[kind]


class CostModel:
    """Measures and caches :class:`FunctionCosts` per (profile,
    policy) using one shared page-level platform."""

    def __init__(self, config: Optional[PlatformConfig] = None):
        self.config = config or PlatformConfig()
        self._platform = FaaSnapPlatform(self.config)
        self._cache: Dict[Tuple[str, Policy], FunctionCosts] = {}

    def costs(
        self,
        profile_name: str,
        policy: Policy,
        test_input: Optional[InputSpec] = None,
    ) -> FunctionCosts:
        """Measured costs for ``profile_name`` restored via ``policy``."""
        key = (profile_name, policy)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        profile = get_profile(profile_name)
        test_input = test_input or InputSpec(content_id=3, size_ratio=1.0)
        try:
            handle = self._platform.function(profile_name)
        except KeyError:
            handle = self._platform.register_function(profile)

        warm = self._platform.invoke(
            handle, test_input, Policy.WARM, record_input=INPUT_A
        )
        snapshot = self._platform.invoke(
            handle, test_input, policy, record_input=INPUT_A
        )
        cold_us = (
            self.config.vmm.vmm_start_us
            + self.config.vmm.cold_boot_us
            + profile.runtime_init_us
            + warm.total_us
        )
        costs = FunctionCosts(
            profile_name=profile_name,
            policy=policy,
            warm_us=warm.total_us,
            snapshot_us=snapshot.total_us,
            cold_us=cold_us,
            warm_memory_mb=warm.rss_pages * 4096 / 1e6,
        )
        self._cache[key] = costs
        return costs

    def precompute(
        self,
        pairs: Iterable[Tuple[str, Policy]],
        jobs: Optional[int] = None,
    ) -> List[FunctionCosts]:
        """Measure many (profile, policy) pairs up front, optionally in
        parallel, and seed the cache.

        Each pair is measured on its own fresh platform in both the
        serial and the parallel path, so ``jobs=1`` and ``jobs=N``
        produce identical costs. Pairs already cached are skipped.
        """
        todo = [
            (name, policy)
            for name, policy in dict.fromkeys(pairs)
            if (name, policy) not in self._cache
        ]
        payloads = [(self.config, name, policy) for name, policy in todo]
        measured = parallel_map(_measure_pair, payloads, jobs)
        for costs in measured:
            self._cache[(costs.profile_name, costs.policy)] = costs
        return measured


def _measure_pair(
    payload: Tuple[PlatformConfig, str, Policy],
) -> FunctionCosts:
    """Measure one (profile, policy) pair on a fresh platform
    (module-level so the process pool can pickle it)."""
    config, profile_name, policy = payload
    return CostModel(config).costs(profile_name, policy)
