"""Multi-host cluster serving (paper §7.1 at fleet scale).

The fleet layer answers "which start kind serves each arrival" from a
static cost table; this package answers it with physics. A
:class:`~repro.cluster.scheduler.ClusterSimulator` places arrivals
across N :class:`~repro.core.host.Host` machines on one shared
virtual clock, and every snapshot start runs the real page-level
restore on its host's own block device and page cache — so device
queue contention between concurrent restores (Fig. 10) and the
local-NVMe vs shared-remote storage gap (Fig. 11) are *emergent*,
not assumed.

* :mod:`~repro.cluster.placement` — pluggable placement policies:
  round-robin, least-loaded, snapshot-locality packing.
* :mod:`~repro.cluster.scheduler` — the cluster scheduler itself,
  with per-host keep-alive pools, memory budgets, admission limits,
  and a local-NVMe vs shared-EBS snapshot-store tier.
* :mod:`~repro.cluster.sharding` — sharded execution of the same
  run: per-host event heaps synchronized through conservative
  virtual-time windows, bit-identical for any shard count.
"""

from repro.cluster.placement import (
    PLACEMENT_NAMES,
    HostView,
    LeastLoaded,
    PlacementPolicy,
    RoundRobin,
    SnapshotLocality,
    StaticHostView,
    make_placement,
)
from repro.cluster.scheduler import (
    SNAPSHOT_TIERS,
    TIER_LOCAL_NVME,
    TIER_SHARED_EBS,
    ClusterConfig,
    ClusterReport,
    ClusterSimulator,
    HostStats,
)
from repro.cluster.sharding import (
    DEFAULT_WINDOW_US,
    ShardedClusterSimulator,
    partition_hosts,
    plan_for_host,
)

__all__ = [
    "ClusterConfig",
    "ClusterReport",
    "ClusterSimulator",
    "DEFAULT_WINDOW_US",
    "HostStats",
    "HostView",
    "LeastLoaded",
    "PLACEMENT_NAMES",
    "PlacementPolicy",
    "RoundRobin",
    "SNAPSHOT_TIERS",
    "ShardedClusterSimulator",
    "SnapshotLocality",
    "StaticHostView",
    "TIER_LOCAL_NVME",
    "TIER_SHARED_EBS",
    "make_placement",
    "partition_hosts",
    "plan_for_host",
]
