"""Placement policies: which host serves the next invocation.

A policy sees a read-only sequence of per-host views and picks an
index. The views expose exactly what production placers use:

* ``load`` — invocations currently running or queued on the host;
* ``has_idle_warm(function)`` — an idle warm VM of the function is
  parked there (reuse avoids any restore at all);
* ``has_snapshot_for(function)`` — the function's snapshot files are
  reachable from the host (always true on the shared-storage tier
  once any host has run the function).

Policies must be deterministic: ties break on the lowest host index,
and the only state a policy may keep is its own (e.g. the round-robin
cursor), so a fresh policy instance per run reproduces the same
placements.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Sequence


class HostView(abc.ABC):
    """What a placement policy may observe about one host."""

    index: int

    @property
    @abc.abstractmethod
    def load(self) -> int:
        """Invocations running or waiting for admission."""

    @abc.abstractmethod
    def has_idle_warm(self, function: str) -> bool: ...

    @abc.abstractmethod
    def has_snapshot_for(self, function: str) -> bool: ...


class PlacementPolicy(abc.ABC):
    """Chooses the host for one arriving invocation."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        """Index of the host that should serve ``function``."""


class RoundRobin(PlacementPolicy):
    """Rotate through hosts regardless of state — the baseline that
    spreads load but scatters each function's snapshots everywhere."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        index = self._next % len(hosts)
        self._next += 1
        return index


class LeastLoaded(PlacementPolicy):
    """Send each invocation to the host with the fewest running or
    queued invocations (ties to the lowest index)."""

    name = "least-loaded"

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        return min(hosts, key=lambda h: (h.load, h.index)).index


class SnapshotLocality(PlacementPolicy):
    """Pack a function onto hosts that already hold its state.

    Prefer a host with an idle warm VM of the function, then a host
    whose storage already has the function's snapshot (its restore
    may also hit warm page-cache pages); fall back to least-loaded.
    Within each preference tier ties again break on (load, index).
    """

    name = "locality"

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        warm = [h for h in hosts if h.has_idle_warm(function)]
        if warm:
            return min(warm, key=lambda h: (h.load, h.index)).index
        local = [h for h in hosts if h.has_snapshot_for(function)]
        if local:
            return min(local, key=lambda h: (h.load, h.index)).index
        return min(hosts, key=lambda h: (h.load, h.index)).index


class CountingPlacement(PlacementPolicy):
    """Decorator that mirrors an inner policy's decisions into a
    telemetry registry: a total ``cluster.placement.decisions``
    counter plus one ``cluster.placement.to.<host_id>`` counter per
    destination. Delegates ``choose`` verbatim, so placements are
    unchanged."""

    def __init__(self, inner: PlacementPolicy, registry, host_ids):
        self.inner = inner
        self.name = inner.name
        self._decisions = registry.counter("cluster.placement.decisions")
        self._per_host = [
            registry.counter(f"cluster.placement.to.{host_id}")
            for host_id in host_ids
        ]

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        index = self.inner.choose(hosts, function)
        self._decisions.value += 1
        self._per_host[index].value += 1
        return index


_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    RoundRobin.name: RoundRobin,
    LeastLoaded.name: LeastLoaded,
    SnapshotLocality.name: SnapshotLocality,
}

PLACEMENT_NAMES = tuple(sorted(_POLICIES))


def make_placement(name: str) -> PlacementPolicy:
    """A fresh policy instance by registry name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; "
            f"known: {', '.join(PLACEMENT_NAMES)}"
        ) from None
    return factory()
