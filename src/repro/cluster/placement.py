"""Placement policies: which host serves the next invocation.

A policy sees a read-only sequence of per-host views and picks a
*position into that sequence*. Callers usually pass every host, in
which case the position equals the host's global index — but wrappers
like :class:`HealthFiltered` pass filtered subsequences and map the
position back, which is why policies must not assume
``hosts[i].index == i``. The views expose exactly what production
placers use:

* ``load`` — invocations currently running or queued on the host;
* ``has_idle_warm(function)`` — an idle warm VM of the function is
  parked there (reuse avoids any restore at all);
* ``has_snapshot_for(function)`` — the function's snapshot files are
  reachable from the host (always true on the shared-storage tier
  once any host has run the function).

Policies must be deterministic: ties break on the lowest host index,
and the only state a policy may keep is its own (e.g. the round-robin
cursor), so a fresh policy instance per run reproduces the same
placements.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Sequence


class HostView(abc.ABC):
    """What a placement policy may observe about one host."""

    index: int

    @property
    @abc.abstractmethod
    def load(self) -> int:
        """Invocations running or waiting for admission."""

    @abc.abstractmethod
    def has_idle_warm(self, function: str) -> bool: ...

    @abc.abstractmethod
    def has_snapshot_for(self, function: str) -> bool: ...


@dataclass
class StaticHostView(HostView):
    """A :class:`HostView` over a *snapshot* of host state.

    Sharded cluster execution's router places arrivals without live
    access to host objects (they live in worker processes), so it
    builds one of these per host from the state each host published at
    the last window barrier. ``base_load`` is the load at the barrier;
    ``projected`` counts dispatches the router has since routed there
    within the current window, so same-window arrivals see each
    other's load exactly like same-instant arrivals do on the
    single-heap path. The ``healthy`` field makes the view compatible
    with :class:`HealthFiltered`.
    """

    index: int
    base_load: int = 0
    projected: int = 0
    idle_warm: FrozenSet[str] = field(default_factory=frozenset)
    snapshots: FrozenSet[str] = field(default_factory=frozenset)
    healthy: bool = True

    @property
    def load(self) -> int:
        return self.base_load + self.projected

    def has_idle_warm(self, function: str) -> bool:
        return function in self.idle_warm

    def has_snapshot_for(self, function: str) -> bool:
        return function in self.snapshots


class PlacementPolicy(abc.ABC):
    """Chooses the host for one arriving invocation."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        """Position in ``hosts`` of the host that should serve
        ``function``. ``hosts`` is non-empty but may be a filtered
        subsequence of the cluster (so ``hosts[i].index`` need not
        equal ``i``)."""


class RoundRobin(PlacementPolicy):
    """Rotate through hosts regardless of state — the baseline that
    spreads load but scatters each function's snapshots everywhere."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        index = self._next % len(hosts)
        self._next += 1
        return index


class LeastLoaded(PlacementPolicy):
    """Send each invocation to the host with the fewest running or
    queued invocations (ties to the lowest index)."""

    name = "least-loaded"

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        return _best(hosts, range(len(hosts)))


class SnapshotLocality(PlacementPolicy):
    """Pack a function onto hosts that already hold its state.

    Prefer a host with an idle warm VM of the function, then a host
    whose storage already has the function's snapshot (its restore
    may also hit warm page-cache pages); fall back to least-loaded.
    Within each preference tier ties again break on (load, index).
    """

    name = "locality"

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        warm = [
            i for i, h in enumerate(hosts) if h.has_idle_warm(function)
        ]
        if warm:
            return _best(hosts, warm)
        local = [
            i for i, h in enumerate(hosts) if h.has_snapshot_for(function)
        ]
        if local:
            return _best(hosts, local)
        return _best(hosts, range(len(hosts)))


def _best(hosts: Sequence[HostView], positions) -> int:
    """Position (from ``positions``) of the least-loaded candidate,
    ties broken by global host index — identical placements to the
    old return-the-``.index`` form whenever the full host list is
    passed, but correct on filtered subsequences too."""
    return min(positions, key=lambda i: (hosts[i].load, hosts[i].index))


class HealthFiltered(PlacementPolicy):
    """Decorator that hides unhealthy hosts from an inner policy.

    Views carrying a falsy ``healthy`` attribute (drained or crashed
    hosts, as maintained by
    :class:`~repro.faults.health.HealthMonitor`) are dropped before
    the inner policy chooses; the chosen position is then mapped back
    into the caller's sequence. When *every* host is unhealthy the
    full list is used unfiltered — routing somewhere and letting the
    robust serve path fail fast beats dropping the arrival with no
    defined outcome. Views without a ``healthy`` attribute are
    treated as healthy, so the wrapper is inert on schedulers that
    predate health tracking."""

    def __init__(self, inner: PlacementPolicy):
        self.inner = inner
        self.name = inner.name
        #: Placements that had to route around >= 1 unhealthy host.
        self.filtered_choices = 0

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        healthy = [
            i
            for i, h in enumerate(hosts)
            if getattr(h, "healthy", True)
        ]
        if not healthy or len(healthy) == len(hosts):
            return self.inner.choose(hosts, function)
        self.filtered_choices += 1
        views = [hosts[i] for i in healthy]
        return healthy[self.inner.choose(views, function)]


class HotSwappablePlacement(PlacementPolicy):
    """Decorator whose inner policy can be replaced mid-run.

    The live service's ``swap_placement`` command re-points the
    cluster's placement at a *fresh* instance of another registered
    policy while invocations are in flight. A fresh instance (rather
    than a paused old one) keeps the hand-off deterministic: the new
    policy starts from its initial state (e.g. a round-robin cursor at
    0) regardless of what ran before, so a journaled command stream
    replays to identical placements. Delegation is a plain method
    call with no state of its own, so wrapping a batch run in this
    decorator changes nothing."""

    def __init__(self, inner: PlacementPolicy):
        self.inner = inner
        self.name = inner.name
        #: Completed ``swap`` calls (telemetry for the service layer).
        self.swaps = 0

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        return self.inner.choose(hosts, function)

    def swap(self, name: str) -> PlacementPolicy:
        """Install a fresh instance of policy ``name`` and return it."""
        self.inner = make_placement(name)
        self.name = self.inner.name
        self.swaps += 1
        return self.inner


class CountingPlacement(PlacementPolicy):
    """Decorator that mirrors an inner policy's decisions into a
    telemetry registry: a total ``cluster.placement.decisions``
    counter plus one ``cluster.placement.to.<host_id>`` counter per
    destination. Delegates ``choose`` verbatim, so placements are
    unchanged."""

    def __init__(self, inner: PlacementPolicy, registry, host_ids):
        self.inner = inner
        self.name = inner.name
        self._registry = registry
        self._decisions = registry.counter("cluster.placement.decisions")
        self._per_host = [
            registry.counter(f"cluster.placement.to.{host_id}")
            for host_id in host_ids
        ]

    def choose(self, hosts: Sequence[HostView], function: str) -> int:
        index = self.inner.choose(hosts, function)
        self._decisions.value += 1
        self._per_host[index].value += 1
        return index

    def add_host(self, host_id: str) -> None:
        """Extend the per-destination counters for a host added to the
        cluster mid-run (positions are appended in host-index order,
        matching the scheduler's host list)."""
        self._per_host.append(
            self._registry.counter(f"cluster.placement.to.{host_id}")
        )


_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    RoundRobin.name: RoundRobin,
    LeastLoaded.name: LeastLoaded,
    SnapshotLocality.name: SnapshotLocality,
}

PLACEMENT_NAMES = tuple(sorted(_POLICIES))


def make_placement(name: str) -> PlacementPolicy:
    """A fresh policy instance by registry name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; "
            f"known: {', '.join(PLACEMENT_NAMES)}"
        ) from None
    return factory()
