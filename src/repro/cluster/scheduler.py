"""Contention-aware multi-host cluster serving.

:class:`ClusterSimulator` serves an arrival trace across ``N``
simulated :class:`~repro.core.host.Host` machines sharing one virtual
clock. It keeps the fleet scheduler's serving hierarchy (warm reuse,
snapshot restore, cold boot, keep-alive TTL, per-host memory budget)
but replaces the static :class:`~repro.fleet.costs.FunctionCosts`
table with the *actual page-level simulation*: every snapshot start
runs the full restore — loader reads, guest faults, device queueing —
on its host's own block device and page cache. Consequences the cost
table cannot express become emergent:

* concurrent restores on one host queue on its device (Fig. 10's
  bursty-parallel effect), so 8 simultaneous starts are each slower
  than an uncontended one;
* with ``cold_cache_between_runs=False``, back-to-back restores of
  the same function hit still-resident page-cache pages and speed up;
* the shared-storage tier funnels every host's restores through one
  remote device (Fig. 11's scenario), while the local-NVMe tier gives
  each host its own.

In the uncontended limit (one host, arrivals spaced apart,
``cold_cache_between_runs=True``) the page-level path reproduces the
cost-table latencies, because the cost model measures exactly this
situation; a regression test pins the two within 1%.

Timeline: the record phases that create each function's snapshot
artefacts run in a *prep* epoch before the trace starts (the trace's
``t=0`` is the end of prep), mirroring how the fleet layer's cost
measurement happens outside the replayed trace. Whether the
*scheduler* may use a snapshot still follows fleet semantics — a
function's first completed invocation leaves its snapshot behind —
unless ``assume_snapshots_exist`` pre-populates them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Set

from repro.cluster.placement import (
    CountingPlacement,
    HealthFiltered,
    HostView,
    HotSwappablePlacement,
    PlacementPolicy,
    make_placement,
)
from repro.faults import (
    DISABLED_DURABILITY,
    DISABLED_RECOVERY,
    DeadlineExceeded,
    DeviceError,
    DurabilityManager,
    DurabilityPolicy,
    FaultInjector,
    FaultPlan,
    HealthMonitor,
    HedgeTracker,
    HostCrashed,
    RecoveryPolicy,
    RetryBudget,
    SnapshotCorrupted,
)
from repro.faults.durability import VERIFY_CORRUPT, VERIFY_SILENT
from repro.faults.errors import FaultError
from repro.metrics.causal import ROUTER_SRC, TraceContext
from repro.metrics.flight import CLUSTER_RING
from repro.metrics.telemetry import Sampler
from repro.metrics.tracing import Tracer
from repro.core.host import Host
from repro.core.policies import Policy
from repro.core.restore import PlatformConfig, RecordArtifacts
from repro.fleet.scheduler import (
    ClusterScheduler,
    FleetReport,
    IdlePool,
    InvocationOutcome,
    PooledVm,
    ServedInvocation,
    StartKind,
    US_PER_MINUTE,
)
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction
from repro.sim import AllFailed, Environment, Event, Interrupt, Resource
from repro.storage.device import BlockDevice
from repro.storage.filestore import PAGE_SIZE, FileStore
from repro.storage.presets import EBS_IO2
from repro.workloads.base import INPUT_A, InputSpec, WorkloadProfile
from repro.workloads.registry import get_profile

#: Snapshot-store tiers: every host restores from its own NVMe, or
#: all hosts share one remote EBS-like volume (paper §6.5 / Fig. 11).
TIER_LOCAL_NVME = "local-nvme"
TIER_SHARED_EBS = "shared-ebs"
SNAPSHOT_TIERS = (TIER_LOCAL_NVME, TIER_SHARED_EBS)

#: Default cost-model test input (``CostModel.costs`` uses the same),
#: so the uncontended cluster reproduces the cost table exactly.
DEFAULT_TEST_INPUT = InputSpec(content_id=3, size_ratio=1.0)

#: Distinguishes "parameter not given" (use the host's run tracer)
#: from an explicit ``tracer=None``.
_UNSET = object()


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster topology and scheduling policy knobs."""

    #: Number of simulated hosts sharing the virtual clock.
    num_hosts: int = 1
    #: Placement policy registry name (see
    #: :data:`repro.cluster.placement.PLACEMENT_NAMES`).
    placement: str = "round-robin"
    #: Restore policy used for snapshot starts.
    restore_policy: Policy = Policy.FAASNAP
    #: Keep a finished VM warm for this long (§2.1).
    keep_alive_ttl_us: float = 15 * US_PER_MINUTE
    #: Memory available for VMs on EACH host, MB.
    memory_budget_mb: float = 16_384.0
    #: Disable to model a platform with no snapshot tier.
    snapshots_enabled: bool = True
    #: Where snapshot files live: per-host NVMe or one shared volume.
    snapshot_tier: str = TIER_LOCAL_NVME
    #: Admission limit: invocations allowed to run concurrently on
    #: one host (None = unlimited); excess arrivals queue FIFO.
    max_concurrent_per_host: Optional[int] = None
    #: Evict a function's snapshot pages from the host page cache
    #: before an uncontended restore — the paper's between-tests
    #: methodology (§6.1), and what the cost table assumes. Disable to
    #: let back-to-back restores reuse still-resident pages.
    cold_cache_between_runs: bool = True
    #: Treat every function's snapshot as already captured, instead
    #: of requiring a first completed invocation (fleet semantics).
    assume_snapshots_exist: bool = False
    #: Inputs for the serving invocations / the prep record phases.
    test_input: InputSpec = DEFAULT_TEST_INPUT
    record_input: InputSpec = INPUT_A
    #: Per-host platform tunables (device spec, batching, CPU slots).
    platform: PlatformConfig = PlatformConfig()
    #: Self-healing knobs (retries, hedging, health, shedding,
    #: deadlines). The default disables everything, which keeps the
    #: legacy serving path and its exact event schedule.
    recovery: RecoveryPolicy = DISABLED_RECOVERY
    #: Run seed: the environment's single randomness stream (fault
    #: error draws, backoff jitter) derives from it.
    seed: int = 0
    #: Snapshot durability plane (per-chunk checksums, replicas,
    #: verified restores, scrubbing). Disabled by default, which
    #: keeps the run bit-identical to pre-durability behaviour;
    #: enabling it routes serving through the robust path.
    durability: DurabilityPolicy = DISABLED_DURABILITY

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise ValueError("need at least one host")
        if self.snapshot_tier not in SNAPSHOT_TIERS:
            raise ValueError(
                f"unknown snapshot tier {self.snapshot_tier!r}; "
                f"known: {', '.join(SNAPSHOT_TIERS)}"
            )
        if (
            self.max_concurrent_per_host is not None
            and self.max_concurrent_per_host < 1
        ):
            raise ValueError("max_concurrent_per_host must be >= 1")


@dataclass
class HostStats:
    """Per-host accounting of one cluster run."""

    host: str
    invocations: int = 0
    warm_starts: int = 0
    snapshot_starts: int = 0
    cold_starts: int = 0
    evictions: int = 0
    #: Time arrivals spent waiting for an admission slot, microseconds.
    admission_wait_us: float = 0.0
    #: Snapshot-device counters over the serving epoch. On the
    #: shared-storage tier every host reports the shared device, so
    #: these repeat the cluster-wide totals.
    device_requests: int = 0
    device_bytes_read: int = 0
    device_queue_wait_us: float = 0.0
    #: Robustness accounting (all zero on a fault-free run).
    failures: int = 0
    shed: int = 0
    retries: int = 0
    hedges: int = 0
    degraded_starts: int = 0
    snapshot_corruptions: int = 0
    #: Keep-alive VMs lost to host crashes (not TTL/memory evictions).
    crash_vm_losses: int = 0


@dataclass
class ClusterReport(FleetReport):
    """A :class:`FleetReport` plus per-host attribution."""

    host_stats: Dict[str, HostStats] = field(default_factory=dict)
    #: Virtual time the prep epoch (record phases) took.
    prep_us: float = 0.0
    placement: str = ""
    snapshot_tier: str = TIER_LOCAL_NVME
    #: Injector + durability counters (empty on an unarmed run).
    fault_summary: Dict[str, int] = field(default_factory=dict)

    def count_on(self, host: str) -> int:
        return sum(1 for s in self.served if s.host == host)


class _HostState(HostView):
    """One host plus the scheduler's bookkeeping about it."""

    def __init__(self, index: int, host: Host, config: ClusterConfig):
        self.index = index
        self.host = host
        self.idle = IdlePool()
        self.active = 0
        self.queued = 0
        self.memory_mb = 0.0
        self.admission: Optional[Resource] = (
            Resource(host.env, config.max_concurrent_per_host)
            if config.max_concurrent_per_host is not None
            else None
        )
        #: Functions whose snapshot the scheduler may restore here
        #: (shared-storage hosts alias one cluster-wide set).
        self.snapshots: Set[str] = set()
        #: Learned warm RSS per function, MB.
        self.known_memory: Dict[str, float] = {}
        #: Snapshot restores in flight, per function — guards the
        #: cold-cache eviction so one restore never evicts pages a
        #: concurrent restore of the same function is loading.
        self.disk_active: Dict[str, int] = {}
        #: Load-once loader gates, refcounted per snapshot so only
        #: *overlapping* restores share one (a later restore must
        #: re-run the loader; the pages may have been evicted).
        self.gates: Dict[str, List[Any]] = {}
        self.stats = HostStats(host=host.host_id)
        self.tracer = None
        #: Health plane (read by :class:`HealthFiltered` placement).
        self.healthy = True
        #: Operator-drained: out of rotation by command, not by
        #: failure — the health monitor must not reintegrate it.
        self.drained = False
        #: Recent attempt-failure timestamps (health monitor input).
        self.error_times: List[float] = []
        #: Last instant the host looked bad (monitor bookkeeping).
        self.last_bad_us = 0.0
        #: Live attempt processes, interrupted en masse on crash.
        #: A dict used as an ordered set: crash-time interrupts must
        #: run in launch order, not object-id order, or the event
        #: schedule (and thus every jittered backoff draw) would vary
        #: between identically-seeded runs.
        self.attempt_procs: Dict[Any, None] = {}

    # -- HostView ------------------------------------------------------

    @property
    def load(self) -> int:
        return self.active + self.queued

    def has_idle_warm(self, function: str) -> bool:
        return self.idle.has_idle(function)

    def has_snapshot_for(self, function: str) -> bool:
        return function in self.snapshots

    # -- loader gates --------------------------------------------------

    def acquire_gate(self, artifacts: RecordArtifacts) -> set:
        key = artifacts.warm_snapshot.memory_file.name
        entry = self.gates.get(key)
        if entry is None:
            entry = self.gates[key] = [set(), 0]
        entry[1] += 1
        return entry[0]

    def release_gate(self, artifacts: RecordArtifacts) -> None:
        key = artifacts.warm_snapshot.memory_file.name
        entry = self.gates[key]
        entry[1] -= 1
        if entry[1] == 0:
            del self.gates[key]


class ClusterSimulator(ClusterScheduler):
    """Serves a fleet trace on N page-level simulated hosts."""

    def __init__(
        self,
        fleet: Sequence[FleetFunction],
        config: Optional[ClusterConfig] = None,
    ):
        self.fleet = list(fleet)
        names = [f.name for f in self.fleet]
        if len(set(names)) != len(names):
            raise ValueError("fleet function names must be unique")
        self.config = config or ClusterConfig()
        #: Each fleet function gets its own clone of its Table 2
        #: profile, so distinct functions have distinct snapshot files
        #: even when they share a behaviour profile.
        self._profiles: Dict[str, WorkloadProfile] = {
            f.name: dataclasses.replace(
                get_profile(f.profile_name), name=f.name
            )
            for f in self.fleet
        }

    # -- public entry points -------------------------------------------

    def run(
        self,
        trace: ArrivalTrace,
        tracer=None,
        sampler_interval_us: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        causal=None,
        slo=None,
        flight=None,
    ) -> ClusterReport:
        """Serve every arrival; fresh hosts and a fresh clock per
        call, so repeated runs are bit-identical.

        ``tracer`` (a :class:`repro.metrics.tracing.Tracer`) collects
        a span tree per served invocation, each span tagged with the
        id of the host that ran it. ``sampler_interval_us`` turns on a
        virtual-time gauge sampler at that cadence; its time series is
        available as ``self.sampler`` after the run, and sampling does
        not change any simulated result (the perf harness's
        perturbation guard pins this).

        ``fault_plan`` replays a :class:`~repro.faults.FaultPlan`
        against the run, with fault times relative to the end of the
        prep epoch. Passing a plan (even an empty one) or enabling
        any :class:`~repro.faults.RecoveryPolicy` feature routes
        serving through the robust path — which with an empty plan
        and idle features produces the same invocation outcomes and
        latencies as the legacy inline path (the perf harness gates
        this parity).

        The observability plane rides along the same way: ``causal``
        (a :class:`~repro.metrics.causal.CausalTracer`), ``slo`` (a
        :class:`~repro.metrics.slo.SloMonitor`) and ``flight`` (a
        :class:`~repro.metrics.flight.FlightRecorder`) are pure
        recorders — with all three attached the run's latency
        checksum is bit-identical to an instrument-free run (the perf
        harness's observability guard pins this).

        Since the service refactor this is a thin wrapper: the batch
        run is one canned command stream (inject everything, then
        drain) replayed through the :class:`~repro.service.core.
        ClusterService` serving core, bit-identical to the historical
        inline driver loop (the perf harness's cluster checksums gate
        the equivalence).
        """
        from repro.service.core import ClusterService

        service = ClusterService(
            self,
            tracer=tracer,
            sampler_interval_us=sampler_interval_us,
            fault_plan=fault_plan,
            causal=causal,
            slo=slo,
            flight=flight,
        )
        return service.run_batch(trace)

    def _host_id(self, index: int) -> str:
        """Global name of host ``index``. Sharded execution overrides
        this so each single-host shard sim keeps its cluster-wide
        name."""
        return f"host{index}"

    def _make_retry_budget(self, recovery: RecoveryPolicy) -> RetryBudget:
        """The run's retry budget. Sharded execution overrides this to
        hand each host one partition of the cluster-wide bucket."""
        return RetryBudget(
            recovery.retry_budget_min, recovery.retry_budget_ratio
        )

    def _begin_run(self, tracer, fault_plan: Optional[FaultPlan]) -> Environment:
        """Set up everything a run needs up to (but excluding) the
        driver process: environment, report, placement, counters,
        fault machinery, hosts, health monitor. Split out of ``run``
        so the sharded execution path can reuse it verbatim for its
        per-host sims."""
        env = Environment(seed=self.config.seed)
        self.env = env
        self.registry = env.metrics
        recovery = self.config.recovery
        # Observability plane. The service attaches these (or a shard
        # host sim pre-binds ``_causal_rec``) *before* ``_begin_run``;
        # everything is pure recording on the side of the heap, so an
        # attached plane leaves the event schedule untouched.
        self._causal = getattr(self, "_causal", None)
        rec = getattr(self, "_causal_rec", None)
        if rec is None and self._causal is not None:
            rec = self._causal.recorder(ROUTER_SRC)
        self._causal_rec = rec
        self._slo = getattr(self, "_slo", None)
        self._flight = getattr(self, "_flight", None)
        self._obs_epoch_us = 0.0
        self._inv_seq = 0
        #: Armed = the run wants the robust serving path. An empty
        #: plan still arms it (you asked for fault machinery; you get
        #: its code path, which must then be behaviour-identical).
        #: The durability plane also arms it: verified restores and
        #: replica failover live on the attempt path.
        self._armed = (
            fault_plan is not None
            or bool(recovery.armed_features)
            or self.config.durability.enabled
        )
        self._report = ClusterReport(
            placement=self.config.placement,
            snapshot_tier=self.config.snapshot_tier,
        )
        # Placement chain, innermost out: the configured policy, a
        # hot-swap shim (the live service's ``swap_placement``), a
        # health filter, and telemetry counting. The health filter is
        # always present — it delegates untouched while every host is
        # healthy, so the unarmed batch path keeps its exact event
        # schedule, and live drain/crash state works even on runs that
        # never armed the fault machinery.
        self._hot_placement = HotSwappablePlacement(
            make_placement(self.config.placement)
        )
        inner: PlacementPolicy = HealthFiltered(self._hot_placement)
        self._failover_placement = inner
        self._placement: PlacementPolicy = CountingPlacement(
            inner,
            self.registry,
            [self._host_id(i) for i in range(self.config.num_hosts)],
        )
        counter = self.registry.counter
        self._ctr_invocations = counter("cluster.scheduler.invocations")
        self._ctr_warm = counter("cluster.scheduler.warm_starts")
        self._ctr_snapshot = counter("cluster.scheduler.snapshot_starts")
        self._ctr_cold = counter("cluster.scheduler.cold_starts")
        self._ctr_evictions = counter("cluster.scheduler.evictions")
        self.injector: Optional[FaultInjector] = None
        self.monitor: Optional[HealthMonitor] = None
        self.durability: Optional[DurabilityManager] = None
        self._retry_budget: Optional[RetryBudget] = None
        self._hedge_tracker: Optional[HedgeTracker] = None
        self._checksum_cache: Dict[Any, Any] = {}
        self._robust_ready = False
        if self._armed:
            self._install_robust_machinery()
            self.injector = FaultInjector(
                env, fault_plan, observer=self._fault_observer
            )
        self._build_hosts(env, tracer)
        self._host_by_id = {hs.host.host_id: hs for hs in self._hosts}
        if self.config.durability.enabled:
            self.durability = DurabilityManager(
                env,
                self.config.durability,
                checksum_fn=self._snapshot_checksums,
                budget_fn=lambda: self._retry_budget,
                observer=self._durability_observer,
            )
            if self.injector is not None:
                self.injector.durability = self.durability
        if self._armed and recovery.health.enabled:
            self.monitor = HealthMonitor(
                env,
                recovery.health,
                self._hosts,
                on_drain=self._on_health_drain,
                on_reintegrate=self._on_health_reintegrate,
            )
        return env

    def _install_robust_machinery(self) -> None:
        """Instruments and policy objects the robust serving path
        needs (retry budget, hedge tracker, failure counters). Called
        at ``_begin_run`` for armed runs, or lazily the first time a
        live ``arm`` command upgrades an unarmed run. Idempotent —
        re-arming keeps the run's budget and counters."""
        if self._robust_ready:
            return
        self._robust_ready = True
        recovery = self.config.recovery
        counter = self.registry.counter
        self._retry_budget = self._make_retry_budget(recovery)
        self._hedge_tracker = HedgeTracker(recovery.hedge)
        self._ctr_failed = counter("cluster.scheduler.failed")
        self._ctr_shed = counter("cluster.scheduler.shed")
        self._ctr_retries = counter("retry.attempts")
        self._ctr_degraded = counter("cluster.scheduler.degraded_starts")
        self._ctr_corrupt = counter(
            "cluster.scheduler.snapshot_corruptions"
        )
        budget = self._retry_budget
        self.registry.pull_counter("retry.spent", lambda: budget.spent)
        self.registry.pull_counter("retry.denied", lambda: budget.denied)
        tracker = self._hedge_tracker
        self.registry.pull_counter("hedge.fired", lambda: tracker.fired)
        self.registry.pull_counter("hedge.won", lambda: tracker.won)
        self.registry.pull_counter(
            "hedge.cancelled", lambda: tracker.cancelled
        )

    def _finish_run(self) -> ClusterReport:
        """Fold device stats into the report and canonicalise its
        order; the tail end of ``run``, shared with sharded
        execution's per-host sims."""
        report = self._report
        for hs in self._hosts:
            stats = hs.stats
            stats.device_requests = hs.host.device.stats.requests
            stats.device_bytes_read = hs.host.device.stats.bytes_read
            stats.device_queue_wait_us = hs.host.device.stats.queue_wait_us
            report.host_stats[stats.host] = stats
        if self.injector is not None:
            report.fault_summary = self.injector.summary()
        #: Merged durability event stream of the run (the sharded
        #: path overwrites this with its cross-shard merge).
        self.durability_events = (
            list(self.durability.events)
            if self.durability is not None
            else []
        )
        # Completion order depends on latencies; report in the
        # canonical arrival order instead so reports compare equal
        # across runs regardless of how service times interleave.
        report.served.sort(key=lambda s: (s.time_us, s.function))
        return report

    # -- construction --------------------------------------------------

    def _build_hosts(self, env: Environment, tracer) -> None:
        config = self.config
        self._run_tracer = tracer
        shared_store: Optional[FileStore] = None
        self._shared_device: Optional[BlockDevice] = None
        if config.snapshot_tier == TIER_SHARED_EBS:
            shared_device = BlockDevice(
                env, EBS_IO2, metrics_prefix="cluster.shared_device"
            )
            self._shared_device = shared_device
            shared_store = FileStore(env, shared_device)
        self._shared_store = shared_store
        self._hosts: List[_HostState] = []
        self._shared_snapshots: Set[str] = set()
        for index in range(config.num_hosts):
            self._hosts.append(self._make_host_state(index))

    def _make_host_state(self, index: int) -> _HostState:
        """One host plus its bookkeeping and gauges — used both at
        construction and when the live service adds a host mid-run."""
        config = self.config
        host = Host(
            self.env,
            config=config.platform,
            host_id=self._host_id(index),
            store=self._shared_store,
        )
        hs = _HostState(index, host, config)
        if self._shared_store is not None:
            # One volume: a snapshot captured anywhere restores
            # anywhere.
            hs.snapshots = self._shared_snapshots
        if self._run_tracer is not None:
            hs.tracer = self._run_tracer.tagged(host=host.host_id)
        gauge = self.registry.gauge
        host_id = host.host_id
        gauge(
            f"{host_id}.scheduler.active", lambda hs=hs: hs.active
        )
        gauge(
            f"{host_id}.scheduler.queued", lambda hs=hs: hs.queued
        )
        gauge(
            f"{host_id}.scheduler.idle_vms",
            lambda hs=hs: len(hs.idle),
        )
        gauge(
            f"{host_id}.scheduler.memory_mb",
            lambda hs=hs: hs.memory_mb,
        )
        return hs

    def _record_plan(self) -> List[Policy]:
        """Record-phase policies needed per function: every start kind
        eventually runs a plain (sanitize=False) invocation — warm
        reuse and cold boots both do — and FaaSnap-family restores
        additionally need the sanitized record."""
        plan = [Policy.WARM]
        if self.config.restore_policy.is_faasnap_family:
            plan.append(self.config.restore_policy)
        elif self.config.restore_policy is not Policy.WARM:
            # REAP / Firecracker / cached share the plain record; the
            # plain record already produces their artefacts.
            pass
        return plan

    def _prepare(self) -> Generator[Event, Any, None]:
        """Prep epoch: run every needed record phase, then return the
        hosts to a cold-cache state."""
        config = self.config
        shared = config.snapshot_tier == TIER_SHARED_EBS
        recorders = self._hosts[:1] if shared else self._hosts
        for hs in recorders:
            for fleet_fn in self.fleet:
                profile = self._profiles[fleet_fn.name]
                for policy in self._record_plan():
                    artifacts = yield from hs.host.record_process(
                        profile, config.record_input, policy
                    )
                    if shared:
                        for other in self._hosts[1:]:
                            other.host.adopt_artifacts(
                                config.record_input, artifacts
                            )
        for hs in self._hosts:
            hs.host.drop_caches()

    # -- serving core --------------------------------------------------
    #
    # The historical inline ``_driver(trace)`` loop is gone: the
    # :class:`~repro.service.core.ClusterService` pump owns the loop
    # and calls these three hooks, which carry its exact per-arrival
    # body. Splitting here (epoch start / one dispatch / epoch stop)
    # is what lets the same serving core run both the canned batch
    # replay and the incremental command-driven mode.

    def _start_serving_epoch(self) -> float:
        """Transition from prep to serving: stamp the epoch, arm the
        fault injector against it, start the health monitor. Returns
        the epoch instant (arrival ``time_us`` values are relative to
        it)."""
        prep_end = self.env.now
        self._report.prep_us = prep_end
        # Observability times are serving-relative, like arrivals and
        # fault plans — independent of how long prep took.
        self._obs_epoch_us = prep_end
        if self.injector is not None:
            # Fault times are relative to the serving epoch, so a
            # plan is independent of how long prep happened to take.
            self.injector.arm(self, epoch_us=prep_end)
        if self.monitor is not None:
            self.monitor.start()
        if self.durability is not None:
            for hs in self._hosts:
                self.durability.start_scrubber(hs.host.host_id)
        return prep_end

    def _dispatch_arrival(
        self, arrival: Arrival, instant: float, processes: List[Any]
    ):
        """Place and launch one arrival at the current instant — the
        verbatim per-arrival body of the old driver loop. The serve
        path is chosen per dispatch (not hoisted) so a live ``arm``
        command flips subsequent arrivals onto the robust path."""
        env = self.env
        for hs in self._hosts:
            self._evict_expired(hs, env.now)
        index = self._placement.choose(self._hosts, arrival.function)
        hs = self._hosts[index]
        # Count the placement immediately — the serve process only
        # starts after the driver yields, and same-instant arrivals
        # must see each other's load.
        hs.queued += 1
        ctx = None
        if self._causal is not None:
            inv_id = self._inv_seq
            self._inv_seq += 1
            self._causal.register(inv_id, arrival.function, arrival.time_us)
            ctx = TraceContext(self._causal_rec, inv_id)
            ctx.emit(
                self._obs_now(),
                "dispatch",
                host=hs.host.host_id,
                armed=self._armed,
            )
        self._flight_record(
            hs.host.host_id, "dispatch", function=arrival.function
        )
        serve = self._serve_robust if self._armed else self._serve
        proc = env.process(
            serve(hs, arrival, instant, ctx),
            name=f"serve:{arrival.function}@{hs.host.host_id}",
        )
        processes.append(proc)
        # Sampled at each arrival, before its VM reserves memory —
        # in-use memory across all hosts.
        self._report.memory_samples_mb.append(
            sum(h.memory_mb for h in self._hosts)
        )
        return proc

    def _stop_serving_epoch(self) -> None:
        """Tear down the serving epoch's periodic machinery."""
        if self.monitor is not None:
            self.monitor.stop()
        if self.durability is not None:
            self.durability.stop()

    # -- observability plane --------------------------------------------
    #
    # Causal tracing, the SLO monitor, and the flight recorder are all
    # *recording-only*: no helper below creates a simulation event,
    # draws from any RNG, or changes a branch the heap takes. That is
    # the zero-perturbation contract — the perf harness runs the
    # cluster workload with all three attached and requires the exact
    # latency checksum of the bare run.

    def _obs_now(self) -> float:
        """Current virtual time relative to the serving epoch."""
        return self.env.now - self._obs_epoch_us

    def _attempt_tracer(self, hs: "_HostState"):
        """An ephemeral span tracer for one attempt's restore phases.

        Used only when causal tracing is on: the attempt's span tree
        is folded into the causal log as ``phase`` events afterwards
        (and grafted onto the run tracer's document if one is also
        attached), via :meth:`_fold_phases`.
        """
        return Tracer(self.env, default_tags={"host": hs.host.host_id})

    def _fold_phases(self, hs: "_HostState", ctx, eph) -> None:
        if eph is None:
            return
        for root in eph.roots:
            ctx.emit_phases(root, self._obs_epoch_us)
        if hs.tracer is not None:
            hs.tracer.roots.extend(eph.roots)

    def _record_served(self, served: ServedInvocation) -> None:
        """Append one outcome to the report and feed the SLO/flight
        planes. The single funnel for every serving path."""
        self._report.served.append(served)
        if self._slo is None and self._flight is None:
            return
        t_us = self._obs_now()
        ok = served.outcome not in (
            InvocationOutcome.FAILED,
            InvocationOutcome.SHED,
        )
        fired = ()
        if self._slo is not None:
            fired = self._slo.observe(t_us, served.latency_us, ok)
        if self._flight is not None:
            self._flight.record(
                t_us,
                served.host,
                "served",
                function=served.function,
                outcome=served.outcome.value,
                latency_us=round(served.latency_us, 3),
                attempts=served.attempts,
            )
            for alert in fired:
                self._flight.record(
                    t_us,
                    CLUSTER_RING,
                    "slo.alert",
                    objective=alert["objective"],
                    rule=alert["rule"],
                )
                self._flight_dump("burn-rate-alert", alert=alert)
            if served.outcome is InvocationOutcome.FAILED:
                self._flight_dump(
                    "invocation-failed",
                    function=served.function,
                    host=served.host,
                    attempts=served.attempts,
                )

    def _flight_record(self, host: str, kind: str, **detail: Any) -> None:
        if self._flight is not None:
            self._flight.record(self._obs_now(), host, kind, **detail)

    def _flight_dump(self, reason: str, **context: Any) -> None:
        """Snapshot the flight rings into a postmortem, annotated with
        whatever health/SLO/recovery state the run has."""
        if self._flight is None:
            return
        if self._slo is not None and "slo" not in context:
            context["slo"] = self._slo.status(self._obs_now())
        if self.monitor is not None:
            context["health"] = self.monitor.summary()
        if self._retry_budget is not None:
            context["retry_budget"] = self._retry_budget.summary()
        if self._hedge_tracker is not None:
            context["hedging"] = self._hedge_tracker.summary()
        context["hosts"] = {
            hs.host.host_id: {
                "healthy": hs.healthy,
                "crashed": hs.host.crashed,
                "active": hs.active,
                "queued": hs.queued,
            }
            for hs in self._hosts
        }
        self._flight.dump(self._obs_now(), reason, **context)

    def _fault_observer(self, kind: str, scope: str, **detail: Any) -> None:
        """Injector callback — fault applications land in the flight
        ring of the host (or scope) they hit."""
        self._flight_record(scope, kind, **detail)

    # -- durability plane -----------------------------------------------

    def _snapshot_checksums(self, host_id: str, function: str):
        """Golden per-chunk checksums of ``function``'s snapshot
        artefacts on ``host_id`` (``None`` before its record phase).
        Cached per (host, function): artefact contents are fixed at
        record time."""
        key = (host_id, function)
        cached = self._checksum_cache.get(key)
        if cached is not None:
            return cached
        hs = self._host_by_id.get(host_id)
        if hs is None:
            return None
        config = self.config
        artifacts = hs.host.cached_artifacts(
            function, config.record_input, config.restore_policy
        )
        if artifacts is None:
            artifacts = hs.host.cached_artifacts(
                function, config.record_input, Policy.WARM
            )
        if artifacts is None:
            return None
        checksums = artifacts.warm_snapshot.memory_file.chunk_checksums(
            config.durability.chunk_pages
        )
        self._checksum_cache[key] = checksums
        return checksums

    def _durability_observer(
        self, kind: str, host: str, **detail: Any
    ) -> None:
        """Durability-manager callback: scrub/quarantine/repair events
        land in the host's flight ring, and a quarantine triggers a
        postmortem dump (the repair timeline leading up to it)."""
        self._flight_record(host, kind, **detail)
        if kind == "durability.quarantine":
            self._flight_dump("replica-quarantined", host=host, **detail)

    def durability_status(self) -> Dict[str, Any]:
        """Canonical durability-plane document (the
        ``durability-status`` service command)."""
        if self.durability is None:
            return {"enabled": False}
        doc: Dict[str, Any] = {"enabled": True}
        doc.update(self.durability.status())
        return doc

    def run_scrub(self) -> Dict[str, Any]:
        """Operator-forced scrub sweep over every host (the ``scrub``
        service command); repairs queue in the background."""
        if self.durability is None:
            return {"enabled": False}
        doc: Dict[str, Any] = {"enabled": True}
        doc.update(self.durability.scrub_now())
        return doc

    def _on_health_drain(self, state) -> None:
        self._flight_record(state.host.host_id, "health.drain")

    def _on_health_reintegrate(self, state) -> None:
        self._flight_record(state.host.host_id, "health.reintegrate")

    # -- live-service control operations -------------------------------
    #
    # Everything below mutates a *running* simulation between event
    # dispatches; the service core exposes each as a journaled
    # command. None of them are reachable from the batch path, so the
    # legacy event schedule cannot be perturbed.

    def arm_fault_plan(self, plan: Optional[FaultPlan]) -> FaultInjector:
        """Arm ``plan`` mid-run (fault times relative to *now*),
        upgrading an unarmed run to the robust serving path first.
        A previously armed plan is disarmed; in-flight invocations
        that started on the legacy path finish on it, new dispatches
        take the robust path."""
        self._install_robust_machinery()
        self._armed = True
        if self.injector is not None:
            self.injector.disarm()
        self.injector = FaultInjector(
            self.env, plan, observer=self._fault_observer
        )
        if self.durability is not None:
            self.injector.durability = self.durability
        self.injector.arm(self, epoch_us=self.env.now)
        return self.injector

    def disarm_faults(self) -> None:
        """Cancel pending faults and revoke open degradation windows
        (see :meth:`FaultInjector.disarm`). The robust serving path
        stays on — it is behaviour-identical with no active faults."""
        if self.injector is not None:
            self.injector.disarm()

    def swap_placement(self, name: str) -> None:
        """Hot-swap the placement policy to a fresh ``name`` instance
        (the health-filter and counting wrappers stay in place)."""
        self._hot_placement.swap(name)
        self.config = dataclasses.replace(self.config, placement=name)
        self._report.placement = name

    def set_keepalive(self, ttl_us: float) -> None:
        """Change the keep-alive TTL for all future parking/eviction
        decisions (already-parked VMs are re-judged against the new
        TTL at the next eviction sweep)."""
        if ttl_us < 0:
            raise ValueError("keep-alive TTL must be >= 0")
        self.config = dataclasses.replace(
            self.config, keep_alive_ttl_us=ttl_us
        )

    def add_host_live(self) -> _HostState:
        """Grow the cluster by one host at the current instant.

        On the shared-storage tier the new host adopts every recorded
        artefact immediately (the files live on the shared volume) and
        enters rotation at once. On the local tier it must run its own
        record phases first, so it joins *drained* and a background
        process preps it, un-draining when done."""
        index = len(self._hosts)
        hs = self._make_host_state(index)
        self._hosts.append(hs)
        self._host_by_id[hs.host.host_id] = hs
        placement = self._placement
        if isinstance(placement, CountingPlacement):
            placement.add_host(hs.host.host_id)
        if self.monitor is not None:
            self.monitor.states.append(hs)
        config = self.config
        if self._shared_store is not None and index > 0:
            donor = self._hosts[0].host
            for fleet_fn in self.fleet:
                for policy in self._record_plan():
                    artifacts = donor.cached_artifacts(
                        fleet_fn.name, config.record_input, policy
                    )
                    if artifacts is not None:
                        hs.host.adopt_artifacts(
                            config.record_input, artifacts
                        )
            return hs
        hs.drained = True
        hs.healthy = False

        def _prep_new_host() -> Generator[Event, Any, None]:
            for fleet_fn in self.fleet:
                profile = self._profiles[fleet_fn.name]
                for policy in self._record_plan():
                    yield from hs.host.record_process(
                        profile, config.record_input, policy
                    )
            hs.host.drop_caches()
            hs.drained = False
            hs.healthy = True

        self.env.process(
            _prep_new_host(), name=f"prep:{hs.host.host_id}"
        )
        return hs

    def drain_host_live(self, host_id: str) -> int:
        """Take ``host_id`` out of rotation: placement stops choosing
        it and its keep-alive pool is evicted. In-flight invocations
        finish. Returns the number of VMs evicted."""
        hs = self._host_by_id[host_id]
        hs.drained = True
        hs.healthy = False
        evicted = 0
        while True:
            vm = hs.idle.pop_lru()
            if vm is None:
                break
            hs.memory_mb -= vm.memory_mb
            hs.stats.evictions += 1
            self._report.evictions += 1
            self._ctr_evictions.value += 1
            evicted += 1
        self._flight_record(host_id, "ops.drain", evicted=evicted)
        return evicted

    def undrain_host_live(self, host_id: str) -> None:
        """Return a drained host to rotation (unless it is crashed,
        in which case it stays unhealthy until reboot)."""
        hs = self._host_by_id[host_id]
        hs.drained = False
        if not hs.host.crashed:
            hs.healthy = True
            hs.error_times.clear()
        self._flight_record(host_id, "ops.undrain")

    def _evict_expired(self, hs: _HostState, now: float) -> None:
        for vm in hs.idle.pop_expired(now, self.config.keep_alive_ttl_us):
            hs.memory_mb -= vm.memory_mb
            hs.stats.evictions += 1
            self._report.evictions += 1
            self._ctr_evictions.value += 1

    def _evict_until_fits(self, hs: _HostState, extra_mb: float) -> None:
        while hs.memory_mb + extra_mb > self.config.memory_budget_mb:
            vm = hs.idle.pop_lru()
            if vm is None:
                break
            hs.memory_mb -= vm.memory_mb
            hs.stats.evictions += 1
            self._report.evictions += 1
            self._ctr_evictions.value += 1

    def _artifacts_for(
        self, hs: _HostState, function: str, policy: Policy
    ) -> RecordArtifacts:
        artifacts = hs.host.cached_artifacts(
            function, self.config.record_input, policy
        )
        if artifacts is None:  # pragma: no cover - prep guarantees it
            raise RuntimeError(
                f"no record artefacts for {function!r} on "
                f"{hs.host.host_id}"
            )
        return artifacts

    def _serve(
        self, hs: _HostState, arrival: Arrival, instant: float, ctx=None
    ) -> Generator[Event, Any, None]:
        env = self.env
        config = self.config
        function = arrival.function

        # The driver counted us into ``hs.queued`` at placement time.
        slot = None
        if hs.admission is not None:
            slot = hs.admission.request()
            yield slot
        hs.queued -= 1
        hs.active += 1
        hs.stats.admission_wait_us += env.now - instant
        eph = None
        tracer = hs.tracer
        if ctx is not None:
            ctx.emit(
                self._obs_now(),
                "admitted",
                host=hs.host.host_id,
                wait_us=env.now - instant,
            )
            eph = self._attempt_tracer(hs)
            tracer = eph
        try:
            vm = hs.idle.reuse_mru(function)
            if vm is not None:
                kind = StartKind.WARM
                if ctx is not None:
                    ctx.emit(self._obs_now(), "start", kind=kind.value)
                result = yield from hs.host.invocation(
                    self._artifacts_for(hs, function, Policy.WARM),
                    config.test_input,
                    Policy.WARM,
                    tracer=tracer,
                )
            else:
                has_snapshot = config.snapshots_enabled and (
                    config.assume_snapshots_exist
                    or function in hs.snapshots
                )
                kind = (
                    StartKind.SNAPSHOT if has_snapshot else StartKind.COLD
                )
                estimate = hs.known_memory.get(function, 0.0)
                self._evict_until_fits(hs, estimate)
                hs.memory_mb += estimate
                vm = PooledVm(
                    function=function,
                    memory_mb=estimate,
                    busy_until=0.0,
                    last_used=env.now,
                )
                if ctx is not None:
                    ctx.emit(self._obs_now(), "start", kind=kind.value)
                if kind is StartKind.SNAPSHOT:
                    result = yield from self._snapshot_start(
                        hs, function, tracer=tracer
                    )
                else:
                    result = yield from self._cold_start(
                        hs, function, tracer=tracer
                    )

            # Learn the function's warm footprint from the actual VM.
            actual_mb = result.rss_pages * PAGE_SIZE / 1e6
            hs.memory_mb += actual_mb - vm.memory_mb
            vm.memory_mb = actual_mb
            hs.known_memory[function] = actual_mb
            # The first completed invocation leaves a snapshot behind
            # (fleet semantics; shared storage publishes cluster-wide).
            hs.snapshots.add(function)

            now = env.now
            vm.busy_until = now
            vm.last_used = now
            if config.keep_alive_ttl_us > 0:
                hs.idle.park(vm)
            else:
                hs.memory_mb -= vm.memory_mb

            hs.stats.invocations += 1
            self._ctr_invocations.value += 1
            if kind is StartKind.WARM:
                hs.stats.warm_starts += 1
                self._ctr_warm.value += 1
            elif kind is StartKind.SNAPSHOT:
                hs.stats.snapshot_starts += 1
                self._ctr_snapshot.value += 1
            else:
                hs.stats.cold_starts += 1
                self._ctr_cold.value += 1
            if ctx is not None:
                ctx.emit(
                    self._obs_now(),
                    "outcome",
                    outcome=InvocationOutcome.OK.value,
                    host=hs.host.host_id,
                    kind=kind.value,
                    latency_us=now - instant,
                )
            self._record_served(
                ServedInvocation(
                    time_us=arrival.time_us,
                    function=function,
                    kind=kind,
                    latency_us=now - instant,
                    host=hs.host.host_id,
                )
            )
        finally:
            if ctx is not None:
                self._fold_phases(hs, ctx, eph)
            hs.active -= 1
            if slot is not None:
                hs.admission.release(slot)

    # -- robust serving (the self-healing control plane) ---------------
    #
    # The legacy ``_serve`` above is the *unarmed* path: its inline
    # structure (and therefore its exact event schedule) is what every
    # golden figure and perf checksum was recorded against, so it is
    # kept verbatim. When a run is armed (a fault plan was passed or
    # any recovery feature is on), ``_serve_robust`` takes over: each
    # try runs as its own *attempt process* that a host crash can
    # interrupt, a deadline can abandon, and a hedge can race.

    def _serve_robust(
        self, hs: _HostState, arrival: Arrival, instant: float, ctx=None
    ) -> Generator[Event, Any, None]:
        env = self.env
        recovery = self.config.recovery
        function = arrival.function
        retry = recovery.retry
        budget = self._retry_budget
        tracker = self._hedge_tracker
        budget.on_arrival()

        shedding = recovery.shedding
        if (
            shedding.max_queue_depth is not None
            and hs.load > shedding.max_queue_depth
        ):
            # Reject at admission: the host is drowning, and taking
            # one more arrival would push everyone's tail out further.
            hs.queued -= 1
            hs.stats.shed += 1
            self._ctr_shed.inc()
            if ctx is not None:
                ctx.emit(
                    self._obs_now(),
                    "shed",
                    host=hs.host.host_id,
                    load=hs.load,
                )
            self._flight_record(
                hs.host.host_id, "shed", function=function
            )
            self._record_served(
                ServedInvocation(
                    time_us=arrival.time_us,
                    function=function,
                    kind=None,
                    latency_us=0.0,
                    host=hs.host.host_id,
                    outcome=InvocationOutcome.SHED,
                    attempts=0,
                )
            )
            return

        deadline_at = (
            instant + recovery.deadline_us
            if recovery.deadline_us is not None
            else None
        )
        rounds = 0
        launched = 0
        pre_counted = True
        current = hs
        outcome: Optional[InvocationOutcome] = None
        winner_kind: Optional[StartKind] = None
        winner_host = hs

        while outcome is None:
            rounds += 1
            launched += 1
            procs = [
                self._launch_attempt(
                    current, arrival, pre_counted, ctx, launched
                )
            ]
            hosts_used = [current]
            starts = [env.now]
            attempt_ids = [launched]
            pre_counted = False
            hedged_this_round = False
            round_failure: Optional[BaseException] = None

            while True:
                race = env.first_success(procs)
                waits: List[Event] = [race]
                deadline_evt = hedge_evt = None
                if deadline_at is not None:
                    deadline_evt = env.wake_at(max(deadline_at, env.now))
                    waits.append(deadline_evt)
                if (
                    recovery.hedge.enabled
                    and not hedged_this_round
                    and len(procs) == 1
                ):
                    threshold = tracker.threshold_us()
                    if threshold is not None:
                        fire_at = starts[0] + threshold
                        if fire_at > env.now and (
                            deadline_at is None or fire_at < deadline_at
                        ):
                            hedge_evt = env.wake_at(fire_at)
                            waits.append(hedge_evt)
                try:
                    yield env.any_of(waits)
                except AllFailed as exc:
                    round_failure = exc
                    break
                if race.triggered and race.ok:
                    windex, winner_kind = race.value
                    winner_host = hosts_used[windex]
                    if ctx is not None and len(procs) > 1:
                        # The winner/loser link of a hedge pair.
                        ctx.emit(
                            self._obs_now(),
                            "hedge-result",
                            winner=attempt_ids[windex],
                            losers=tuple(
                                a
                                for a in attempt_ids
                                if a != attempt_ids[windex]
                            ),
                        )
                    for pos, proc in enumerate(procs):
                        if pos != windex and proc.is_alive:
                            proc.interrupt("lost the hedge race")
                            tracker.cancelled += 1
                    if tracker is not None:
                        tracker.record(env.now - starts[windex])
                    if windex > 0:
                        tracker.won += 1
                        outcome = InvocationOutcome.HEDGE_WON
                    elif rounds > 1:
                        outcome = InvocationOutcome.RETRIED
                    else:
                        outcome = InvocationOutcome.OK
                    break
                # Timeouts are born triggered (the pooled fast path
                # decides their value at creation); ``processed`` is
                # the "has actually fired" test.
                if deadline_evt is not None and deadline_evt.processed:
                    cause = DeadlineExceeded(function, recovery.deadline_us)
                    if ctx is not None:
                        ctx.emit(
                            self._obs_now(),
                            "deadline-exceeded",
                            deadline_us=recovery.deadline_us,
                        )
                    for proc in procs:
                        if proc.is_alive:
                            proc.interrupt(cause)
                    outcome = InvocationOutcome.FAILED
                    break
                if hedge_evt is not None and hedge_evt.processed:
                    hedged_this_round = True
                    other = self._pick_failover(current, function)
                    if other is not None:
                        launched += 1
                        tracker.fired += 1
                        other.stats.hedges += 1
                        if ctx is not None:
                            ctx.emit(
                                self._obs_now(),
                                "hedge",
                                host=other.host.host_id,
                                attempt=launched,
                                threshold_us=threshold,
                            )
                        self._flight_record(
                            other.host.host_id,
                            "hedge",
                            function=function,
                        )
                        procs.append(
                            self._launch_attempt(
                                other, arrival, False, ctx, launched
                            )
                        )
                        hosts_used.append(other)
                        starts.append(env.now)
                        attempt_ids.append(launched)
                    continue
                continue  # pragma: no cover - no other wake source

            if outcome is not None:
                break

            # The whole round failed. Decide between retrying (with
            # backoff + failover) and giving up.
            causes = [
                c.cause if isinstance(c, Interrupt) else c
                for c in round_failure.causes
            ]
            for cause in causes:
                if not isinstance(cause, FaultError):
                    raise round_failure  # a genuine bug — surface it
            retryable = not any(
                isinstance(c, DeadlineExceeded) for c in causes
            )
            if (
                retryable
                and retry.enabled
                and rounds < retry.max_attempts
                and budget.try_spend()
            ):
                backoff = retry.backoff_us(rounds, env.rng)
                if deadline_at is not None and (
                    env.now + backoff >= deadline_at
                ):
                    outcome = InvocationOutcome.FAILED
                    break
                hs.stats.retries += 1
                self._ctr_retries.inc()
                if ctx is not None:
                    ctx.emit(
                        self._obs_now(),
                        "retry",
                        round=rounds,
                        backoff_us=backoff,
                    )
                self._flight_record(
                    current.host.host_id, "retry", function=function
                )
                if backoff > 0:
                    yield env.timeout(backoff)
                if recovery.failover:
                    nxt = self._pick_failover(current, function)
                    if nxt is not None:
                        current = nxt
                        if ctx is not None:
                            ctx.emit(
                                self._obs_now(),
                                "failover",
                                host=current.host.host_id,
                            )
                continue
            outcome = InvocationOutcome.FAILED
            break

        if outcome is InvocationOutcome.FAILED:
            current.stats.failures += 1
            winner_host = current
            self._ctr_failed.inc()
        if ctx is not None:
            ctx.emit(
                self._obs_now(),
                "outcome",
                outcome=outcome.value,
                host=winner_host.host.host_id,
                kind=(
                    winner_kind.value
                    if winner_kind is not None
                    and outcome is not InvocationOutcome.FAILED
                    else None
                ),
                attempts=launched,
                latency_us=env.now - instant,
            )
        self._record_served(
            ServedInvocation(
                time_us=arrival.time_us,
                function=function,
                kind=winner_kind if outcome is not InvocationOutcome.FAILED
                else None,
                latency_us=env.now - instant,
                host=winner_host.host.host_id,
                outcome=outcome,
                attempts=launched,
            )
        )

    def _launch_attempt(
        self,
        target: _HostState,
        arrival: Arrival,
        pre_counted: bool,
        ctx=None,
        attempt_no: int = 1,
    ):
        """Spawn one attempt process on ``target`` and register it for
        crash interruption. ``pre_counted`` marks the first attempt,
        whose queue slot the driver already counted at placement."""
        if not pre_counted:
            target.queued += 1
        proc = self.env.process(
            self._attempt(target, arrival, ctx, attempt_no),
            name=f"attempt:{arrival.function}@{target.host.host_id}",
        )
        target.attempt_procs[proc] = None
        proc.callbacks.append(
            lambda evt, t=target, p=proc: t.attempt_procs.pop(p, None)
        )
        return proc

    def _attempt(
        self, hs: _HostState, arrival: Arrival, ctx=None, attempt_no: int = 1
    ) -> Generator[Event, Any, StartKind]:
        """One try at serving ``arrival`` on ``hs``; the body mirrors
        the legacy ``_serve`` exactly, wrapped in the bookkeeping that
        makes it abortable (queue/active counts, memory reservation
        and admission slots all unwind on interruption)."""
        env = self.env
        config = self.config
        recovery = config.recovery
        function = arrival.function
        started = env.now

        if ctx is not None:
            ctx.emit(
                self._obs_now(),
                "attempt",
                attempt=attempt_no,
                host=hs.host.host_id,
            )
        if hs.host.crashed:
            # Placed onto a host that died before we started.
            if ctx is not None:
                ctx.emit(
                    self._obs_now(),
                    "attempt-failed",
                    attempt=attempt_no,
                    host=hs.host.host_id,
                    cause="HostCrashed",
                )
            raise HostCrashed(hs.host.host_id)

        slot = None
        admitted = False
        reserved_mb = 0.0
        eph = None
        tracer = hs.tracer
        if ctx is not None:
            eph = self._attempt_tracer(hs)
            tracer = eph
        try:
            if hs.admission is not None:
                slot = hs.admission.request()
                yield slot
            hs.queued -= 1
            hs.active += 1
            admitted = True
            hs.stats.admission_wait_us += env.now - started
            if ctx is not None:
                ctx.emit(
                    self._obs_now(),
                    "admitted",
                    attempt=attempt_no,
                    wait_us=env.now - started,
                )

            policy = config.restore_policy
            shedding = recovery.shedding
            if (
                shedding.degraded_queue_depth is not None
                and hs.load > shedding.degraded_queue_depth
                and policy is not shedding.degraded_policy
            ):
                # Graceful degradation: under pressure, give up the
                # page-level restore win for the cheaper baseline
                # instead of falling over.
                policy = shedding.degraded_policy
                hs.stats.degraded_starts += 1
                self._ctr_degraded.inc()
                if ctx is not None:
                    ctx.emit(
                        self._obs_now(),
                        "degraded",
                        attempt=attempt_no,
                        policy=policy.value,
                    )
                self._flight_record(
                    hs.host.host_id, "degraded", function=function
                )

            vm = hs.idle.reuse_mru(function)
            if vm is not None:
                kind = StartKind.WARM
                if ctx is not None:
                    ctx.emit(
                        self._obs_now(),
                        "start",
                        attempt=attempt_no,
                        kind=kind.value,
                    )
                result = yield from hs.host.invocation(
                    self._artifacts_for(hs, function, Policy.WARM),
                    config.test_input,
                    Policy.WARM,
                    tracer=tracer,
                )
            else:
                has_snapshot = config.snapshots_enabled and (
                    config.assume_snapshots_exist
                    or function in hs.snapshots
                )
                if has_snapshot and self.durability is not None:
                    # Replica-aware placement: with every replica
                    # quarantined the snapshot is rebuilding, and the
                    # restore falls through to a cold boot — the
                    # rebuild-from-scratch leg of the escalation
                    # chain, priced at the cold-start lower bound.
                    has_snapshot = self.durability.has_readable(
                        hs.host.host_id, function
                    )
                kind = (
                    StartKind.SNAPSHOT if has_snapshot else StartKind.COLD
                )
                estimate = hs.known_memory.get(function, 0.0)
                self._evict_until_fits(hs, estimate)
                hs.memory_mb += estimate
                reserved_mb = estimate
                vm = PooledVm(
                    function=function,
                    memory_mb=estimate,
                    busy_until=0.0,
                    last_used=env.now,
                )
                if ctx is not None:
                    ctx.emit(
                        self._obs_now(),
                        "start",
                        attempt=attempt_no,
                        kind=kind.value,
                    )
                if kind is StartKind.SNAPSHOT:
                    if self.durability is not None:
                        # Verified restore: check the chosen replica's
                        # stored checksums against the golden set at
                        # read time. Detection quarantines the replica
                        # and fails the attempt, so the recovery loop
                        # retries — and the next pick fails over to a
                        # healthy replica (or a cold rebuild).
                        verdict = self.durability.verify_restore(
                            hs.host.host_id, function
                        )
                        if verdict == VERIFY_CORRUPT:
                            hs.stats.snapshot_corruptions += 1
                            self._ctr_corrupt.inc()
                            if ctx is not None:
                                ctx.emit(
                                    self._obs_now(),
                                    "verify-failed",
                                    attempt=attempt_no,
                                    host=hs.host.host_id,
                                )
                            raise SnapshotCorrupted(
                                hs.host.host_id, function
                            )
                        if verdict == VERIFY_SILENT and ctx is not None:
                            ctx.emit(
                                self._obs_now(),
                                "verify-skipped",
                                attempt=attempt_no,
                                host=hs.host.host_id,
                            )
                    elif (
                        self.injector is not None
                        and self.injector.check_snapshot(
                            hs.host.host_id, function
                        )
                    ):
                        hs.stats.snapshot_corruptions += 1
                        self._ctr_corrupt.inc()
                        raise SnapshotCorrupted(hs.host.host_id, function)
                    result = yield from self._snapshot_start(
                        hs, function, policy=policy, tracer=tracer
                    )
                else:
                    result = yield from self._cold_start(
                        hs, function, tracer=tracer
                    )

            # Success: identical post-processing to the legacy path.
            actual_mb = result.rss_pages * PAGE_SIZE / 1e6
            hs.memory_mb += actual_mb - vm.memory_mb
            vm.memory_mb = actual_mb
            reserved_mb = 0.0
            hs.known_memory[function] = actual_mb
            hs.snapshots.add(function)
            if self.durability is not None:
                # A completed invocation (re)publishes the snapshot;
                # for a fully-quarantined set this is the rebuild
                # completing. Quarantined replicas of a partially
                # healthy set are NOT touched — repair is the only
                # healing path.
                self.durability.publish(hs.host.host_id, function)
            if kind is StartKind.SNAPSHOT and self.monitor is not None:
                # Gray-failure signal: restore latency, fed to the
                # fail-slow outlier score (recording only unless
                # ``fail_slow_factor`` is armed).
                self.monitor.note_restore_latency(
                    hs, env.now - started
                )

            now = env.now
            vm.busy_until = now
            vm.last_used = now
            if config.keep_alive_ttl_us > 0:
                hs.idle.park(vm)
            else:
                hs.memory_mb -= vm.memory_mb

            hs.stats.invocations += 1
            self._ctr_invocations.value += 1
            if kind is StartKind.WARM:
                hs.stats.warm_starts += 1
                self._ctr_warm.value += 1
            elif kind is StartKind.SNAPSHOT:
                hs.stats.snapshot_starts += 1
                self._ctr_snapshot.value += 1
            else:
                hs.stats.cold_starts += 1
                self._ctr_cold.value += 1
            if ctx is not None:
                ctx.emit(
                    self._obs_now(),
                    "attempt-ok",
                    attempt=attempt_no,
                    host=hs.host.host_id,
                    kind=kind.value,
                    latency_us=env.now - started,
                )
            return kind
        except BaseException as exc:
            cause = exc.cause if isinstance(exc, Interrupt) else exc
            if isinstance(cause, (DeviceError, SnapshotCorrupted)):
                self._note_failure(hs)
            if ctx is not None:
                if isinstance(cause, str):
                    # A hedge loser interrupted with a reason string.
                    ctx.emit(
                        self._obs_now(),
                        "attempt-cancelled",
                        attempt=attempt_no,
                        host=hs.host.host_id,
                        reason=cause,
                    )
                else:
                    ctx.emit(
                        self._obs_now(),
                        "attempt-failed",
                        attempt=attempt_no,
                        host=hs.host.host_id,
                        cause=type(cause).__name__,
                    )
            if not isinstance(cause, str):
                self._flight_record(
                    hs.host.host_id,
                    "attempt-failed",
                    function=function,
                    cause=type(cause).__name__,
                )
            raise
        finally:
            if ctx is not None:
                self._fold_phases(hs, ctx, eph)
            if reserved_mb:
                hs.memory_mb -= reserved_mb
            if admitted:
                hs.active -= 1
            else:
                hs.queued -= 1
            if slot is not None:
                hs.admission.release(slot)

    def _note_failure(self, hs: _HostState) -> None:
        """Feed one attempt failure into the health plane."""
        if self.monitor is not None:
            self.monitor.note_failure(hs)
        else:
            hs.error_times.append(self.env.now)

    def _pick_failover(
        self, exclude: _HostState, function: str
    ) -> Optional[_HostState]:
        """A healthy host other than ``exclude`` for a retry or hedge
        attempt, chosen by the run's placement policy over the
        filtered candidates (falling back to any non-crashed host, or
        ``None`` when the cluster has no alternative)."""
        views = [
            h
            for h in self._hosts
            if h is not exclude and h.healthy and not h.host.crashed
        ]
        if not views:
            views = [
                h
                for h in self._hosts
                if h is not exclude and not h.host.crashed
            ]
        if not views:
            return None
        return views[self._failover_placement.choose(views, function)]

    # -- fault-injector target interface -------------------------------

    def devices_for_scope(self, scope: str) -> List[BlockDevice]:
        """Resolve a :class:`~repro.faults.DeviceFault` scope to the
        block devices it degrades (deduplicated: on the shared tier
        every host's primary device is the one shared volume)."""
        if scope == "shared":
            return [self._shared_device] if self._shared_device else []
        if scope == "*":
            devices: List[BlockDevice] = []
            for hs in self._hosts:
                if all(d is not hs.host.device for d in devices):
                    devices.append(hs.host.device)
            return devices
        hs = self._host_by_id.get(scope)
        if hs is None:
            raise ValueError(f"device-fault scope {scope!r} matches no host")
        return [hs.host.device]

    def crash_host(self, host_id: str) -> None:
        """Power-fail ``host_id``: volatile host state dies, the
        keep-alive pool is lost, and every in-flight attempt aborts
        with :class:`HostCrashed` (the serve loops then retry on
        other hosts, within policy)."""
        hs = self._host_by_id[host_id]
        if hs.host.crashed:
            return
        hs.host.crash()
        hs.healthy = False
        hs.last_bad_us = self.env.now
        vms_lost = 0
        while True:
            vm = hs.idle.pop_lru()
            if vm is None:
                break
            hs.memory_mb -= vm.memory_mb
            hs.stats.crash_vm_losses += 1
            vms_lost += 1
        interrupted = 0
        for proc in list(hs.attempt_procs):
            if proc.is_alive:
                proc.interrupt(HostCrashed(host_id))
                interrupted += 1
        hs.attempt_procs.clear()
        # Wake anyone sleeping on a read whose owner just died.
        hs.host.cache.abandon_all_pending()
        self._flight_record(
            host_id,
            "fault.crash",
            vms_lost=vms_lost,
            attempts_interrupted=interrupted,
        )
        self._flight_dump("host-crash", host=host_id)

    def reboot_host(self, host_id: str) -> None:
        """Bring a crashed host back cold. With a health monitor the
        host stays drained until it passes the quiet period; without
        one it returns to rotation immediately."""
        hs = self._host_by_id[host_id]
        hs.host.reboot()
        hs.error_times.clear()
        hs.last_bad_us = self.env.now
        if self.monitor is None and not hs.drained:
            hs.healthy = True
        self._flight_record(host_id, "fault.reboot")

    def _snapshot_start(
        self,
        hs: _HostState,
        function: str,
        policy: Optional[Policy] = None,
        tracer=_UNSET,
    ):
        """Page-level snapshot restore + invocation on ``hs``.

        ``policy`` overrides the configured restore policy (the
        degraded-mode path restores with the cheaper baseline).
        ``tracer`` overrides the host's run tracer (the causal path
        substitutes a per-attempt tracer whose spans it folds into
        the invocation's event stream).
        """
        config = self.config
        if policy is None:
            policy = config.restore_policy
        if tracer is _UNSET:
            tracer = hs.tracer
        artifacts = self._artifacts_for(hs, function, policy)
        in_flight = hs.disk_active.get(function, 0)
        hs.disk_active[function] = in_flight + 1
        if config.cold_cache_between_runs and in_flight == 0:
            # Nobody else is restoring this function here: reproduce
            # the cost-table methodology (cold caches, fresh readahead
            # window) for a function that has not run recently.
            hs.host.drop_function_caches(artifacts)
            self._flight_record(
                hs.host.host_id, "page-cache.drop", function=function
            )
        gate = hs.acquire_gate(artifacts)
        try:
            result = yield from hs.host.invocation(
                artifacts,
                config.test_input,
                policy,
                loader_gate=gate,
                tracer=tracer,
            )
        finally:
            hs.release_gate(artifacts)
            hs.disk_active[function] -= 1
        return result

    def _cold_start(self, hs: _HostState, function: str, tracer=_UNSET):
        """VMM start + kernel boot + runtime init, then the invocation
        runs warm-equivalent (nothing pages in from a snapshot)."""
        config = self.config
        if tracer is _UNSET:
            tracer = hs.tracer
        profile = self._profiles[function]
        yield self.env.timeout(
            config.platform.vmm.vmm_start_us
            + config.platform.vmm.cold_boot_us
            + profile.runtime_init_us
        )
        result = yield from hs.host.invocation(
            self._artifacts_for(hs, function, Policy.WARM),
            config.test_input,
            Policy.WARM,
            tracer=tracer,
        )
        return result
