"""Sharded cluster execution: one run, many event heaps.

:class:`~repro.cluster.scheduler.ClusterSimulator` serves every host
from a single event heap, so a 64-host run is a single-core marathon.
This module shards that run across worker processes while keeping the
result *bit-identical* for any shard count — the same contract PR 1
proved for experiment cells (``--jobs``), pushed one level down into
a single cluster run.

Topology
--------

The unit of simulation is the **host**: each host gets its own
:class:`~repro.sim.engine.Environment` (clock, heap, rng, registry)
wrapped in a single-host :class:`_ShardHostSim`. A **shard** is a
batch of host sims owned by one worker process; the parent process
runs the **router**, which owns everything cross-host:

* placement (:class:`~repro.cluster.placement.CountingPlacement` over
  :class:`~repro.cluster.placement.StaticHostView` snapshots, health-
  filtered exactly like the single-heap armed path);
* the cluster-wide retry budget (each host holds one
  :meth:`~repro.faults.RetryBudget.partitioned` slice, pooled and
  redistributed at every barrier with
  :func:`~repro.faults.rebalance_tokens`);
* hedge dispatch (one cluster-wide
  :class:`~repro.faults.HedgeTracker`), retry failover, and final
  :class:`~repro.fleet.scheduler.InvocationOutcome` assembly;
* the shared-EBS tier's cross-host coupling, modelled as per-host
  replica volumes plus a barrier-exchanged *background demand*
  degradation (each window, a host's replica bandwidth is scaled by
  ``1 / (1 + foreign_bytes / (bandwidth * window))`` where
  ``foreign_bytes`` is what every *other* host read last window).

Synchronization protocol
------------------------

Virtual time is cut into fixed windows ``[k*W, (k+1)*W)``. Each
iteration the router (1) routes every arrival and pending redispatch
whose start time falls inside the window, (2) tells every shard to
deliver its dispatches and advance its hosts to the window end
(:meth:`~repro.sim.engine.Environment.advance_to`), (3) collects one
**digest** per host — completions, failure records, sheds, load,
health, idle-warm and snapshot sets, unspent budget tokens, shared-
device demand — and (4) computes the next window's **updates**
(rebalanced tokens, cluster-published snapshots, background demand).
Cross-host effects (failover retries, hedges, snapshot publication)
therefore only take effect at window boundaries; within a window
every host is provably independent, which is what makes parallel
execution safe.

Determinism contract
--------------------

``shards=1`` runs the identical protocol serially, so ``shards=N`` is
*pure execution parallelism*: the router's decisions are a function
of digests only, digests are a function of each host's own event
history, and each host's history is a function of (config, seed,
trace, its fault sub-plan). The golden-parity test pins
``latency_checksum_us``, the full outcome stream, and the merged
telemetry snapshot (:func:`~repro.metrics.exporters.merge_shard_snapshots`)
across shard counts.

Divergences from the single-heap path (documented, deterministic):

* TTL evictions happen when a host next receives a dispatch, not at
  every cluster arrival;
* ``memory_samples_mb`` holds per-host samples (host order), not the
  cluster-wide sum at each arrival;
* on the shared tier every host records its own snapshot artefacts
  (replica volumes) instead of adopting host0's, and cross-host
  contention arrives as the background-demand factor above;
* hedges fire at the first window boundary where the primary attempt
  has been in flight longer than the threshold, and failover retries
  redispatch at ``max(window end, failure + backoff)``;
* causal-trace events: hosts emit attempt-level events from their own
  serve paths (source = host index, drained in each window digest),
  the router emits routing decisions (source ``-1``) — so the sharded
  trace shows ``route``/``redispatch`` where the single-heap trace
  shows ``dispatch``/``failover``. Within the sharded family the
  merged document is byte-identical for every shard count.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.placement import (
    CountingPlacement,
    HealthFiltered,
    StaticHostView,
    make_placement,
)
from repro.cluster.scheduler import (
    ClusterConfig,
    ClusterReport,
    ClusterSimulator,
    TIER_SHARED_EBS,
)
from repro.faults import (
    DeadlineExceeded,
    FaultPlan,
    HedgeTracker,
    RetryBudget,
    rebalance_tokens,
)
from repro.faults.errors import FaultError
from repro.fleet.scheduler import (
    InvocationOutcome,
    ServedInvocation,
    StartKind,
)
from repro.fleet.workload import Arrival, ArrivalTrace
from repro.metrics.causal import CausalRecorder, ROUTER_SRC, TraceContext
from repro.metrics.exporters import merge_shard_snapshots, registry_snapshot
from repro.metrics.stats import Histogram
from repro.metrics.telemetry import MetricsRegistry
from repro.sim import AllFailed, Interrupt
from repro.storage.device import Degradation
from repro.storage.presets import EBS_IO2

#: Barrier cadence: cross-host effects resolve every quarter second
#: of virtual time. Smaller windows tighten failover/hedge reaction
#: time at the cost of more barriers.
DEFAULT_WINDOW_US = 250_000.0

#: Per-host environment seed stride (a prime far above any realistic
#: seed), so host rng streams are decorrelated but a pure function of
#: (config.seed, host index) — never of shard packing.
_HOST_SEED_STRIDE = 1_000_003

#: Doubling buckets for the per-host serve-latency histogram
#: (``cluster.latency_us``): 1 ms .. ~17 min, merged across shards.
LATENCY_HISTOGRAM_EDGES = [0.0] + [1000.0 * 2**i for i in range(21)]

#: Safety horizon: a run that has not drained within this much
#: virtual time past its last arrival is stuck.
_SETTLE_HORIZON_US = 3_600_000_000.0


def partition_hosts(num_hosts: int, shards: int) -> List[List[int]]:
    """Contiguous host-index groups, one per shard, sizes differing by
    at most one. Pure function of the two counts — the protocol never
    depends on the grouping, but a stable one keeps worker logs
    readable."""
    if num_hosts < 1 or shards < 1:
        raise ValueError("num_hosts and shards must be >= 1")
    shards = min(shards, num_hosts)
    base, extra = divmod(num_hosts, shards)
    groups: List[List[int]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


def plan_for_host(
    plan: Optional[FaultPlan], host_id: str
) -> Optional[FaultPlan]:
    """The slice of a cluster fault plan one host must replay:
    cluster-scoped device faults (``*``/``shared``) apply everywhere,
    host-scoped faults only to their host. ``None`` stays ``None``
    (unarmed); an armed run with an empty slice gets an empty plan."""
    if plan is None:
        return None
    return FaultPlan(
        device_faults=tuple(
            f
            for f in plan.device_faults
            if f.scope in ("*", "shared") or f.scope == host_id
        ),
        host_crashes=tuple(
            c for c in plan.host_crashes if c.host == host_id
        ),
        corruptions=tuple(
            c for c in plan.corruptions if c.host == host_id
        ),
        fail_slows=tuple(
            s for s in plan.fail_slows if s.host == host_id
        ),
    )


# -- wire records ------------------------------------------------------
#
# Everything crossing the parent/worker boundary is a plain dataclass
# of scalars. All times are *serving-relative*: microseconds since the
# host's prep epoch ended (t=0 of the arrival trace).


@dataclass(frozen=True)
class _Dispatch:
    """Router → host: serve (one more round of) an invocation."""

    inv_id: int
    function: str
    #: When the host should begin (>= its current window start).
    start_us: float
    #: The original arrival time — latency/deadline base.
    arrival_us: float
    #: Rounds already consumed by earlier dispatches of this inv.
    attempt_base: int = 0
    #: Initial dispatch: counts the arrival, may be shed.
    is_initial: bool = True
    #: Hedge attempts never retry and never shed.
    is_hedge: bool = False


@dataclass(frozen=True)
class _Completion:
    """Host → router: one serve chain finished successfully."""

    inv_id: int
    host_index: int
    finish_us: float
    kind: StartKind
    #: Rounds consumed by the whole chain, ``attempt_base`` included.
    rounds: int
    #: Rounds this dispatch itself ran (> 1 only for local backoff
    #: retries, i.e. when failover is off).
    local_rounds: int
    #: Duration of the winning attempt (hedge-threshold input).
    attempt_latency_us: float
    is_hedge: bool


@dataclass(frozen=True)
class _Failure:
    """Host → router: one serve chain gave up (or wants failover)."""

    inv_id: int
    host_index: int
    fail_us: float
    rounds: int
    local_rounds: int
    #: The host already spent a budget token and drew a backoff; the
    #: router should redispatch on another host.
    wants_retry: bool
    backoff_us: float
    is_hedge: bool


@dataclass(frozen=True)
class _Shed:
    """Host → router: an initial dispatch was rejected at admission."""

    inv_id: int
    host_index: int
    time_us: float


class _ShardHostSim(ClusterSimulator):
    """A single-host cluster sim driven window-by-window.

    Reuses the parent class's entire setup (:meth:`_begin_run`),
    attempt body (:meth:`_attempt`), unarmed serve (:meth:`_serve`)
    and fault-injector surface verbatim; what changes is the driver:
    instead of iterating a trace, the host executes router dispatches
    and reports digests at window barriers.
    """

    def __init__(self, fleet, config: ClusterConfig, host_index: int):
        total = config.num_hosts
        sub = dataclasses.replace(
            config,
            num_hosts=1,
            seed=config.seed + _HOST_SEED_STRIDE * (host_index + 1),
        )
        super().__init__(fleet, sub)
        self.host_index = host_index
        self.total_hosts = total
        #: serve-entry id → inv id, for harvesting unarmed completions.
        self._inv_for_serve: Dict[int, int] = {}

    # Hooks into the parent's setup -----------------------------------

    def _host_id(self, index: int) -> str:
        return f"host{self.host_index}"

    def _make_retry_budget(self, recovery) -> RetryBudget:
        return RetryBudget.partitioned(
            recovery.retry_budget_min,
            recovery.retry_budget_ratio,
            self.total_hosts,
        )

    # Window-driven lifecycle ------------------------------------------

    def begin(
        self,
        fault_plan: Optional[FaultPlan],
        armed: bool,
        causal: bool = False,
    ) -> Dict[str, Any]:
        """Run the prep epoch and arm fault machinery; returns the
        initial digest. ``causal`` installs a per-host
        :class:`~repro.metrics.causal.CausalRecorder` (source = host
        index) whose events each window digest drains back to the
        router."""
        host_id = self._host_id(0)
        sub_plan = plan_for_host(fault_plan, host_id)
        if sub_plan is None and armed:
            sub_plan = FaultPlan.empty()
        if causal:
            # Installed before ``_begin_run`` so its getattr pickup
            # keeps this host-sourced recorder.
            self._causal_rec = CausalRecorder(self.host_index)
        env = self._begin_run(None, sub_plan)
        self.sampler = None
        self._latency_hist = self.registry.histogram(
            "cluster.latency_us", edges=LATENCY_HISTOGRAM_EDGES
        )
        prep = env.process(self._prepare(), name="shard-prep")
        env.run(until=prep)
        self._epoch = env.now
        self._obs_epoch_us = self._epoch
        self._report.prep_us = env.now
        if self.injector is not None:
            self.injector.arm(self, epoch_us=self._epoch)
        if self.monitor is not None:
            self.monitor.start()
        if self.durability is not None:
            self.durability.start_scrubber(self._host_id(0))
        self._served_cursor = 0
        self._out_completions: List[_Completion] = []
        self._out_failures: List[_Failure] = []
        self._out_sheds: List[_Shed] = []
        self._shared_bytes_seen = 0
        self._bg_degradation: Optional[Degradation] = None
        digest = self._digest(window_events=0)
        digest["prep_us"] = self._epoch
        return digest

    def apply_updates(self, updates: Dict[str, Any]) -> None:
        """Barrier inputs for the coming window: cluster-published
        snapshots, the rebalanced budget slice, and the shared tier's
        background-demand factor."""
        hs = self._hosts[0]
        published = updates.get("snapshots")
        if published:
            hs.snapshots.update(published)
        tokens = updates.get("budget_tokens")
        if tokens is not None and self._retry_budget is not None:
            self._retry_budget.tokens = tokens
        if self._shared_device is not None:
            if self._bg_degradation is not None:
                self._shared_device.pop_degradation(self._bg_degradation)
                self._bg_degradation = None
            factor = updates.get("background_demand")
            if factor is not None:
                self._bg_degradation = Degradation(
                    bandwidth_factor=factor
                )
                self._shared_device.push_degradation(self._bg_degradation)

    def submit(self, dispatch: _Dispatch) -> None:
        self.env.process(
            self._submission(dispatch),
            name=f"dispatch:{dispatch.function}",
        )

    def advance_window(self, until_us: float) -> Dict[str, Any]:
        """Run the host to the window barrier and digest what
        happened."""
        events = self.env.advance_to(self._epoch + until_us)
        return self._digest(window_events=events)

    def finalize(self) -> Dict[str, Any]:
        """End of run: per-host report pieces + telemetry snapshot."""
        if self.monitor is not None:
            self.monitor.stop()
        report = self._finish_run()
        hs = self._hosts[0]
        snapshot = registry_snapshot(self.registry)
        snapshot["virtual_time_us"] = self.env.now
        return {
            "host_index": self.host_index,
            "host_id": hs.host.host_id,
            "stats": hs.stats,
            "served": list(report.served),
            "memory_samples_mb": list(report.memory_samples_mb),
            "evictions": report.evictions,
            "prep_us": report.prep_us,
            "snapshot": snapshot,
            "latency_histogram": self._latency_hist.histogram,
            "fault_summary": dict(report.fault_summary),
            "durability_events": (
                self.durability.drain_events()
                if self.durability is not None
                else []
            ),
        }

    # Internals --------------------------------------------------------

    def _digest(self, window_events: int) -> Dict[str, Any]:
        hs = self._hosts[0]
        completions = self._out_completions
        failures = self._out_failures
        sheds = self._out_sheds
        self._out_completions = []
        self._out_failures = []
        self._out_sheds = []
        if not self._armed:
            # Unarmed serves are the parent class's verbatim ``_serve``;
            # completions are harvested from its report entries.
            new = self._report.served[self._served_cursor :]
            self._served_cursor = len(self._report.served)
            completions = completions + [
                _Completion(
                    inv_id=self._inv_for_serve.pop(id(s)),
                    host_index=self.host_index,
                    finish_us=s.time_us + s.latency_us,
                    kind=s.kind,
                    rounds=1,
                    local_rounds=1,
                    attempt_latency_us=s.latency_us,
                    is_hedge=False,
                )
                for s in new
            ]
        shared_bytes = 0
        if self._shared_device is not None:
            total = self._shared_device.stats.bytes_read
            shared_bytes = max(0, total - self._shared_bytes_seen)
            self._shared_bytes_seen = total
        out: Dict[str, Any] = {
            "completions": completions,
            "failures": failures,
            "sheds": sheds,
            "load": hs.load,
            "healthy": hs.healthy,
            "crashed": hs.host.crashed,
            "idle_warm": tuple(hs.idle.idle_functions()),
            "snapshots": tuple(sorted(hs.snapshots)),
            "tokens": (
                self._retry_budget.tokens
                if self._retry_budget is not None
                else None
            ),
            "shared_bytes": shared_bytes,
            "window_events": window_events,
        }
        if self.durability is not None:
            # Quarantine-aware warm view: the router must not route a
            # snapshot start at a host whose every replica is bad.
            out["readable"] = tuple(
                f
                for f in out["snapshots"]
                if self.durability.has_readable(hs.host.host_id, f)
            )
            out["durability_events"] = self.durability.drain_events()
        if self._causal_rec is not None:
            out["causal_events"] = self._causal_rec.drain()
        return out

    def _submission(self, d: _Dispatch):
        env = self.env
        hs = self._hosts[0]
        at = self._epoch + d.start_us
        if env.now < at:
            yield env.wake_at(at)
        self._evict_expired(hs, env.now)
        hs.queued += 1
        self._report.memory_samples_mb.append(hs.memory_mb)
        ctx = None
        if self._causal_rec is not None:
            ctx = TraceContext(self._causal_rec, d.inv_id)
            ctx.emit(
                self._obs_now(),
                "dispatch",
                host=hs.host.host_id,
                hedge=d.is_hedge,
            )
        if self._armed:
            yield from self._serve_sharded(hs, d, ctx)
        else:
            arrival = Arrival(time_us=d.arrival_us, function=d.function)
            yield from self._serve(hs, arrival, env.now, ctx)
            # ``_serve`` appends its entry and returns with no further
            # yields, so the new entry is the last one right now.
            entry = self._report.served[-1]
            self._inv_for_serve[id(entry)] = d.inv_id
            self._latency_hist.observe(entry.latency_us)

    def _serve_sharded(self, hs, d: _Dispatch, ctx=None):
        """The armed serve chain for one dispatch: mirrors the parent
        class's ``_serve_robust`` round loop, but everything cross-host
        — failover, hedging, final outcomes — is handed back to the
        router as failure/completion records."""
        env = self.env
        recovery = self.config.recovery
        retry = recovery.retry
        budget = self._retry_budget
        function = d.function

        if d.is_hedge:
            hs.stats.hedges += 1
        if d.is_initial:
            budget.on_arrival()
            shedding = recovery.shedding
            if (
                shedding.max_queue_depth is not None
                and hs.load > shedding.max_queue_depth
            ):
                hs.queued -= 1
                hs.stats.shed += 1
                self._ctr_shed.inc()
                if ctx is not None:
                    ctx.emit(
                        self._obs_now(),
                        "shed",
                        host=hs.host.host_id,
                        load=hs.load,
                    )
                self._out_sheds.append(
                    _Shed(d.inv_id, self.host_index, d.arrival_us)
                )
                return

        deadline_at = (
            self._epoch + d.arrival_us + recovery.deadline_us
            if recovery.deadline_us is not None
            else None
        )
        arrival = Arrival(time_us=d.arrival_us, function=function)
        rounds = d.attempt_base
        pre_counted = True
        while True:
            rounds += 1
            proc = self._launch_attempt(hs, arrival, pre_counted, ctx, rounds)
            pre_counted = False
            start = env.now
            race = env.first_success([proc])
            waits = [race]
            deadline_evt = None
            if deadline_at is not None:
                deadline_evt = env.wake_at(max(deadline_at, env.now))
                waits.append(deadline_evt)
            try:
                yield env.any_of(waits)
            except AllFailed as exc:
                round_failure = exc
            else:
                round_failure = None

            if round_failure is None:
                if race.triggered and race.ok:
                    _, kind = race.value
                    self._latency_hist.observe(
                        env.now - (self._epoch + d.arrival_us)
                    )
                    self._out_completions.append(
                        _Completion(
                            inv_id=d.inv_id,
                            host_index=self.host_index,
                            finish_us=env.now - self._epoch,
                            kind=kind,
                            rounds=rounds,
                            local_rounds=rounds - d.attempt_base,
                            attempt_latency_us=env.now - start,
                            is_hedge=d.is_hedge,
                        )
                    )
                    return
                if deadline_evt is not None and deadline_evt.processed:
                    if proc.is_alive:
                        proc.interrupt(
                            DeadlineExceeded(function, recovery.deadline_us)
                        )
                    if ctx is not None:
                        ctx.emit(
                            self._obs_now(),
                            "deadline-exceeded",
                            deadline_us=recovery.deadline_us,
                        )
                    self._out_failures.append(
                        _Failure(
                            d.inv_id,
                            self.host_index,
                            env.now - self._epoch,
                            rounds,
                            rounds - d.attempt_base,
                            wants_retry=False,
                            backoff_us=0.0,
                            is_hedge=d.is_hedge,
                        )
                    )
                    return
                continue  # pragma: no cover - no other wake source

            causes = [
                c.cause if isinstance(c, Interrupt) else c
                for c in round_failure.causes
            ]
            for cause in causes:
                if not isinstance(cause, FaultError):
                    raise round_failure  # a genuine bug — surface it
            retryable = not any(
                isinstance(c, DeadlineExceeded) for c in causes
            )
            if (
                not d.is_hedge
                and retryable
                and retry.enabled
                and rounds < retry.max_attempts
                and budget.try_spend()
            ):
                backoff = retry.backoff_us(rounds, env.rng)
                if deadline_at is not None and (
                    env.now + backoff >= deadline_at
                ):
                    self._out_failures.append(
                        _Failure(
                            d.inv_id,
                            self.host_index,
                            env.now - self._epoch,
                            rounds,
                            rounds - d.attempt_base,
                            wants_retry=False,
                            backoff_us=0.0,
                            is_hedge=d.is_hedge,
                        )
                    )
                    return
                hs.stats.retries += 1
                self._ctr_retries.inc()
                if ctx is not None:
                    ctx.emit(
                        self._obs_now(),
                        "retry",
                        round=rounds,
                        backoff_us=backoff,
                        failover=bool(
                            recovery.failover and self.total_hosts > 1
                        ),
                    )
                if recovery.failover and self.total_hosts > 1:
                    # Cross-host retry: the router picks the failover
                    # host and redispatches after the backoff.
                    self._out_failures.append(
                        _Failure(
                            d.inv_id,
                            self.host_index,
                            env.now - self._epoch,
                            rounds,
                            rounds - d.attempt_base,
                            wants_retry=True,
                            backoff_us=backoff,
                            is_hedge=d.is_hedge,
                        )
                    )
                    return
                if backoff > 0:
                    yield env.timeout(backoff)
                continue
            self._out_failures.append(
                _Failure(
                    d.inv_id,
                    self.host_index,
                    env.now - self._epoch,
                    rounds,
                    rounds - d.attempt_base,
                    wants_retry=False,
                    backoff_us=0.0,
                    is_hedge=d.is_hedge,
                )
            )
            return


def _build_host_sims(
    fleet, config: ClusterConfig, host_indices: Sequence[int]
) -> List[_ShardHostSim]:
    return [_ShardHostSim(fleet, config, i) for i in host_indices]


def _shard_worker_main(conn, fleet, config, host_indices, armed, plan, causal):
    """Worker process: owns one shard's host sims, executes router
    commands from the pipe until told to stop. Module-level (and all
    arguments picklable) so the ``spawn`` start method works too."""
    try:
        sims = _build_host_sims(fleet, config, host_indices)
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "begin":
                conn.send(
                    {
                        s.host_index: s.begin(plan, armed, causal)
                        for s in sims
                    }
                )
            elif cmd == "window":
                _, until_us, updates, dispatches = msg
                out = {}
                for s in sims:
                    s.apply_updates(updates.get(s.host_index, {}))
                    for d in dispatches.get(s.host_index, ()):
                        s.submit(d)
                    out[s.host_index] = s.advance_window(until_us)
                conn.send(out)
            elif cmd == "finalize":
                conn.send({s.host_index: s.finalize() for s in sims})
            elif cmd == "stop":
                conn.close()
                return
    except BaseException:
        try:
            conn.send({"__error__": traceback.format_exc()})
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass


class _SerialBackend:
    """``shards=1``: the identical protocol, executed in-process.
    Every host still has its own environment and digests — the router
    cannot tell the backends apart, which is the determinism
    argument in one sentence."""

    def __init__(self, fleet, config, armed, plan, causal=False):
        self._sims = _build_host_sims(
            fleet, config, range(config.num_hosts)
        )
        self._armed = armed
        self._plan = plan
        self._causal = causal

    def begin(self):
        return {
            s.host_index: s.begin(self._plan, self._armed, self._causal)
            for s in self._sims
        }

    def window(self, until_us, updates, dispatches):
        out = {}
        for s in self._sims:
            s.apply_updates(updates.get(s.host_index, {}))
            for d in dispatches.get(s.host_index, ()):
                s.submit(d)
            out[s.host_index] = s.advance_window(until_us)
        return out

    def finalize(self):
        return {s.host_index: s.finalize() for s in self._sims}

    def close(self):
        pass


class _ProcessBackend:
    """``shards>1``: persistent worker processes over pipes, ``fork``
    preferred with a ``spawn`` fallback (same discipline as
    ``experiments.runner.parallel_map``)."""

    def __init__(self, fleet, config, armed, plan, groups, causal=False):
        ctx = None
        for method in ("fork", "spawn"):
            try:
                ctx = multiprocessing.get_context(method)
                break
            except ValueError:  # pragma: no cover - exotic platform
                continue
        if ctx is None:  # pragma: no cover - exotic platform
            raise RuntimeError("no usable multiprocessing start method")
        self._conns = []
        self._procs = []
        self._groups = groups
        for group in groups:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, fleet, config, group, armed, plan, causal),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _collect(self):
        merged: Dict[int, Any] = {}
        for conn in self._conns:
            reply = conn.recv()
            if "__error__" in reply:
                self.close()
                raise RuntimeError(
                    "shard worker failed:\n" + reply["__error__"]
                )
            merged.update(reply)
        return merged

    def begin(self):
        for conn in self._conns:
            conn.send(("begin",))
        return self._collect()

    def window(self, until_us, updates, dispatches):
        for group, conn in zip(self._groups, self._conns):
            conn.send(
                (
                    "window",
                    until_us,
                    {i: updates[i] for i in group if i in updates},
                    {i: dispatches[i] for i in group if i in dispatches},
                )
            )
        return self._collect()

    def finalize(self):
        for conn in self._conns:
            conn.send(("finalize",))
        return self._collect()

    def close(self):
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


@dataclass
class _InvState:
    """Router bookkeeping for one invocation."""

    function: str
    arrival_us: float
    #: Dispatches in flight (primary + hedge can overlap).
    outstanding: int = 0
    #: Attempt launches so far (the report's ``attempts`` field).
    attempts: int = 0
    done: bool = False
    hedged: bool = False
    #: Host and start of the live primary dispatch (hedge-fire input).
    primary_host: int = -1
    primary_start_us: float = 0.0
    #: Latest failover-requesting failure, held until every
    #: outstanding attempt of the inv has resolved.
    stashed_retry: Optional[_Failure] = None


class ShardedClusterSimulator:
    """Serve a cluster trace through the windowed router protocol.

    ``run`` returns a :class:`~repro.cluster.scheduler.ClusterReport`;
    afterwards ``merged_metrics`` holds the deterministic cross-shard
    telemetry merge and ``latency_histogram`` the
    :meth:`~repro.metrics.stats.Histogram.merge` of every host's
    serve-latency histogram.
    """

    def __init__(
        self,
        fleet,
        config: Optional[ClusterConfig] = None,
        shards: int = 1,
        window_us: float = DEFAULT_WINDOW_US,
    ):
        self.fleet = list(fleet)
        self.config = config or ClusterConfig()
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.shards = min(shards, self.config.num_hosts)
        self.window_us = float(window_us)
        self.merged_metrics: Optional[Dict[str, Any]] = None
        self.latency_histogram: Optional[Histogram] = None
        self.windows_run = 0
        #: Cross-shard merged durability events, sorted
        #: ``(t_us, host, seq)`` — byte-identical across shard counts.
        self.durability_events: List[Dict[str, Any]] = []
        self._durability_events: List[Dict[str, Any]] = []

    def run(
        self,
        trace: ArrivalTrace,
        fault_plan: Optional[FaultPlan] = None,
        causal=None,
    ) -> ClusterReport:
        """Serve ``trace``. ``causal`` is an optional
        :class:`~repro.metrics.causal.CausalTracer`: the router records
        its decisions as source ``-1`` and folds in every host's
        drained events, producing one merged document whose bytes are
        invariant to the shard count."""
        config = self.config
        H = config.num_hosts
        recovery = config.recovery
        armed = (
            fault_plan is not None
            or bool(recovery.armed_features)
            or config.durability.enabled
        )
        registry = MetricsRegistry()
        self.registry = registry
        inner = make_placement(config.placement)
        if armed:
            inner = HealthFiltered(inner)
        failover = inner
        placement = CountingPlacement(
            inner, registry, [f"host{i}" for i in range(H)]
        )
        ctr_windows = registry.counter("cluster.router.windows")
        ctr_redispatch = registry.counter("cluster.router.redispatches")
        tracker: Optional[HedgeTracker] = None
        if armed:
            ctr_failed = registry.counter("cluster.scheduler.failed")
            tracker = HedgeTracker(recovery.hedge)
            registry.pull_counter("hedge.fired", lambda: tracker.fired)
            registry.pull_counter("hedge.won", lambda: tracker.won)
            registry.pull_counter(
                "hedge.cancelled", lambda: tracker.cancelled
            )

        if self.shards == 1:
            backend = _SerialBackend(
                self.fleet, config, armed, fault_plan, causal is not None
            )
        else:
            backend = _ProcessBackend(
                self.fleet,
                config,
                armed,
                fault_plan,
                partition_hosts(H, self.shards),
                causal is not None,
            )
        try:
            return self._run_router(
                trace,
                backend,
                placement,
                failover,
                tracker,
                ctr_windows,
                ctr_redispatch,
                ctr_failed if armed else None,
                armed,
                causal,
            )
        finally:
            backend.close()

    # -- the router ----------------------------------------------------

    def _run_router(
        self,
        trace: ArrivalTrace,
        backend,
        placement,
        failover,
        tracker: Optional[HedgeTracker],
        ctr_windows,
        ctr_redispatch,
        ctr_failed,
        armed: bool,
        causal=None,
    ) -> ClusterReport:
        config = self.config
        H = config.num_hosts
        W = self.window_us
        shared = config.snapshot_tier == TIER_SHARED_EBS
        #: Shared-tier replica capacity per window, bytes.
        window_capacity = EBS_IO2.bandwidth_bytes_per_us * W
        crec = causal.recorder(ROUTER_SRC) if causal is not None else None

        begin = backend.begin()
        views = [StaticHostView(index=i) for i in range(H)]
        tokens = [0.0] * H
        shared_bytes = [0] * H
        published: set = set()
        for i in range(H):
            self._apply_digest(
                views[i], begin[i], tokens, shared_bytes, published, i
            )
            if causal is not None:
                causal.extend(begin[i].get("causal_events", ()))
        prep_us = max(begin[i]["prep_us"] for i in range(H))

        arrivals = trace.arrivals
        ai = 0
        seq = 0
        heap: List[Tuple[float, int, int, _Dispatch]] = []
        invs: Dict[int, _InvState] = {}
        next_inv = 0
        inflight_total = 0
        served_router: List[ServedInvocation] = []
        failed_by_host: Dict[int, int] = {}
        updates: Dict[int, Dict[str, Any]] = {}
        horizon = (arrivals[-1].time_us if arrivals else 0.0) + (
            _SETTLE_HORIZON_US
        )
        w = 0
        while ai < len(arrivals) or heap or inflight_total:
            if w * W > horizon:
                raise RuntimeError(
                    "sharded cluster run failed to drain within the "
                    f"settle horizon (window {w})"
                )
            # Fast-forward across fully idle stretches of the trace.
            if not inflight_total:
                next_time = min(
                    arrivals[ai].time_us if ai < len(arrivals) else (
                        float("inf")
                    ),
                    heap[0][0] if heap else float("inf"),
                )
                w = max(w, int(next_time // W))
            w_end = (w + 1) * W
            ctr_windows.value += 1
            self.windows_run += 1

            # 1. route everything starting inside this window, in
            # (start time, enqueue order).
            while ai < len(arrivals) and arrivals[ai].time_us < w_end:
                a = arrivals[ai]
                ai += 1
                inv_id = next_inv
                next_inv += 1
                invs[inv_id] = _InvState(
                    function=a.function, arrival_us=a.time_us
                )
                if causal is not None:
                    causal.register(inv_id, a.function, a.time_us)
                heapq.heappush(
                    heap,
                    (
                        a.time_us,
                        seq,
                        -1,  # host chosen at dispatch time
                        _Dispatch(
                            inv_id=inv_id,
                            function=a.function,
                            start_us=a.time_us,
                            arrival_us=a.time_us,
                        ),
                    ),
                )
                seq += 1
            dispatches: Dict[int, List[_Dispatch]] = {}
            while heap and heap[0][0] < w_end:
                _, _, host, d = heapq.heappop(heap)
                if host < 0:
                    host = placement.choose(views, d.function)
                if crec is not None:
                    crec.emit(
                        d.inv_id,
                        d.start_us,
                        "route",
                        host=f"host{host}",
                        hedge=d.is_hedge,
                        initial=d.is_initial,
                    )
                views[host].projected += 1
                meta = invs[d.inv_id]
                meta.outstanding += 1
                meta.attempts += 1
                inflight_total += 1
                if not d.is_hedge:
                    meta.primary_host = host
                    meta.primary_start_us = d.start_us
                dispatches.setdefault(host, []).append(d)

            # 2. barrier: deliver, advance every host to w_end, digest.
            digests = backend.window(w_end, updates, dispatches)
            events = []
            for i in range(H):
                digest = digests[i]
                self._apply_digest(
                    views[i], digest, tokens, shared_bytes, published, i
                )
                if causal is not None:
                    causal.extend(digest.get("causal_events", ()))
                for j, c in enumerate(digest["completions"]):
                    events.append((c.finish_us, i, j, "done", c))
                for j, f in enumerate(digest["failures"]):
                    events.append((f.fail_us, i, j, "fail", f))
                for j, s in enumerate(digest["sheds"]):
                    events.append((s.time_us, i, j, "shed", s))
            events.sort(key=lambda e: (e[0], e[1], e[2], e[3]))

            # 3. resolve outcomes / schedule redispatches.
            for _, host_idx, _, etype, rec in events:
                inflight_total -= 1
                meta = invs[rec.inv_id]
                meta.outstanding -= 1
                if etype == "shed":
                    meta.done = True
                    served_router.append(
                        ServedInvocation(
                            time_us=meta.arrival_us,
                            function=meta.function,
                            kind=None,
                            latency_us=0.0,
                            host=f"host{host_idx}",
                            outcome=InvocationOutcome.SHED,
                            attempts=0,
                        )
                    )
                    continue
                if etype == "done":
                    meta.attempts += rec.local_rounds - 1
                    if meta.done:
                        # A hedge race already resolved; this is the
                        # loser completing late.
                        tracker.cancelled += 1
                        if crec is not None:
                            crec.emit(
                                rec.inv_id,
                                rec.finish_us,
                                "hedge-cancelled",
                                hedge=rec.is_hedge,
                                host=f"host{host_idx}",
                            )
                        continue
                    meta.done = True
                    if not armed:
                        # Unarmed entries are recorded host-side by
                        # the verbatim legacy serve path.
                        continue
                    tracker.record(rec.attempt_latency_us)
                    if rec.is_hedge:
                        tracker.won += 1
                        outcome = InvocationOutcome.HEDGE_WON
                    elif rec.rounds > 1:
                        outcome = InvocationOutcome.RETRIED
                    else:
                        outcome = InvocationOutcome.OK
                    if crec is not None:
                        crec.emit(
                            rec.inv_id,
                            rec.finish_us,
                            "outcome",
                            attempts=meta.attempts,
                            host=f"host{host_idx}",
                            kind=rec.kind.value,
                            latency_us=rec.finish_us - meta.arrival_us,
                            outcome=outcome.value,
                        )
                    served_router.append(
                        ServedInvocation(
                            time_us=meta.arrival_us,
                            function=meta.function,
                            kind=rec.kind,
                            latency_us=rec.finish_us - meta.arrival_us,
                            host=f"host{host_idx}",
                            outcome=outcome,
                            attempts=meta.attempts,
                        )
                    )
                    continue
                # etype == "fail"
                meta.attempts += rec.local_rounds - 1
                if meta.done:
                    continue
                if rec.wants_retry:
                    meta.stashed_retry = rec
                if meta.outstanding > 0:
                    continue  # a hedge twin is still running
                retry_rec = meta.stashed_retry
                meta.stashed_retry = None
                if retry_rec is not None:
                    target = self._pick_failover_host(
                        views, failover, retry_rec.host_index,
                        meta.function,
                    )
                    if target is None:
                        target = retry_rec.host_index
                    start = max(
                        w_end,
                        retry_rec.fail_us + retry_rec.backoff_us,
                    )
                    ctr_redispatch.value += 1
                    if crec is not None:
                        crec.emit(
                            rec.inv_id,
                            start,
                            "redispatch",
                            backoff_us=retry_rec.backoff_us,
                            host=f"host{target}",
                            round=retry_rec.rounds,
                        )
                    heapq.heappush(
                        heap,
                        (
                            start,
                            seq,
                            target,
                            _Dispatch(
                                inv_id=rec.inv_id,
                                function=meta.function,
                                start_us=start,
                                arrival_us=meta.arrival_us,
                                attempt_base=retry_rec.rounds,
                                is_initial=False,
                            ),
                        ),
                    )
                    seq += 1
                    continue
                meta.done = True
                ctr_failed.inc()
                failed_by_host[host_idx] = (
                    failed_by_host.get(host_idx, 0) + 1
                )
                if crec is not None:
                    crec.emit(
                        rec.inv_id,
                        rec.fail_us,
                        "outcome",
                        attempts=meta.attempts,
                        host=f"host{host_idx}",
                        kind=None,
                        latency_us=rec.fail_us - meta.arrival_us,
                        outcome=InvocationOutcome.FAILED.value,
                    )
                served_router.append(
                    ServedInvocation(
                        time_us=meta.arrival_us,
                        function=meta.function,
                        kind=None,
                        latency_us=rec.fail_us - meta.arrival_us,
                        host=f"host{host_idx}",
                        outcome=InvocationOutcome.FAILED,
                        attempts=meta.attempts,
                    )
                )

            # 4. barrier-time hedge decisions for the next window.
            if (
                tracker is not None
                and config.recovery.hedge.enabled
                and H > 1
            ):
                threshold = tracker.threshold_us()
                if threshold is not None:
                    deadline = config.recovery.deadline_us
                    for inv_id in sorted(invs):
                        meta = invs[inv_id]
                        if (
                            meta.done
                            or meta.hedged
                            or meta.outstanding != 1
                            or meta.primary_host < 0
                            or meta.stashed_retry is not None
                        ):
                            continue
                        fire_at = meta.primary_start_us + threshold
                        if fire_at > w_end:
                            continue
                        if deadline is not None and (
                            w_end >= meta.arrival_us + deadline
                        ):
                            continue
                        target = self._pick_failover_host(
                            views, failover, meta.primary_host,
                            meta.function,
                        )
                        if target is None:
                            continue
                        meta.hedged = True
                        tracker.fired += 1
                        if crec is not None:
                            crec.emit(
                                inv_id,
                                w_end,
                                "hedge",
                                host=f"host{target}",
                                threshold_us=threshold,
                            )
                        heapq.heappush(
                            heap,
                            (
                                w_end,
                                seq,
                                target,
                                _Dispatch(
                                    inv_id=inv_id,
                                    function=meta.function,
                                    start_us=w_end,
                                    arrival_us=meta.arrival_us,
                                    is_initial=False,
                                    is_hedge=True,
                                ),
                            ),
                        )
                        seq += 1

            # 5. compute next window's barrier updates.
            updates = {i: {} for i in range(H)}
            if armed:
                allocation = rebalance_tokens(tokens)
                for i in range(H):
                    tokens[i] = allocation[i]
                    updates[i]["budget_tokens"] = allocation[i]
            if shared:
                total_bytes = sum(shared_bytes)
                for i in range(H):
                    foreign = total_bytes - shared_bytes[i]
                    if foreign > 0:
                        updates[i]["background_demand"] = 1.0 / (
                            1.0 + foreign / window_capacity
                        )
                for i in range(H):
                    mine = set(views[i].snapshots)
                    missing = published - mine
                    if missing:
                        updates[i]["snapshots"] = tuple(sorted(missing))
            # Resolved invocations need no more router state.
            for inv_id in [
                i for i, m in invs.items() if m.done and not m.outstanding
            ]:
                del invs[inv_id]
            w += 1

        return self._assemble(
            backend, served_router, failed_by_host, prep_us
        )

    def _apply_digest(
        self, view, digest, tokens, shared_bytes, published, index
    ) -> None:
        view.base_load = digest["load"]
        view.projected = 0
        view.idle_warm = frozenset(digest["idle_warm"])
        # With the durability plane on, placement sees only snapshots
        # with >= 1 readable replica; cluster-wide publication (below)
        # still tracks everything ever captured.
        view.snapshots = frozenset(
            digest.get("readable", digest["snapshots"])
        )
        view.healthy = digest["healthy"] and not digest["crashed"]
        view.crashed = digest["crashed"]
        if digest["tokens"] is not None:
            tokens[index] = digest["tokens"]
        shared_bytes[index] = digest["shared_bytes"]
        if self.config.snapshot_tier == TIER_SHARED_EBS:
            published.update(digest["snapshots"])
        self._durability_events.extend(
            digest.get("durability_events", ())
        )

    @staticmethod
    def _pick_failover_host(
        views, failover, exclude: int, function: str
    ) -> Optional[int]:
        """Router twin of ``ClusterSimulator._pick_failover``, over
        barrier views instead of live hosts."""
        candidates = [
            v
            for v in views
            if v.index != exclude and v.healthy
        ]
        if not candidates:
            candidates = [
                v
                for v in views
                if v.index != exclude and not getattr(v, "crashed", False)
            ]
        if not candidates:
            return None
        return candidates[
            failover.choose(candidates, function)
        ].index

    def _assemble(
        self, backend, served_router, failed_by_host, prep_us
    ) -> ClusterReport:
        config = self.config
        finals = backend.finalize()
        report = ClusterReport(
            placement=config.placement,
            snapshot_tier=config.snapshot_tier,
        )
        report.prep_us = prep_us
        snapshots = []
        histograms = []
        for i in range(config.num_hosts):
            fin = finals[i]
            stats = fin["stats"]
            stats.failures += failed_by_host.get(i, 0)
            report.host_stats[fin["host_id"]] = stats
            report.served.extend(fin["served"])
            report.memory_samples_mb.extend(fin["memory_samples_mb"])
            report.evictions += fin["evictions"]
            snapshots.append(fin["snapshot"])
            histograms.append(fin["latency_histogram"])
            for key, value in fin.get("fault_summary", {}).items():
                if isinstance(value, (int, float)):
                    report.fault_summary[key] = (
                        report.fault_summary.get(key, 0) + value
                    )
            self._durability_events.extend(
                fin.get("durability_events", ())
            )
        self._durability_events.sort(
            key=lambda e: (e["t_us"], e["host"], e["seq"])
        )
        self.durability_events = self._durability_events
        report.served.extend(served_router)
        report.served.sort(key=lambda s: (s.time_us, s.function))
        router_snapshot = registry_snapshot(self.registry)
        router_snapshot["virtual_time_us"] = 0.0
        self.merged_metrics = merge_shard_snapshots(
            snapshots + [router_snapshot]
        )
        merged_hist = histograms[0]
        for hist in histograms[1:]:
            merged_hist = merged_hist.merge(hist)
        self.latency_histogram = merged_hist
        return report
