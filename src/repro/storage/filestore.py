"""Files laid out on a block device.

A :class:`StoredFile` owns a contiguous extent of its device, so byte
offset ``o`` within the file lives at device offset ``base + o`` —
sequential file reads are sequential device reads, which is exactly
the property FaaSnap's compact loading-set file exploits (§4.7).

Files also carry *page contents* as small integers: ``0`` is a zero
page, any other value identifies a distinct page's content. This is
enough to model the paper's zero-page scan (§4.5), sparse snapshot
files (§7.2), and end-to-end memory-integrity checks in tests, while
keeping the simulation cheap.

Sparse files never pay disk I/O for hole (zero) pages: the filesystem
synthesises zeros without touching the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.sim import Environment, Event, SimulationError
from repro.storage.device import BlockDevice

PAGE_SIZE = 4096
"""Bytes per page, matching the x86 base page size used throughout."""


@dataclass
class StoredFile:
    """A named file occupying a contiguous device extent."""

    name: str
    device: BlockDevice
    base_offset: int
    num_pages: int
    #: Page index -> content token. Missing entries are zero (holes).
    pages: Dict[int, int] = field(default_factory=dict)
    #: Sparse files skip device I/O for hole pages.
    sparse: bool = False

    @property
    def size_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    def page_value(self, page_index: int) -> int:
        """Content token of ``page_index`` (0 for holes)."""
        self._check_page(page_index)
        return self.pages.get(page_index, 0)

    def write_page(self, page_index: int, value: int) -> None:
        """Set page contents (metadata operation; snapshot creation is
        not on the measured critical path, see §4.1 record phase)."""
        self._check_page(page_index)
        if value == 0:
            self.pages.pop(page_index, None)
        else:
            self.pages[page_index] = value

    def device_offset(self, page_index: int) -> int:
        """Device byte offset where ``page_index`` is stored."""
        self._check_page(page_index)
        return self.base_offset + page_index * PAGE_SIZE

    def is_hole(self, page_index: int) -> bool:
        """True when the page is all zeros and stored as a hole."""
        return self.sparse and self.page_value(page_index) == 0

    def nonzero_pages(self) -> List[int]:
        """Sorted indices of pages with nonzero contents."""
        return sorted(self.pages)

    def chunk_checksums(self, chunk_pages: int) -> Tuple[int, ...]:
        """Per-chunk FNV-1a checksums over page content tokens.

        Chunk ``i`` covers pages ``[i*chunk_pages, (i+1)*chunk_pages)``
        (the last chunk may be short). Holes hash as zeros, so two
        files with identical logical contents checksum identically
        whether stored sparse or dense. This is the integrity unit
        the snapshot durability plane publishes, verifies at restore
        time, and scrubs (:mod:`repro.faults.durability`)."""
        if chunk_pages < 1:
            raise SimulationError(
                f"chunk_pages must be >= 1, got {chunk_pages}"
            )
        checksums = []
        for start in range(0, self.num_pages, chunk_pages):
            digest = 2166136261
            for index in range(
                start, min(start + chunk_pages, self.num_pages)
            ):
                value = self.pages.get(index, 0)
                digest = (
                    (digest ^ (value & 0xFFFFFFFF)) * 16777619
                ) & 0xFFFFFFFF
            checksums.append(digest)
        return tuple(checksums)

    def read(
        self, page_index: int, npages: int = 1
    ) -> Generator[Event, Any, List[int]]:
        """Process helper: read ``npages`` pages starting at
        ``page_index`` from the device and return their contents.

        Hole pages of sparse files are synthesised without I/O; runs
        of data pages are issued as single contiguous device reads.
        """
        self._check_page(page_index)
        if npages < 1:
            raise SimulationError(f"read of {npages} pages")
        if page_index + npages > self.num_pages:
            raise SimulationError(
                f"read past EOF of {self.name}: page {page_index}+{npages} "
                f"> {self.num_pages}"
            )
        values = [self.page_value(page_index + i) for i in range(npages)]
        for run_start, run_len in self.data_runs(page_index, npages):
            yield from self.device.read(
                self.base_offset + run_start * PAGE_SIZE, run_len * PAGE_SIZE
            )
        return values

    def data_runs(
        self, page_index: int, npages: int
    ) -> Iterable[Tuple[int, int]]:
        """Contiguous runs of pages that require device I/O (holes of
        sparse files split runs and cost nothing)."""
        if not self.sparse:
            yield (page_index, npages)
            return
        run_start: Optional[int] = None
        for i in range(page_index, page_index + npages):
            if self.page_value(i) != 0:
                if run_start is None:
                    run_start = i
            elif run_start is not None:
                yield (run_start, i - run_start)
                run_start = None
        if run_start is not None:
            yield (run_start, page_index + npages - run_start)

    def _check_page(self, page_index: int) -> None:
        if not 0 <= page_index < self.num_pages:
            raise SimulationError(
                f"page {page_index} out of range for {self.name} "
                f"({self.num_pages} pages)"
            )


class FileStore:
    """Allocates files contiguously on a device."""

    def __init__(self, env: Environment, device: BlockDevice):
        self.env = env
        self.device = device
        self._files: Dict[str, StoredFile] = {}
        self._next_offset = 0

    def create(
        self,
        name: str,
        num_pages: int,
        pages: Optional[Dict[int, int]] = None,
        sparse: bool = False,
    ) -> StoredFile:
        """Create ``name`` with ``num_pages`` pages of capacity."""
        if name in self._files:
            raise SimulationError(f"file {name!r} already exists")
        if num_pages < 0:
            raise SimulationError(f"negative file size: {num_pages}")
        stored = StoredFile(
            name=name,
            device=self.device,
            base_offset=self._next_offset,
            num_pages=num_pages,
            pages=dict(pages or {}),
            sparse=sparse,
        )
        self._files[name] = stored
        self._next_offset += num_pages * PAGE_SIZE
        return stored

    def get(self, name: str) -> StoredFile:
        """Look up an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise SimulationError(f"no such file: {name!r}") from None

    def delete(self, name: str) -> None:
        """Remove a file (its extent is not reused)."""
        if name not in self._files:
            raise SimulationError(f"no such file: {name!r}")
        del self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def names(self) -> List[str]:
        return sorted(self._files)
