"""Queued block-device model.

A read request proceeds in two stages:

1. Acquire one of ``queue_depth`` slots and pay the access latency —
   ``random_latency_us`` for a discontiguous read, the much smaller
   ``sequential_latency_us`` when the request starts exactly where the
   previous issued request ended. The access latency is floored by the
   device's IOPS limit (``1e6 / iops`` microseconds per request).
2. Acquire the single shared bandwidth channel and pay
   ``bytes / bandwidth`` transfer time, which caps aggregate
   throughput at the spec bandwidth regardless of queue depth.

This reproduces the cost structure the paper measures: a synchronous
4 KiB major page fault costs ~the device access latency, while the
FaaSnap loader streaming a compact loading-set file runs at device
bandwidth. Contention between the two (guest faults queueing behind
loader reads) emerges from the slot/channel resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.faults.errors import DeviceError
from repro.sim import Environment, Event, Resource, SimulationError


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance characteristics of a block device."""

    name: str
    #: Access latency of a discontiguous (seeking) read, microseconds.
    random_latency_us: float
    #: Access latency when continuing the previous read, microseconds.
    sequential_latency_us: float
    #: Sustained transfer bandwidth, bytes per microsecond (== MB/s).
    bandwidth_bytes_per_us: float
    #: Maximum request rate; floors per-request latency at 1e6/iops.
    iops: float
    #: Number of requests the device services concurrently.
    queue_depth: int = 16

    def __post_init__(self) -> None:
        if self.random_latency_us <= 0 or self.sequential_latency_us <= 0:
            raise ValueError("device latencies must be positive")
        if self.bandwidth_bytes_per_us <= 0:
            raise ValueError("device bandwidth must be positive")
        if self.iops <= 0:
            raise ValueError("device iops must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue depth must be >= 1")

    @property
    def min_request_interval_us(self) -> float:
        """Smallest per-request access cost implied by the IOPS cap."""
        return 1e6 / self.iops


@dataclass(frozen=True)
class Degradation:
    """A multiplicative performance penalty applied to a device.

    Pushed and popped by the fault injector for the duration of a
    fault window. ``latency_factor`` scales per-request access
    latency, ``bandwidth_factor`` scales transfer bandwidth (0.1 = a
    10x throughput collapse), ``iops_factor`` scales the IOPS cap
    (0.5 = the per-request interval floor doubles), and ``error_rate``
    is the probability a serviced request fails with
    :class:`~repro.faults.errors.DeviceError` (drawn from the
    environment's seeded ``rng``).
    """

    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    iops_factor: float = 1.0
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_factor <= 0 or self.bandwidth_factor <= 0:
            raise ValueError("degradation factors must be positive")
        if self.iops_factor <= 0:
            raise ValueError("iops_factor must be positive")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")

    def combine(self, other: "Degradation") -> "Degradation":
        """Stack two overlapping windows: factors multiply, error
        rates combine as independent failure probabilities."""
        return Degradation(
            latency_factor=self.latency_factor * other.latency_factor,
            bandwidth_factor=self.bandwidth_factor * other.bandwidth_factor,
            iops_factor=self.iops_factor * other.iops_factor,
            error_rate=1.0 - (1.0 - self.error_rate) * (1.0 - other.error_rate),
        )


@dataclass
class DeviceStats:
    """Mutable counters accumulated over a simulation run."""

    requests: int = 0
    sequential_requests: int = 0
    bytes_read: int = 0
    busy_time_us: float = 0.0
    #: Total time requests spent waiting for a queue slot.
    queue_wait_us: float = 0.0
    #: Requests that failed with an injected I/O error.
    errors: int = 0
    per_request_sizes: list = field(default_factory=list)

    @property
    def random_requests(self) -> int:
        return self.requests - self.sequential_requests


class BlockDevice:
    """A simulated block device attached to a simulation environment."""

    def __init__(
        self,
        env: Environment,
        spec: DeviceSpec,
        metrics_prefix: Optional[str] = None,
    ):
        self.env = env
        self.spec = spec
        self.stats = DeviceStats()
        self._slots = Resource(env, capacity=spec.queue_depth)
        self._channel = Resource(env, capacity=1)
        self._next_sequential_offset: Optional[int] = None
        #: Active degradation windows (fault injection); ``degradation``
        #: is their combined view, ``None`` on the healthy hot path so
        #: an undegraded read costs one attribute check.
        self._degradations: List[Degradation] = []
        self.degradation: Optional[Degradation] = None
        self._register_metrics(metrics_prefix)

    def _register_metrics(self, metrics_prefix: Optional[str]) -> None:
        """Join the run's registry under ``metrics_prefix`` (default
        ``storage.<spec name>``, de-duplicated per registry).

        All pull-based: closures read ``self.stats`` at collection
        time, so :meth:`reset_stats` swapping the stats object stays
        cheap and the read hot path never touches an instrument.
        """
        registry = getattr(self.env, "metrics", None)
        if registry is None:
            self.metrics_prefix = None
            return
        prefix = registry.unique_prefix(
            metrics_prefix or f"storage.{self.spec.name}"
        )
        self.metrics_prefix = prefix
        registry.pull_counter(
            f"{prefix}.requests", lambda: self.stats.requests
        )
        registry.pull_counter(
            f"{prefix}.sequential_requests",
            lambda: self.stats.sequential_requests,
        )
        registry.pull_counter(
            f"{prefix}.bytes_read", lambda: self.stats.bytes_read
        )
        registry.pull_counter(
            f"{prefix}.busy_time_us", lambda: self.stats.busy_time_us
        )
        registry.pull_counter(
            f"{prefix}.queue_wait_us", lambda: self.stats.queue_wait_us
        )
        registry.pull_counter(
            f"{prefix}.errors", lambda: self.stats.errors
        )
        registry.gauge(
            f"{prefix}.degraded",
            lambda: 1 if self.degradation is not None else 0,
        )
        registry.gauge(
            f"{prefix}.queue_depth", lambda: self._slots.in_use
        )
        registry.gauge(
            f"{prefix}.channel_in_use", lambda: self._channel.in_use
        )
        registry.profiler.add_pull(
            f"{prefix}.service",
            lambda: (
                self.stats.busy_time_us - self.stats.queue_wait_us,
                self.stats.requests,
            ),
        )
        registry.profiler.add_pull(
            f"{prefix}.queueing",
            lambda: (self.stats.queue_wait_us, self.stats.requests),
        )

    def read(
        self, offset: int, nbytes: int
    ) -> Generator[Event, Any, float]:
        """Process helper: simulate reading ``nbytes`` at ``offset``.

        Usage inside a process: ``yield from device.read(off, n)``.
        Returns the total service time (including queueing) in
        microseconds.
        """
        if nbytes <= 0:
            raise SimulationError(f"read of {nbytes} bytes")
        if offset < 0:
            raise SimulationError(f"read at negative offset {offset}")
        start = self.env.now

        # The slot yield sits *inside* the try so that a process
        # interrupted while queueing (host crash, hedge cancellation)
        # releases its place in line: ``Resource.release`` of an
        # ungranted request removes it from the wait queue, and of a
        # granted one returns the slot.
        slot = self._slots.request()
        try:
            yield slot
            self.stats.queue_wait_us += self.env.now - start
            # Sequentiality is decided at issue time against the tail
            # of the previous issued request, like an on-device
            # readahead detector.
            sequential = offset == self._next_sequential_offset
            self._next_sequential_offset = offset + nbytes

            latency = (
                self.spec.sequential_latency_us
                if sequential
                else self.spec.random_latency_us
            )
            degradation = self.degradation
            if degradation is None:
                latency = max(latency, self.spec.min_request_interval_us)
                bandwidth = self.spec.bandwidth_bytes_per_us
            else:
                latency = max(
                    latency * degradation.latency_factor,
                    self.spec.min_request_interval_us
                    / degradation.iops_factor,
                )
                bandwidth = (
                    self.spec.bandwidth_bytes_per_us
                    * degradation.bandwidth_factor
                )
            yield self.env.timeout(latency)

            if (
                degradation is not None
                and degradation.error_rate > 0.0
                and self.env.rng.random() < degradation.error_rate
            ):
                # The access failed after seeking: the request burned
                # its slot time but transfers nothing.
                self.stats.errors += 1
                raise DeviceError(self.spec.name, offset, nbytes)

            channel = self._channel.request()
            try:
                yield channel
                transfer = nbytes / bandwidth
                yield self.env.timeout(transfer)
            finally:
                self._channel.release(channel)

            self.stats.requests += 1
            if sequential:
                self.stats.sequential_requests += 1
            self.stats.bytes_read += nbytes
            self.stats.per_request_sizes.append(nbytes)
        finally:
            self._slots.release(slot)

        elapsed = self.env.now - start
        self.stats.busy_time_us += elapsed
        return elapsed

    def can_read_immediately(self) -> bool:
        """True when a read issued right now would acquire a queue
        slot and the bandwidth channel without waiting. The fault
        fast path uses this (together with an event-heap check) to
        decide whether a read's service time is computable
        synchronously. A degraded device always says no: the batching
        fast path replicates the *healthy* read arithmetic, so fault
        windows must take the event path (which is where degradation
        factors and error injection live)."""
        return (
            self.degradation is None
            and self._slots.in_use < self._slots.capacity
            and self._channel.in_use == 0
        )

    def push_degradation(self, degradation: Degradation) -> None:
        """Apply a degradation window (fault injector entry point)."""
        self._degradations.append(degradation)
        self._recombine()

    def pop_degradation(self, degradation: Degradation) -> None:
        """Revoke a previously pushed degradation window."""
        self._degradations.remove(degradation)
        self._recombine()

    def _recombine(self) -> None:
        combined: Optional[Degradation] = None
        for degradation in self._degradations:
            combined = (
                degradation if combined is None
                else combined.combine(degradation)
            )
        self.degradation = combined

    def reset_stats(self) -> None:
        """Zero the counters (e.g. between record and test phases)."""
        self.stats = DeviceStats()

    def reset_readahead(self) -> None:
        """Forget the sequential-read detector's window.

        Dropping the page cache between measured runs is meant to make
        each run independent of history; the detector's remembered
        tail offset is the one remaining piece of cross-run device
        state, so the platform clears it alongside the cache. Without
        this, whether a run's first read counts as sequential would
        depend on whatever unrelated I/O happened to run before it.
        """
        self._next_sequential_offset = None

    def estimate_read_time(self, nbytes: int, sequential: bool = False) -> float:
        """Uncontended service-time estimate (used for sanity checks
        and tests; the simulation itself never uses this shortcut)."""
        latency = (
            self.spec.sequential_latency_us
            if sequential
            else self.spec.random_latency_us
        )
        latency = max(latency, self.spec.min_request_interval_us)
        return latency + nbytes / self.spec.bandwidth_bytes_per_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BlockDevice {self.spec.name}>"
