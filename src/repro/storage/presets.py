"""Device presets calibrated to the paper's measurement platform.

Section 6.1: the local disk is an NVMe SSD with measured maximum
throughput of 1589 MB/s and 285,000 IOPS. Section 6.7: the remote
volume is an AWS EBS io2 volume with 64K maximum IOPS and 1 GB/s
maximum throughput, with the added latency of a network round trip.

Random-access latencies are not reported directly in the paper; they
are set so the simulated page-fault-time distribution reproduces the
paper's Figure 2 buckets (major faults mostly in the 32-512 us range
on NVMe, and proportionally slower on EBS).
"""

from __future__ import annotations

from repro.sim import Environment
from repro.storage.device import BlockDevice, DeviceSpec

#: Local NVMe SSD of the AWS c5d.metal host (paper §6.1).
NVME_LOCAL = DeviceSpec(
    name="nvme-local",
    random_latency_us=80.0,
    sequential_latency_us=4.0,
    bandwidth_bytes_per_us=1589.0,  # 1589 MB/s
    iops=285_000.0,
    queue_depth=16,
)

#: Remote AWS EBS io2 volume (paper §6.7).
EBS_IO2 = DeviceSpec(
    name="ebs-io2",
    random_latency_us=280.0,
    sequential_latency_us=60.0,
    bandwidth_bytes_per_us=1000.0,  # 1 GB/s
    iops=64_000.0,
    queue_depth=16,
)

#: S3-class object storage: the paper's "slowest tier" for snapshots
#: of functions far down the invocation-frequency distribution
#: (§7.2). Millisecond first-byte latency, decent streaming
#: bandwidth, low request rate.
S3_OBJECT = DeviceSpec(
    name="s3-object",
    random_latency_us=15_000.0,
    sequential_latency_us=2_000.0,
    bandwidth_bytes_per_us=400.0,  # ~400 MB/s streaming
    iops=3_500.0,
    queue_depth=32,
)


def make_nvme_device(env: Environment) -> BlockDevice:
    """A local NVMe SSD attached to ``env``."""
    return BlockDevice(env, NVME_LOCAL)


def make_ebs_device(env: Environment) -> BlockDevice:
    """A remote EBS io2 volume attached to ``env``."""
    return BlockDevice(env, EBS_IO2)
