"""Block storage substrate.

The paper's results are driven by one storage fact: *small scattered
reads are slow, large sequential reads are fast*. This package models
that with a queued block device (:class:`BlockDevice`): each request
pays a per-request access latency (reduced when it continues the
previous request sequentially), transfers bytes through a shared
bandwidth channel, and competes for a bounded number of queue-depth
slots. Device presets match the paper's measured hardware: a local
NVMe SSD (1589 MB/s, 285k IOPS) and a remote EBS io2 volume (1 GB/s,
64k IOPS, §6.7).

:class:`FileStore` lays files out contiguously on a device so that
sequential file reads become sequential device reads, and supports
sparse files (zero pages are holes that cost no I/O) as used for
snapshot memory files (§7.2).
"""

from repro.storage.device import BlockDevice, DeviceSpec, DeviceStats
from repro.storage.filestore import FileStore, StoredFile
from repro.storage.presets import (
    EBS_IO2,
    NVME_LOCAL,
    make_ebs_device,
    make_nvme_device,
)

__all__ = [
    "BlockDevice",
    "DeviceSpec",
    "DeviceStats",
    "EBS_IO2",
    "FileStore",
    "NVME_LOCAL",
    "StoredFile",
    "make_ebs_device",
    "make_nvme_device",
]
