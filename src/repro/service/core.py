"""The cluster service core: an incrementally-advanced simulation
driven by a command stream.

:class:`ClusterService` wraps a
:class:`~repro.cluster.scheduler.ClusterSimulator` and owns its run
lifecycle. Construction performs exactly the setup the legacy batch
``run`` performed (``_begin_run``, sampler, driver process) but the
driver is now a *pump*: a resident process that sleeps until the next
pending arrival's instant, dispatches it through the scheduler's
serving hooks, and — when the pending heap is empty — parks on a
mailbox event until new arrivals are injected or the service is
drained. Virtual time only moves when a command moves it
(:meth:`ClusterService.execute` with an ``advance``), so operators can
interleave control actions (swap placement, arm faults, grow the
cluster) between precisely-chosen instants.

Determinism contract: every state-changing command is journaled with
a digest of simulation state taken immediately after it; ``advance``
entries also record the arrivals pulled from the service's source.
Replaying a journal (:func:`replay_journal`) therefore needs no
source and must reproduce every digest bit-for-bit.

Batch compatibility: :meth:`ClusterService.run_batch` is the canned
command stream ``inject(everything); drain()``. With all arrivals
pre-injected the pump's mailbox is never created, and its
peek/sleep/pop/dispatch sequence is event-for-event identical to the
historical inline driver loop — the perf harness's cluster checksums
gate this bit-parity.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.fleet.workload import (
    Arrival,
    ArrivalSource,
    PoissonArrivalSource,
    TraceArrivalSource,
    generate_arrivals,
    synthesize_fleet,
)
from repro.metrics.exporters import DeltaExporter
from repro.metrics.slo import SloMonitor
from repro.metrics.telemetry import Sampler
from repro.service.commands import (
    AddHostCommand,
    AdvanceCommand,
    ArmCommand,
    Command,
    DisarmCommand,
    DrainCommand,
    DrainHostCommand,
    DurabilityStatusCommand,
    InjectCommand,
    ScrubCommand,
    SetKeepaliveCommand,
    SetSloCommand,
    SloStatusCommand,
    SnapshotTelemetryCommand,
    StatusCommand,
    SwapPlacementCommand,
    UndrainHostCommand,
    command_from_dict,
)
from repro.service.journal import JournalWriter, read_journal
from repro.sim import Event, Interrupt


class ServiceError(RuntimeError):
    """A command that cannot be executed in the service's current
    state."""


class ClusterService:
    """A live, command-driven cluster simulation.

    ``simulator`` is a fresh :class:`ClusterSimulator`; the service
    begins its run immediately (environment, hosts and prep are set
    up, but no virtual time passes until a command advances it).
    ``arrival_source`` feeds ``advance`` commands; without one, only
    explicitly injected arrivals are served. ``journal`` (a
    :class:`~repro.service.journal.JournalWriter`) records every
    state-changing command.
    """

    def __init__(
        self,
        simulator,
        *,
        arrival_source: Optional[ArrivalSource] = None,
        tracer=None,
        sampler_interval_us: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        journal: Optional[JournalWriter] = None,
        causal=None,
        slo: Optional[SloMonitor] = None,
        flight=None,
    ):
        self.simulator = simulator
        self._source = arrival_source
        self._journal = journal
        # The observability plane rides on simulator attributes that
        # ``_begin_run`` picks up (``getattr`` with a None default),
        # so they must be installed before it runs.
        simulator._causal = causal
        simulator._slo = slo
        simulator._flight = flight
        self.causal = causal
        self.slo = slo
        self.flight = flight
        # Mirror the legacy batch ``run`` construction order exactly:
        # _begin_run, then sampler creation + start, then the driver
        # process — anything else would shift event sequence numbers.
        env = simulator._begin_run(tracer, fault_plan)
        self.env = env
        simulator.sampler = None
        self.sampler: Optional[Sampler] = None
        if sampler_interval_us is not None:
            self.sampler = Sampler(
                simulator.registry, env, sampler_interval_us
            )
            simulator.sampler = self.sampler
            self.sampler.start()
        self._delta = DeltaExporter(simulator.registry)
        #: Pending arrivals: ``(epoch-relative time_us, tiebreak,
        #: Arrival)``. The monotone tiebreak keeps heap order stable
        #: for same-instant arrivals and keeps ``Arrival`` out of
        #: comparisons.
        self._pending: List[Tuple[float, int, Arrival]] = []
        self._tiebreak = itertools.count()
        self._procs: List[Any] = []
        self._mailbox: Optional[Event] = None
        self._sleeping_until: Optional[float] = None
        self._draining = False
        self._started = False
        self._finished = False
        self._epoch_us: Optional[float] = None
        self._entry_seq = 0
        self.report = None
        self._prep_done = Event(env)
        self._proc = env.process(self._pump(), name="cluster-driver")

    # -- the pump ------------------------------------------------------

    def _pump(self):
        sim = self.simulator
        env = self.env
        yield from sim._prepare()
        prep_end = sim._start_serving_epoch()
        self._epoch_us = prep_end
        # Commands gate on prep completion; succeeding an event the
        # batch path never waits on costs one extra heap event and
        # nothing else.
        self._prep_done.succeed(prep_end)
        pending = self._pending
        procs = self._procs
        while True:
            if not pending:
                if self._draining:
                    break
                # Idle: park until an inject/drain pokes the mailbox.
                self._mailbox = Event(env)
                yield self._mailbox
                self._mailbox = None
                continue
            instant = prep_end + pending[0][0]
            if env.now < instant:
                self._sleeping_until = instant
                interrupted = False
                try:
                    yield env.wake_at(instant)
                except Interrupt:
                    # An earlier arrival landed while we slept;
                    # re-peek the heap.
                    interrupted = True
                finally:
                    self._sleeping_until = None
                if interrupted:
                    continue
            _, _, arrival = heapq.heappop(pending)
            # ``instant`` may be in the past for late injections; the
            # dispatch happens now, the nominal arrival instant keeps
            # queue delay inside the reported latency.
            sim._dispatch_arrival(arrival, instant, procs)
        if procs:
            yield env.all_of(procs)
        sim._stop_serving_epoch()

    def _push_arrivals(self, arrivals: List[Arrival]) -> None:
        pending = self._pending
        for arrival in arrivals:
            heapq.heappush(
                pending,
                (arrival.time_us, next(self._tiebreak), arrival),
            )
        if not pending:
            return
        if self._mailbox is not None and not self._mailbox.triggered:
            self._mailbox.succeed()
        elif self._sleeping_until is not None:
            first = (self._epoch_us or 0.0) + pending[0][0]
            if first < self._sleeping_until:
                self._proc.interrupt("earlier arrival injected")

    def _ensure_started(self) -> None:
        """Run the prep epoch to completion (first command only)."""
        if self._started:
            return
        self._started = True
        self.env.run(until=self._prep_done)

    # -- digests -------------------------------------------------------

    def digest(self) -> Dict[str, Any]:
        """Fingerprint of simulation state: the journal's equality
        gate. Cheap scalars only — virtual clock, served count, the
        latency checksum the perf harness also pins, and the kernel's
        event counter (any divergence in event scheduling shows up
        here even when latencies happen to agree)."""
        served = self.simulator._report.served
        return {
            "t_us": round(self.env.now, 3),
            "served": len(served),
            "latency_checksum_us": round(
                sum(s.latency_us for s in served), 2
            ),
            "events": self.env.events_processed,
        }

    def telemetry_delta(self) -> Tuple[Dict[str, Any], str]:
        """One incremental telemetry document plus its canonical-JSON
        SHA-256 (the digest extension ``snapshot-telemetry`` pins)."""
        doc = self._delta.delta(now_us=self.env.now)
        digest = hashlib.sha256(
            json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        return doc, digest

    def slo_status(self) -> Tuple[Dict[str, Any], str]:
        """The SLO monitor's canonical status document at the current
        virtual time, plus its SHA-256 (the digest extension
        ``slo-status`` pins). With no monitor installed the document
        is ``{"enabled": false}`` so replays of an SLO-free run still
        digest identically."""
        monitor = getattr(self.simulator, "_slo", None)
        if monitor is None:
            doc: Dict[str, Any] = {"enabled": False}
            sha = hashlib.sha256(
                json.dumps(
                    doc, sort_keys=True, separators=(",", ":")
                ).encode()
            ).hexdigest()
            return doc, sha
        now = self.env.now - (self._epoch_us or 0.0)
        return monitor.status_sha(now)

    def durability_status(self) -> Tuple[Dict[str, Any], str]:
        """The durability subsystem's canonical status document plus
        its SHA-256 (the digest extension ``durability-status`` pins).
        With durability disabled the document is
        ``{"enabled": false}`` so replays of a durability-free run
        still digest identically."""
        doc = self.simulator.durability_status()
        sha = hashlib.sha256(
            json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        return doc, sha

    # -- command execution ---------------------------------------------

    def execute(self, command: Command) -> Dict[str, Any]:
        """Execute one command, journal it, return its result dict
        (always containing ``digest``). ``status`` is a read-only
        probe: never journaled, never starts the run."""
        if isinstance(command, StatusCommand):
            return self.status()
        result = self._apply(command, pulled=None)
        digest = self.digest()
        for key in ("telemetry_sha256", "slo_sha256", "durability_sha256"):
            if key in result:
                digest[key] = result[key]
        if self._journal is not None:
            self._entry_seq += 1
            entry: Dict[str, Any] = {
                "seq": self._entry_seq,
                "cmd": command.to_dict(),
            }
            if "pulled" in result:
                entry["pulled"] = result["pulled"]
            entry["digest"] = digest
            self._journal.append(entry)
        result["digest"] = digest
        return result

    def execute_entry(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Replay one journal entry: re-execute its command using the
        *recorded* pulled arrivals (never the live source), and return
        the result with the freshly computed digest — the caller
        compares it against ``entry["digest"]``."""
        command = command_from_dict(entry["cmd"])
        pulled: Optional[List[Arrival]] = None
        if isinstance(command, AdvanceCommand):
            pulled = [
                Arrival(time_us=float(t), function=str(fn))
                for t, fn in entry.get("pulled", [])
            ]
        result = self._apply(command, pulled=pulled)
        digest = self.digest()
        for key in ("telemetry_sha256", "slo_sha256", "durability_sha256"):
            if key in result:
                digest[key] = result[key]
        result["digest"] = digest
        return result

    def _apply(
        self, command: Command, pulled: Optional[List[Arrival]]
    ) -> Dict[str, Any]:
        if self._finished and not isinstance(
            command,
            (
                StatusCommand,
                SnapshotTelemetryCommand,
                SloStatusCommand,
                DurabilityStatusCommand,
            ),
        ):
            raise ServiceError(
                f"service already drained; {command.name!r} rejected"
            )
        sim = self.simulator
        if isinstance(command, InjectCommand):
            # Valid before start: batch mode pre-loads the heap so the
            # pump never parks (exact legacy event schedule).
            arrivals = [
                Arrival(time_us=t, function=fn)
                for t, fn in command.arrivals
            ]
            self._push_arrivals(arrivals)
            return {"injected": len(arrivals)}
        self._ensure_started()
        if isinstance(command, AdvanceCommand):
            horizon = self.env.now + command.ms * 1000.0
            if pulled is None:
                if self._source is not None:
                    pulled = self._source.take_until(
                        horizon - (self._epoch_us or 0.0)
                    )
                else:
                    pulled = []
            if pulled:
                self._push_arrivals(pulled)
            events = self.env.advance_to(horizon)
            return {
                "advanced_to_us": self.env.now,
                "events": events,
                "pulled": [[a.time_us, a.function] for a in pulled],
            }
        if isinstance(command, AddHostCommand):
            hs = sim.add_host_live()
            return {
                "host": hs.host.host_id,
                "drained": hs.drained,
                "hosts": len(sim._hosts),
            }
        if isinstance(command, DrainHostCommand):
            evicted = sim.drain_host_live(command.host)
            return {"host": command.host, "evicted": evicted}
        if isinstance(command, UndrainHostCommand):
            sim.undrain_host_live(command.host)
            return {"host": command.host}
        if isinstance(command, SwapPlacementCommand):
            sim.swap_placement(command.policy)
            return {"placement": command.policy}
        if isinstance(command, ArmCommand):
            plan = FaultPlan.from_dict(command.plan)
            sim.arm_fault_plan(plan)
            return {"faults": len(plan)}
        if isinstance(command, DisarmCommand):
            sim.disarm_faults()
            return {"disarmed": True}
        if isinstance(command, SetKeepaliveCommand):
            sim.set_keepalive(command.ttl_ms * 1000.0)
            return {"keep_alive_ttl_us": sim.config.keep_alive_ttl_us}
        if isinstance(command, SnapshotTelemetryCommand):
            doc, sha = self.telemetry_delta()
            return {"telemetry": doc, "telemetry_sha256": sha}
        if isinstance(command, SetSloCommand):
            monitor = SloMonitor.from_dict(command.config)
            sim._slo = monitor
            self.slo = monitor
            return {"slo": monitor.config_dict()}
        if isinstance(command, SloStatusCommand):
            doc, sha = self.slo_status()
            return {"slo": doc, "slo_sha256": sha}
        if isinstance(command, ScrubCommand):
            return {"scrub": sim.run_scrub()}
        if isinstance(command, DurabilityStatusCommand):
            doc, sha = self.durability_status()
            return {"durability": doc, "durability_sha256": sha}
        if isinstance(command, DrainCommand):
            report = self.drain()
            return {
                "served": len(report.served),
                "mean_latency_us": report.mean_latency_us(),
            }
        raise ServiceError(f"unhandled command {command.name!r}")

    # -- lifecycle -----------------------------------------------------

    def drain(self):
        """Stop intake, let the pump serve out every pending arrival
        and in-flight invocation, then finish the run. Mirrors the
        legacy ``run`` epilogue (sampler stop, then report folding)."""
        if self._finished:
            raise ServiceError("service already drained")
        self._draining = True
        self._started = True
        if self._mailbox is not None and not self._mailbox.triggered:
            self._mailbox.succeed()
        self.env.run(until=self._proc)
        if self.sampler is not None:
            self.sampler.stop()
        self.report = self.simulator._finish_run()
        self._finished = True
        return self.report

    def run_batch(self, trace):
        """The legacy batch entry point as a canned command stream:
        inject the whole trace, drain. Bit-identical to the historical
        inline driver loop."""
        self.execute(InjectCommand.from_arrivals(trace.arrivals))
        self.execute(DrainCommand())
        return self.report

    def status(self) -> Dict[str, Any]:
        """Read-only probe of live state (not journaled)."""
        sim = self.simulator
        report = sim._report
        hosts = []
        for hs in getattr(sim, "_hosts", []):
            hosts.append(
                {
                    "host": hs.host.host_id,
                    "healthy": hs.healthy,
                    "drained": hs.drained,
                    "crashed": hs.host.crashed,
                    "active": hs.active,
                    "queued": hs.queued,
                    "idle_vms": len(hs.idle),
                    "memory_mb": round(hs.memory_mb, 3),
                }
            )
        return {
            "t_us": self.env.now,
            "started": self._started,
            "finished": self._finished,
            "pending": len(self._pending),
            "served": len(report.served),
            "placement": sim.config.placement,
            "keep_alive_ttl_us": sim.config.keep_alive_ttl_us,
            "armed": sim._armed,
            "hosts": hosts,
        }


# -- construction from a spec ------------------------------------------

_SPEC_DEFAULTS: Dict[str, Any] = {
    "functions": 8,
    "fleet_seed": 1,
    "profiles": ["json", "pyaes"],
    "hosts": 2,
    "placement": "least-loaded",
    "policy": "faasnap",
    "tier": "local-nvme",
    "ttl_us": 15 * 60 * 1_000_000.0,
    "memory_mb": 16_384.0,
    "max_concurrent": None,
    "seed": 0,
    "sampler_interval_us": None,
    "source": {"kind": "none"},
    "fault_plan": None,
    "slo": None,
    "durability": None,
}


def normalize_spec(spec: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Fill a (possibly partial) service spec with defaults; the
    result is what the journal header stores, so replays see every
    knob explicitly."""
    merged = dict(_SPEC_DEFAULTS)
    for key, value in (spec or {}).items():
        if key not in _SPEC_DEFAULTS:
            raise ServiceError(f"unknown spec key {key!r}")
        merged[key] = value
    return merged


def build_service(
    spec: Optional[Dict[str, Any]] = None,
    *,
    arrival_source: Optional[ArrivalSource] = None,
    journal: Optional[JournalWriter] = None,
    use_source: bool = True,
    causal=None,
    flight=None,
) -> ClusterService:
    """Build a :class:`ClusterService` from a spec dict (see
    :func:`normalize_spec` for keys and defaults).

    ``arrival_source`` overrides the spec's ``source`` stanza (the CLI
    uses this for stdin/file streams, recorded in the spec as kind
    ``external``). ``use_source=False`` builds the service with no
    source regardless of spec — the replay path, which feeds recorded
    pulls instead."""
    from repro.cluster.scheduler import ClusterConfig, ClusterSimulator
    from repro.core import Policy
    from repro.faults.durability import (
        DISABLED_DURABILITY,
        DurabilityPolicy,
    )

    spec = normalize_spec(spec)
    fleet = synthesize_fleet(
        int(spec["functions"]),
        seed=int(spec["fleet_seed"]),
        profile_names=tuple(spec["profiles"]),
    )
    config = ClusterConfig(
        num_hosts=int(spec["hosts"]),
        placement=str(spec["placement"]),
        restore_policy=Policy(spec["policy"]),
        keep_alive_ttl_us=float(spec["ttl_us"]),
        memory_budget_mb=float(spec["memory_mb"]),
        snapshot_tier=str(spec["tier"]),
        max_concurrent_per_host=spec["max_concurrent"],
        seed=int(spec["seed"]),
        durability=(
            DurabilityPolicy.from_dict(spec["durability"])
            if spec["durability"] is not None
            else DISABLED_DURABILITY
        ),
    )
    simulator = ClusterSimulator(fleet, config)
    source = arrival_source
    if source is None and use_source:
        stanza = spec["source"] or {"kind": "none"}
        kind = stanza.get("kind", "none")
        if kind == "poisson":
            source = PoissonArrivalSource(
                fleet, seed=int(stanza.get("seed", 1))
            )
        elif kind == "trace":
            source = TraceArrivalSource(
                generate_arrivals(
                    fleet,
                    float(stanza["duration_us"]),
                    seed=int(stanza.get("seed", 1)),
                )
            )
        elif kind in ("none", "external"):
            source = None
        else:
            raise ServiceError(f"unknown arrival source kind {kind!r}")
    fault_plan = (
        FaultPlan.from_dict(spec["fault_plan"])
        if spec["fault_plan"]
        else None
    )
    # ``"slo": {}`` means "defaults"; only ``None`` disables the
    # monitor (so journal replays rebuild exactly the spec's monitor).
    slo = (
        SloMonitor.from_dict(spec["slo"])
        if spec["slo"] is not None
        else None
    )
    if journal is not None:
        journal.write_header(spec)
    return ClusterService(
        simulator,
        arrival_source=source,
        sampler_interval_us=spec["sampler_interval_us"],
        fault_plan=fault_plan,
        journal=journal,
        causal=causal,
        slo=slo,
        flight=flight,
    )


# -- journal replay ----------------------------------------------------


@dataclass
class ReplayOutcome:
    """Result of re-executing a journal's command stream."""

    spec: Dict[str, Any]
    entries: int = 0
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    service: Optional[ClusterService] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches


def replay_journal(path) -> ReplayOutcome:
    """Rebuild the service a journal describes and re-execute its
    command stream, comparing every recorded digest field against the
    freshly computed one. An empty ``mismatches`` list is the
    bit-identity verdict."""
    spec, entries = read_journal(path)
    service = build_service(spec, use_source=False)
    outcome = ReplayOutcome(spec=spec, service=service)
    for entry in entries:
        outcome.entries += 1
        result = service.execute_entry(entry)
        actual = result["digest"]
        expected = entry.get("digest", {})
        for key, value in expected.items():
            if actual.get(key) != value:
                outcome.mismatches.append(
                    {
                        "seq": entry.get("seq"),
                        "field": key,
                        "expected": value,
                        "actual": actual.get(key),
                    }
                )
    return outcome
