"""Live service mode: the command-driven cluster control plane.

The batch :class:`~repro.cluster.scheduler.ClusterSimulator` answers
"serve this whole trace, then hand me the report". This package turns
the same serving core into a *service*: a
:class:`~repro.service.core.ClusterService` owns an incrementally
advanced simulation, consumes arrivals from a streaming
:class:`~repro.fleet.workload.ArrivalSource` instead of an in-memory
trace, and executes a typed command stream — advance virtual time,
inject arrivals, grow/drain hosts, hot-swap placement, arm/disarm
fault plans, retune keep-alive, snapshot telemetry deltas.

Every state-changing command is logged to a JSON-lines *journal*
(:mod:`~repro.service.journal`) carrying a digest of simulation state
after the command; replaying a journal re-executes the stream and
must reproduce every digest bit-for-bit — the service's determinism
contract. The legacy batch entry point is re-expressed on top: one
canned command stream (inject everything, drain), bit-identical to
the historical inline driver loop.

``python -m repro serve`` drives a service from a script file or an
interactive REPL; see ``docs/service.md`` for the operator cookbook.
"""

from repro.service.commands import (
    AddHostCommand,
    AdvanceCommand,
    ArmCommand,
    Command,
    CommandError,
    DisarmCommand,
    DrainCommand,
    DrainHostCommand,
    InjectCommand,
    SetKeepaliveCommand,
    SetSloCommand,
    SloStatusCommand,
    SnapshotTelemetryCommand,
    StatusCommand,
    SwapPlacementCommand,
    UndrainHostCommand,
    command_from_dict,
    parse_command,
)
from repro.service.core import (
    ClusterService,
    ServiceError,
    build_service,
    normalize_spec,
    replay_journal,
)
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JournalError,
    JournalWriter,
    read_journal,
)

__all__ = [
    "AddHostCommand",
    "AdvanceCommand",
    "ArmCommand",
    "ClusterService",
    "Command",
    "CommandError",
    "DisarmCommand",
    "DrainCommand",
    "DrainHostCommand",
    "InjectCommand",
    "JOURNAL_SCHEMA",
    "JournalError",
    "JournalWriter",
    "ServiceError",
    "SetKeepaliveCommand",
    "SetSloCommand",
    "SloStatusCommand",
    "SnapshotTelemetryCommand",
    "StatusCommand",
    "SwapPlacementCommand",
    "UndrainHostCommand",
    "build_service",
    "command_from_dict",
    "normalize_spec",
    "parse_command",
    "read_journal",
    "replay_journal",
]
