"""Typed, serialisable commands for the cluster service.

Each command is a frozen dataclass with a stable wire form
(``to_dict`` / :func:`command_from_dict`) used by the journal, and a
one-line text form (:func:`parse_command`) used by ``repro serve``
scripts and the REPL. The two forms are interconvertible; the journal
always stores the dict form.

Text grammar (one command per line; blank lines and ``#`` comments
are skipped by the CLI)::

    advance MS                     # advance virtual time by MS milliseconds
    inject T_US:FN [T_US:FN ...]   # enqueue arrivals at epoch-relative T_US
    add-host                       # grow the cluster by one host
    drain-host HOST                # take HOST out of rotation, evict idle VMs
    undrain-host HOST              # return HOST to rotation
    swap-placement NAME            # hot-swap the placement policy
    arm JSON                       # arm a fault plan (FaultPlan.as_dict JSON)
    disarm                         # cancel armed faults, heal degradations
    set-keepalive MS               # retune the keep-alive TTL
    snapshot-telemetry             # emit a telemetry delta, pin its digest
    set-slo JSON                   # install SLO objectives + burn-rate rules
    slo-status                     # evaluate the SLO monitor, pin its digest
    scrub                          # force a full durability scrub pass now
    durability-status              # replica/corruption state, pin its digest
    status                         # read-only state probe (not journaled)
    drain                          # stop intake, serve out, finish the run
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Type


class CommandError(ValueError):
    """A command line or document that cannot be parsed."""


@dataclass(frozen=True)
class Command:
    """Base class; subclasses set ``name`` and override ``args_dict``."""

    name = "abstract"

    def args_dict(self) -> Dict[str, Any]:
        return {}

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"cmd": self.name}
        args = self.args_dict()
        if args:
            doc["args"] = args
        return doc


@dataclass(frozen=True)
class AdvanceCommand(Command):
    """Advance virtual time by ``ms`` milliseconds, pulling arrivals
    from the service's source up to the new horizon."""

    ms: float = 0.0
    name = "advance"

    def __post_init__(self):
        if self.ms < 0:
            raise CommandError("advance duration must be >= 0")

    def args_dict(self) -> Dict[str, Any]:
        return {"ms": self.ms}


@dataclass(frozen=True)
class InjectCommand(Command):
    """Enqueue explicit arrivals, each ``(epoch-relative time_us,
    function name)``. Times may be in the past (served immediately,
    queue delay counted into latency) or the future."""

    arrivals: Tuple[Tuple[float, str], ...] = ()
    name = "inject"

    @classmethod
    def from_arrivals(cls, arrivals) -> "InjectCommand":
        return cls(
            arrivals=tuple((a.time_us, a.function) for a in arrivals)
        )

    def args_dict(self) -> Dict[str, Any]:
        return {"arrivals": [[t, fn] for t, fn in self.arrivals]}


@dataclass(frozen=True)
class AddHostCommand(Command):
    name = "add-host"


@dataclass(frozen=True)
class DrainHostCommand(Command):
    host: str = ""
    name = "drain-host"

    def args_dict(self) -> Dict[str, Any]:
        return {"host": self.host}


@dataclass(frozen=True)
class UndrainHostCommand(Command):
    host: str = ""
    name = "undrain-host"

    def args_dict(self) -> Dict[str, Any]:
        return {"host": self.host}


@dataclass(frozen=True)
class SwapPlacementCommand(Command):
    policy: str = ""
    name = "swap-placement"

    def args_dict(self) -> Dict[str, Any]:
        return {"policy": self.policy}


@dataclass(frozen=True)
class ArmCommand(Command):
    """Arm a fault plan mid-run. ``plan`` is the
    :meth:`~repro.faults.plan.FaultPlan.as_dict` document; fault times
    are relative to the arming instant."""

    plan: Dict[str, Any] = field(default_factory=dict)
    name = "arm"

    # ``plan`` is a dict, so frozen-dataclass hashing is off the table;
    # commands are values, never dict keys.
    __hash__ = None  # type: ignore[assignment]

    def args_dict(self) -> Dict[str, Any]:
        return {"plan": self.plan}


@dataclass(frozen=True)
class DisarmCommand(Command):
    name = "disarm"


@dataclass(frozen=True)
class SetKeepaliveCommand(Command):
    ttl_ms: float = 0.0
    name = "set-keepalive"

    def __post_init__(self):
        if self.ttl_ms < 0:
            raise CommandError("keep-alive TTL must be >= 0")

    def args_dict(self) -> Dict[str, Any]:
        return {"ttl_ms": self.ttl_ms}


@dataclass(frozen=True)
class SnapshotTelemetryCommand(Command):
    name = "snapshot-telemetry"


@dataclass(frozen=True)
class SetSloCommand(Command):
    """Install (or replace) the run's SLO monitor. ``config`` is the
    :meth:`~repro.metrics.slo.SloMonitor.config_dict` wire form; an
    empty dict installs the default objectives and rules. Replacing
    the monitor resets its rolling windows — retuning mid-run starts
    the burn-rate evaluation fresh from the current instant."""

    config: Dict[str, Any] = field(default_factory=dict)
    name = "set-slo"

    # ``config`` is a dict, so frozen-dataclass hashing is off the
    # table; commands are values, never dict keys.
    __hash__ = None  # type: ignore[assignment]

    def args_dict(self) -> Dict[str, Any]:
        return {"config": self.config}


@dataclass(frozen=True)
class SloStatusCommand(Command):
    """Evaluate the SLO monitor at the current virtual time and pin
    the resulting document's digest in the journal (replay must agree
    on every burn rate and alert)."""

    name = "slo-status"


@dataclass(frozen=True)
class ScrubCommand(Command):
    """Force a full scrub pass over every host's replica sets at the
    current virtual time — detection happens now, repair proceeds in
    virtual time afterwards. No-op when durability is disabled."""

    name = "scrub"


@dataclass(frozen=True)
class DurabilityStatusCommand(Command):
    """Report replica/corruption state and pin the resulting
    document's digest in the journal (replay must agree on every
    counter and quarantined replica)."""

    name = "durability-status"


@dataclass(frozen=True)
class StatusCommand(Command):
    name = "status"


@dataclass(frozen=True)
class DrainCommand(Command):
    name = "drain"


COMMAND_TYPES: Dict[str, Type[Command]] = {
    cls.name: cls
    for cls in (
        AdvanceCommand,
        InjectCommand,
        AddHostCommand,
        DrainHostCommand,
        UndrainHostCommand,
        SwapPlacementCommand,
        ArmCommand,
        DisarmCommand,
        SetKeepaliveCommand,
        SnapshotTelemetryCommand,
        SetSloCommand,
        SloStatusCommand,
        ScrubCommand,
        DurabilityStatusCommand,
        StatusCommand,
        DrainCommand,
    )
}


def command_from_dict(doc: Dict[str, Any]) -> Command:
    """Rebuild a command from its ``to_dict`` wire form."""
    name = doc.get("cmd")
    cls = COMMAND_TYPES.get(name)
    if cls is None:
        raise CommandError(f"unknown command {name!r}")
    args = doc.get("args") or {}
    try:
        if cls is AdvanceCommand:
            return AdvanceCommand(ms=float(args["ms"]))
        if cls is InjectCommand:
            return InjectCommand(
                arrivals=tuple(
                    (float(t), str(fn)) for t, fn in args.get("arrivals", [])
                )
            )
        if cls is DrainHostCommand:
            return DrainHostCommand(host=str(args["host"]))
        if cls is UndrainHostCommand:
            return UndrainHostCommand(host=str(args["host"]))
        if cls is SwapPlacementCommand:
            return SwapPlacementCommand(policy=str(args["policy"]))
        if cls is ArmCommand:
            return ArmCommand(plan=dict(args.get("plan") or {}))
        if cls is SetKeepaliveCommand:
            return SetKeepaliveCommand(ttl_ms=float(args["ttl_ms"]))
        if cls is SetSloCommand:
            return SetSloCommand(config=dict(args.get("config") or {}))
    except KeyError as exc:
        raise CommandError(
            f"command {name!r} missing argument {exc.args[0]!r}"
        ) from None
    return cls()


def parse_command(line: str) -> Command:
    """Parse one text line into a command (grammar in the module
    docstring)."""
    line = line.strip()
    if not line:
        raise CommandError("empty command line")
    head, _, rest = line.partition(" ")
    rest = rest.strip()
    try:
        if head == "advance":
            return AdvanceCommand(ms=float(rest))
        if head == "inject":
            arrivals: List[Tuple[float, str]] = []
            for token in rest.split():
                time_text, sep, fn = token.partition(":")
                if not sep or not fn:
                    raise CommandError(
                        f"inject wants T_US:FN tokens, got {token!r}"
                    )
                arrivals.append((float(time_text), fn))
            if not arrivals:
                raise CommandError("inject needs at least one T_US:FN token")
            return InjectCommand(arrivals=tuple(arrivals))
        if head == "add-host":
            return AddHostCommand()
        if head == "drain-host":
            if not rest:
                raise CommandError("drain-host needs a host id")
            return DrainHostCommand(host=rest)
        if head == "undrain-host":
            if not rest:
                raise CommandError("undrain-host needs a host id")
            return UndrainHostCommand(host=rest)
        if head == "swap-placement":
            if not rest:
                raise CommandError("swap-placement needs a policy name")
            return SwapPlacementCommand(policy=rest)
        if head == "arm":
            if not rest:
                raise CommandError("arm needs a FaultPlan JSON document")
            return ArmCommand(plan=json.loads(rest))
        if head == "disarm":
            return DisarmCommand()
        if head == "set-keepalive":
            return SetKeepaliveCommand(ttl_ms=float(rest))
        if head == "snapshot-telemetry":
            return SnapshotTelemetryCommand()
        if head == "set-slo":
            return SetSloCommand(config=json.loads(rest) if rest else {})
        if head == "slo-status":
            return SloStatusCommand()
        if head == "scrub":
            return ScrubCommand()
        if head == "durability-status":
            return DurabilityStatusCommand()
        if head == "status":
            return StatusCommand()
        if head == "drain":
            return DrainCommand()
    except CommandError:
        raise
    except (ValueError, json.JSONDecodeError) as exc:
        raise CommandError(f"bad arguments for {head!r}: {exc}") from None
    raise CommandError(f"unknown command {head!r}")
