"""JSON-lines command journal for the cluster service.

Line 1 is a header carrying the schema tag and the *spec* — the full
set of construction arguments :func:`~repro.service.core.build_service`
needs to rebuild an identical service (fleet synthesis knobs, cluster
topology, seeds, sampler interval, arrival-source kind). Every
subsequent line is one executed command::

    {"seq": 3, "cmd": {"cmd": "advance", "args": {"ms": 500}},
     "pulled": [[12034.5, "fn0002"], ...],
     "digest": {"t_us": ..., "served": ..., "latency_checksum_us": ...,
                "events": ...}}

``pulled`` records the arrivals the service's source yielded during an
``advance``, so replay never needs the source — a journal is
self-contained even when the original arrivals came from stdin.
``digest`` is the simulation-state fingerprint after the command;
:func:`~repro.service.core.replay_journal` re-executes the stream and
compares digests field by field, which is the service's determinism
gate.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO, Tuple

JOURNAL_SCHEMA = "repro.service-journal/1"


class JournalError(ValueError):
    """A journal file that cannot be read."""


def _canonical(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class JournalWriter:
    """Append-only journal writer. Accepts a path (file owned, opened
    for write) or an open text handle (caller owns). The header is
    written lazily on the first append — or eagerly via
    :meth:`write_header` — so a writer constructed for a run that
    never executes a command leaves no partial file behind."""

    def __init__(self, target, spec: Optional[Dict[str, Any]] = None):
        if hasattr(target, "write"):
            self._fh: Optional[TextIO] = target
            self._owned = False
        else:
            self._path = str(target)
            self._fh = None
            self._owned = True
        self._spec = dict(spec or {})
        self._header_written = False
        self.entries = 0

    def _ensure_open(self) -> TextIO:
        if self._fh is None:
            self._fh = open(self._path, "w", encoding="utf-8")
        return self._fh

    def write_header(self, spec: Optional[Dict[str, Any]] = None) -> None:
        if self._header_written:
            return
        if spec is not None:
            self._spec = dict(spec)
        fh = self._ensure_open()
        fh.write(
            _canonical({"schema": JOURNAL_SCHEMA, "spec": self._spec}) + "\n"
        )
        self._header_written = True

    def append(self, entry: Dict[str, Any]) -> None:
        self.write_header()
        fh = self._ensure_open()
        fh.write(_canonical(entry) + "\n")
        fh.flush()
        self.entries += 1

    def close(self) -> None:
        if self._fh is not None and self._owned:
            self._fh.close()
            self._fh = None


def read_journal(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a journal file; returns ``(spec, entries)``."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise JournalError(f"{path}: empty journal")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise JournalError(f"{path}: bad header: {exc}") from None
    if header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"{path}: unsupported schema {header.get('schema')!r}"
        )
    spec = header.get("spec") or {}
    entries: List[Dict[str, Any]] = []
    for index, line in enumerate(lines[1:], start=2):
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}:{index}: bad entry: {exc}") from None
    return spec, entries
