"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``functions`` — list the Table 2 benchmark functions and their
  calibrated working sets.
* ``invoke`` — run one function under one (or every) restore policy.
* ``experiment`` — regenerate a paper table/figure by id
  (``--cluster`` switches a figure to its contention-aware mode).
* ``validate`` — check the paper's claims C1-C4.
* ``fleet`` — run a small fleet simulation (paper §7.1) against the
  static cost table.
* ``cluster`` — the same serving problem on N page-level simulated
  hosts, where restore contention is emergent.
* ``telemetry`` — run a function under full instrumentation and
  render the telemetry report (profiler phases, hot components, hit
  rates, sampled gauges).
* ``chaos`` — run a failure-injection drill (host-crash storm,
  device brownout, snapshot corruption, EBS latency spike) against
  the self-healing cluster and report availability, goodput, retry
  amplification and tail latency vs the fault-free baseline.
* ``serve`` — live service mode: drive the cluster incrementally
  with a command stream (advance time, inject arrivals, grow/drain
  hosts, hot-swap placement, arm/disarm faults), from a script file
  or an interactive REPL, journaling every command; ``--replay``
  re-executes a journal and gates on bit-identical digests.

``invoke``, ``cluster`` and ``telemetry`` accept ``--trace-out FILE``
to export the recorded spans as Zipkin-flavoured JSON (tagged per
host), ``--metrics-out FILE`` to export the run's telemetry registry
as structured JSON, and ``--chrome-trace FILE`` to export the spans
as a Chrome ``trace_event`` document for ``chrome://tracing`` /
Perfetto.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.core import FaaSnapPlatform, Policy
from repro.metrics import render_table
from repro.workloads import get_profile, profile_names
from repro.workloads.base import INPUT_A, InputSpec


def _cmd_functions(_args: argparse.Namespace) -> int:
    rows = []
    for name in profile_names():
        profile = get_profile(name)
        rows.append(
            [
                name,
                profile.description,
                profile.ws_a_mb,
                profile.ws_b_mb,
                profile.compute_base_us / 1000,
            ]
        )
    print(
        render_table(
            ["function", "description", "WS_A_MB", "WS_B_MB", "compute_ms"],
            rows,
            title="Registered benchmark functions (paper Table 2)",
        )
    )
    return 0


def _write_output(path: str, text: str, what: str) -> int:
    """Shared output-path validation and writer for ``--trace-out``,
    ``--metrics-out``, ``--chrome-trace`` and friends. Returns 0, or
    2 when the target directory does not exist."""
    directory = os.path.dirname(path)
    if directory and not os.path.isdir(directory):
        print(
            f"cannot write {what}: directory {directory!r} does not exist",
            file=sys.stderr,
        )
        return 2
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        if not text.endswith("\n"):
            fh.write("\n")
    print(f"wrote {what} to {path}", file=sys.stderr)
    return 0


def _write_trace(tracer, path: str) -> int:
    return _write_output(
        path, tracer.to_json(), f"{len(tracer.roots)} trace(s)"
    )


def _write_chrome_trace(tracer, path: str) -> int:
    from repro.metrics.exporters import to_chrome_trace

    doc = to_chrome_trace(tracer)
    return _write_output(
        path,
        json.dumps(doc, indent=2, sort_keys=True),
        f"chrome trace ({len(doc['traceEvents'])} events)",
    )


def _write_metrics(registry, path: str, sampler=None, total_us=None) -> int:
    from repro.metrics.exporters import to_json_doc

    doc = to_json_doc(registry, sampler=sampler, total_us=total_us)
    return _write_output(
        path,
        json.dumps(doc, indent=2, sort_keys=True),
        f"metrics ({len(doc['counters']) + len(doc['gauges']) + len(doc['histograms'])} instruments)",
    )


def _emit_run_outputs(
    args: argparse.Namespace, registry, tracer, sampler=None, total_us=None
) -> int:
    """Write whichever of the shared output flags were given."""
    status = 0
    if getattr(args, "trace_out", None) and tracer is not None:
        status = _write_trace(tracer, args.trace_out) or status
    if getattr(args, "chrome_trace", None) and tracer is not None:
        status = _write_chrome_trace(tracer, args.chrome_trace) or status
    if getattr(args, "metrics_out", None) and registry is not None:
        status = (
            _write_metrics(
                registry, args.metrics_out, sampler=sampler, total_us=total_us
            )
            or status
        )
    return status


def _cmd_invoke(args: argparse.Namespace) -> int:
    from repro.metrics.tracing import Tracer

    platform = FaaSnapPlatform(remote_storage=args.remote)
    handle = platform.register_function(get_profile(args.function))
    tracer = (
        Tracer(platform.env, default_tags={"host": platform.host.host_id})
        if args.trace_out or args.chrome_trace
        else None
    )
    if args.input == "A":
        test_input = INPUT_A
    elif args.input == "B":
        test_input = handle.profile.input_b()
    else:
        test_input = InputSpec(content_id=9, size_ratio=float(args.input))

    policies = (
        [Policy(args.policy)]
        if args.policy != "all"
        else [
            Policy.WARM,
            Policy.FIRECRACKER,
            Policy.CACHED,
            Policy.REAP,
            Policy.FAASNAP,
        ]
    )
    rows = []
    for policy in policies:
        result = platform.invoke(
            handle, test_input, policy, record_input=INPUT_A, tracer=tracer
        )
        rows.append(
            [
                policy.value,
                result.setup_us / 1000,
                result.invoke_us / 1000,
                result.total_ms,
                result.fault_count(),
                result.major_faults,
            ]
        )
    print(
        render_table(
            ["policy", "setup_ms", "invoke_ms", "total_ms", "faults", "majors"],
            rows,
            title=f"{args.function}, test input {args.input} "
            f"({'EBS' if args.remote else 'NVMe'})",
        )
    )
    return _emit_run_outputs(
        args,
        platform.metrics,
        tracer,
        total_us=platform.env.now,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS, runner

    module = ALL_EXPERIMENTS.get(args.id)
    if module is None:
        print(
            f"unknown experiment {args.id!r}; "
            f"known: {', '.join(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    sink: Optional[list] = [] if args.metrics_out else None
    runner.TELEMETRY_SINK = sink
    try:
        if args.cluster:
            if not hasattr(module, "run_cluster"):
                print(
                    f"experiment {args.id!r} has no contention-aware "
                    "cluster mode",
                    file=sys.stderr,
                )
                return 2
            print(
                module.format_cluster_table(module.run_cluster(jobs=args.jobs))
            )
        else:
            print(module.format_table(module.run(jobs=args.jobs)))
    finally:
        runner.TELEMETRY_SINK = None
    if sink:
        from repro.metrics.exporters import merge_shard_snapshots

        merged = merge_shard_snapshots(sink)
        return _write_output(
            args.metrics_out,
            json.dumps(merged, indent=2, sort_keys=True),
            f"merged metrics from {merged['shards']} shard(s)",
        )
    if args.metrics_out:
        print(
            "no telemetry snapshots were produced by this experiment",
            file=sys.stderr,
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments import claims

    results = claims.check_all(quick=not args.full)
    for result in results:
        print(result)
    return 0 if all(r.passed for r in results) else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (
        CostModel,
        FleetConfig,
        FleetSimulator,
        StartKind,
        generate_arrivals,
        synthesize_fleet,
    )
    from repro.fleet.workload import US_PER_HOUR, US_PER_MINUTE

    fleet = synthesize_fleet(
        args.functions, seed=args.seed, profile_names=("json", "pyaes")
    )
    trace = generate_arrivals(fleet, args.hours * US_PER_HOUR, seed=args.seed)
    config = FleetConfig(
        restore_policy=Policy(args.policy),
        keep_alive_ttl_us=args.ttl_minutes * US_PER_MINUTE,
        memory_budget_mb=args.memory_gb * 1024,
    )
    cost_model = CostModel()
    if args.jobs is not None:
        cost_model.precompute(
            [(name, Policy(args.policy)) for name in ("json", "pyaes")],
            jobs=args.jobs,
        )
    report = FleetSimulator(fleet, config, cost_model=cost_model).run(trace)
    print(
        render_table(
            ["metric", "value"],
            [
                ["invocations", report.count()],
                ["mean latency (ms)", report.mean_latency_us() / 1000],
                ["p99 latency (ms)", report.latency_percentile(99) / 1000],
                ["warm %", report.fraction(StartKind.WARM) * 100],
                ["snapshot %", report.fraction(StartKind.SNAPSHOT) * 100],
                ["cold %", report.fraction(StartKind.COLD) * 100],
                ["mean memory (GB)", report.mean_memory_mb() / 1024],
                ["evictions", report.evictions],
            ],
            title=f"Fleet: {args.functions} functions over {args.hours:g} h, "
            f"{args.policy} snapshots",
        )
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterConfig, ClusterSimulator
    from repro.fleet import StartKind, generate_arrivals, synthesize_fleet
    from repro.fleet.workload import US_PER_HOUR, US_PER_MINUTE
    from repro.metrics.tracing import Tracer

    fleet = synthesize_fleet(
        args.functions, seed=args.seed, profile_names=("json", "pyaes")
    )
    trace = generate_arrivals(fleet, args.hours * US_PER_HOUR, seed=args.seed)
    durability = None
    if args.durability is not None:
        from repro.faults import DurabilityPolicy

        doc = json.loads(args.durability)
        doc.setdefault("enabled", True)
        durability = DurabilityPolicy.from_dict(doc)
    config = ClusterConfig(
        num_hosts=args.hosts,
        placement=args.placement,
        restore_policy=Policy(args.policy),
        keep_alive_ttl_us=args.ttl_minutes * US_PER_MINUTE,
        memory_budget_mb=args.memory_gb * 1024,
        snapshot_tier=args.tier,
        max_concurrent_per_host=args.max_concurrent,
        **({"durability": durability} if durability is not None else {}),
    )
    tracer = Tracer() if args.trace_out or args.chrome_trace else None
    sampler_interval_us = (
        args.sample_interval_ms * 1000.0
        if args.sample_interval_ms is not None
        else (100_000.0 if args.metrics_out else None)
    )
    sharded = args.shards > 0
    causal = None
    if args.causal_trace or (sharded and args.chrome_trace):
        from repro.metrics.causal import CausalTracer

        causal = CausalTracer()
    slo = None
    if args.slo is not None:
        from repro.metrics.slo import SloMonitor

        slo = SloMonitor.from_dict(json.loads(args.slo))
    flight = None
    if args.flight_out:
        from repro.metrics.flight import FlightRecorder

        flight = FlightRecorder()
    if sharded:
        from repro.cluster import ShardedClusterSimulator

        if args.trace_out or args.sample_interval_ms is not None:
            print(
                "note: --trace-out/--sample-interval-ms are per-heap "
                "instruments; ignored with --shards"
            )
        tracer = None
        if slo is not None or flight is not None:
            print(
                "note: --slo/--flight-out ride the single-heap serving "
                "plane; ignored with --shards"
            )
            slo = flight = None
        simulator = ShardedClusterSimulator(
            fleet,
            config,
            shards=args.shards,
            window_us=args.window_ms * 1000.0,
        )
        report = simulator.run(trace, causal=causal)
    else:
        simulator = ClusterSimulator(fleet, config)
        report = simulator.run(
            trace,
            tracer=tracer,
            sampler_interval_us=sampler_interval_us,
            causal=causal,
            slo=slo,
            flight=flight,
        )
    if args.report_out:
        from repro.metrics.exporters import fleet_report_doc

        status = _write_output(
            args.report_out,
            json.dumps(fleet_report_doc(report), indent=2, sort_keys=True),
            f"serving report ({report.count()} invocations)",
        )
        if status:
            return status
    rows = [
        ["invocations", report.count()],
        ["prep (s)", report.prep_us / 1e6],
        ["mean latency (ms)", report.mean_latency_us() / 1000],
        ["p99 latency (ms)", report.latency_percentile(99) / 1000],
        ["warm %", report.fraction(StartKind.WARM) * 100],
        ["snapshot %", report.fraction(StartKind.SNAPSHOT) * 100],
        ["cold %", report.fraction(StartKind.COLD) * 100],
        ["evictions", report.evictions],
    ]
    if durability is not None:
        summary = (
            simulator.durability.summary()
            if getattr(simulator, "durability", None) is not None
            else report.fault_summary
        )
        for name in (
            "detected_restore",
            "detected_scrub",
            "silent_corrupt_serves",
            "quarantines",
            "repairs",
            "rebuilds",
        ):
            if summary.get(name):
                rows.append([f"durability: {name}", summary[name]])
    print(
        render_table(
            ["metric", "value"],
            rows,
            title=f"Cluster: {args.functions} functions over "
            f"{args.hours:g} h on {args.hosts} host(s), "
            f"{args.placement} placement, {args.tier} tier",
        )
    )
    host_rows = [
        [
            stats.host,
            stats.invocations,
            stats.warm_starts,
            stats.snapshot_starts,
            stats.cold_starts,
            stats.evictions,
            stats.device_bytes_read / 1e6,
            stats.device_queue_wait_us / 1000,
        ]
        for stats in report.host_stats.values()
    ]
    print(
        render_table(
            [
                "host",
                "served",
                "warm",
                "snapshot",
                "cold",
                "evictions",
                "dev_read_MB",
                "dev_qwait_ms",
            ],
            host_rows,
            title="Per-host breakdown",
        )
    )
    if causal is not None and args.causal_trace:
        status = _write_output(
            args.causal_trace,
            causal.to_json(),
            f"causal trace ({len(causal.document()['invocations'])} "
            "invocations)",
        )
        if status:
            return status
    if slo is not None:
        from repro.metrics.slo import render_slo_status

        # Observability time is serving-relative (t=0 at prep end).
        now = simulator.env.now - simulator._obs_epoch_us
        print(render_slo_status(slo.status(now)))
    if flight is not None:
        status = _write_output(
            args.flight_out,
            flight.to_json(),
            f"flight recorder ({len(flight.postmortems)} postmortem(s), "
            f"{flight.dump_triggers} trigger(s))",
        )
        if status:
            return status
    if sharded:
        if args.metrics_out:
            status = _write_output(
                args.metrics_out,
                json.dumps(
                    simulator.merged_metrics, indent=2, sort_keys=True
                ),
                "merged shard telemetry",
            )
            if status:
                return status
        if args.chrome_trace:
            from repro.metrics.exporters import causal_to_chrome_trace

            status = _write_output(
                args.chrome_trace,
                json.dumps(
                    causal_to_chrome_trace(causal.document()),
                    indent=2,
                    sort_keys=True,
                ),
                "Chrome trace (causal events)",
            )
            if status:
                return status
        print(
            f"sharded: {simulator.shards} shard(s), "
            f"{simulator.windows_run} window(s) of "
            f"{simulator.window_us / 1000:g} ms"
        )
        return 0
    return _emit_run_outputs(
        args,
        simulator.registry,
        tracer,
        sampler=simulator.sampler,
        total_us=simulator.env.now,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.fleet.workload import US_PER_MINUTE, JsonLinesArrivalSource
    from repro.service import (
        CommandError,
        DrainCommand,
        JournalWriter,
        ServiceError,
        StatusCommand,
        build_service,
        parse_command,
        replay_journal,
    )

    if args.replay:
        outcome = replay_journal(args.replay)
        if outcome.ok:
            print(
                f"replay OK: {outcome.entries} command(s), "
                f"every digest bit-identical"
            )
            return 0
        print(
            f"replay FAILED: {len(outcome.mismatches)} digest "
            f"mismatch(es) across {outcome.entries} command(s)"
        )
        for mismatch in outcome.mismatches[:10]:
            print(
                f"  seq {mismatch['seq']}: {mismatch['field']} "
                f"expected {mismatch['expected']!r} "
                f"got {mismatch['actual']!r}"
            )
        return 1

    interactive = args.script is None
    if args.arrivals == "-" and interactive:
        print(
            "error: --arrivals - (stdin) requires --script "
            "(the REPL reads commands from stdin)",
            file=sys.stderr,
        )
        return 2
    arrival_source = None
    if args.arrivals == "poisson":
        source_stanza = {"kind": "poisson", "seed": args.seed}
    elif args.arrivals == "none":
        source_stanza = {"kind": "none"}
    elif args.arrivals == "-":
        source_stanza = {"kind": "external"}
        arrival_source = JsonLinesArrivalSource(sys.stdin)
    else:
        source_stanza = {"kind": "external"}
        arrival_source = JsonLinesArrivalSource(
            open(args.arrivals, "r", encoding="utf-8")
        )
    spec = {
        "functions": args.functions,
        "fleet_seed": args.seed,
        "hosts": args.hosts,
        "placement": args.placement,
        "policy": args.policy,
        "tier": args.tier,
        "ttl_us": args.ttl_minutes * US_PER_MINUTE,
        "memory_mb": args.memory_gb * 1024,
        "max_concurrent": args.max_concurrent,
        "seed": args.seed,
        "sampler_interval_us": (
            args.sample_interval_ms * 1000.0
            if args.sample_interval_ms is not None
            else None
        ),
        "source": source_stanza,
        "slo": json.loads(args.slo) if args.slo is not None else None,
    }
    if args.durability is not None:
        # Same convention as `cluster --durability`: passing the flag
        # implies enabling. The raw dict (not the policy) goes in the
        # spec so the journal header stays JSON and replays rebuild it.
        durability_doc = json.loads(args.durability)
        durability_doc.setdefault("enabled", True)
        spec["durability"] = durability_doc
    causal = None
    if args.causal_trace:
        from repro.metrics.causal import CausalTracer

        causal = CausalTracer()
    flight = None
    if args.flight_out:
        from repro.metrics.flight import FlightRecorder

        flight = FlightRecorder()
    journal = JournalWriter(args.journal) if args.journal else None
    service = build_service(
        spec,
        arrival_source=arrival_source,
        journal=journal,
        causal=causal,
        flight=flight,
    )

    if interactive:
        lines = _repl_lines()
    else:
        with open(args.script, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    status = 0
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            command = parse_command(line)
            result = service.execute(command)
        except (CommandError, ServiceError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            if not interactive:
                status = 2
                break
            continue
        print(json.dumps(result, sort_keys=True, default=str))
        if isinstance(command, DrainCommand):
            break
    if status == 0 and service.report is None:
        # Stream ended without an explicit drain: serve out what is
        # pending so the run always produces a complete report.
        service.execute(DrainCommand())
    if journal is not None:
        journal.close()
    if service.report is not None:
        report = service.report
        print(
            f"served {len(report.served)} invocation(s), "
            f"mean latency {report.mean_latency_us() / 1000:.2f} ms, "
            f"final state {json.dumps(service.execute(StatusCommand()), sort_keys=True, default=str)}"
        )
        if args.report_out:
            from repro.metrics.exporters import fleet_report_doc

            written = _write_output(
                args.report_out,
                json.dumps(fleet_report_doc(report), indent=2, sort_keys=True),
                f"serving report ({len(report.served)} invocations)",
            )
            if written:
                return written
    if causal is not None:
        written = _write_output(
            args.causal_trace,
            causal.to_json(),
            f"causal trace ({len(causal.document()['invocations'])} "
            f"invocations)",
        )
        if written:
            return written
    if service.slo is not None:
        from repro.metrics.slo import render_slo_status

        doc, _ = service.slo_status()
        print(render_slo_status(doc))
    if flight is not None:
        written = _write_output(
            args.flight_out,
            flight.to_json(),
            f"flight recorder ({len(flight.postmortems)} postmortem(s), "
            f"{flight.dump_triggers} trigger(s))",
        )
        if written:
            return written
    return status


def _repl_lines():
    """Prompted line iterator for the interactive serve REPL."""
    print(
        "live cluster service — commands: advance MS | inject T:FN... | "
        "add-host | drain-host H | undrain-host H | swap-placement P | "
        "arm JSON | disarm | set-keepalive MS | snapshot-telemetry | "
        "set-slo JSON | slo-status | scrub | durability-status | "
        "status | drain (^D quits, draining first)",
        file=sys.stderr,
    )
    while True:
        try:
            yield input("serve> ")
        except EOFError:
            return


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import DISABLED_RECOVERY
    from repro.faults.chaos import SCENARIO_NAMES, run_chaos

    names = (
        list(SCENARIO_NAMES) if args.scenario == "all" else [args.scenario]
    )
    recovery = DISABLED_RECOVERY if args.no_recovery else None
    slo_config = None
    if args.slo is not None:
        slo_config = json.loads(args.slo)
    elif args.require_alert:
        slo_config = {}
    status = 0
    reports = []
    flight_docs = {}
    alerts_fired = 0
    for name in names:
        slo = None
        if slo_config is not None:
            from repro.metrics.slo import SloMonitor

            slo = SloMonitor.from_dict(slo_config)
        flight = None
        if args.flight_out:
            from repro.metrics.flight import FlightRecorder

            flight = FlightRecorder()
        report = run_chaos(
            name,
            num_hosts=args.hosts,
            seed=args.seed,
            arrivals=args.arrivals,
            recovery=recovery,
            slo=slo,
            flight=flight,
        )
        reports.append(report)
        print(report.render())
        if slo is not None:
            alerts_fired += len(slo.alerts)
            print(
                f"  slo: {slo.observed} observation(s), "
                f"{len(slo.alerts)} burn-rate alert(s)"
            )
        if flight is not None:
            flight_docs[name] = flight.document()
            print(
                f"  flight: {len(flight.postmortems)} postmortem(s), "
                f"{flight.dump_triggers} trigger(s)"
            )
        if (
            args.min_availability is not None
            and report.availability < args.min_availability
        ):
            print(
                f"FAIL: {name} availability {report.availability:.4f} "
                f"below required {args.min_availability:.4f}",
                file=sys.stderr,
            )
            status = 1
        if (
            args.min_detection is not None
            and report.detection_rate < args.min_detection
        ):
            print(
                f"FAIL: {name} corruption detection rate "
                f"{report.detection_rate:.4f} below required "
                f"{args.min_detection:.4f} "
                f"({report.silent_corrupt_serves} silent corrupt "
                f"serve(s))",
                file=sys.stderr,
            )
            status = 1
    if args.require_alert and alerts_fired == 0:
        print(
            "FAIL: --require-alert set but no burn-rate alert fired "
            f"across {len(reports)} drill(s)",
            file=sys.stderr,
        )
        status = 1
    if args.flight_out:
        doc = (
            next(iter(flight_docs.values()))
            if len(flight_docs) == 1
            else flight_docs
        )
        status = (
            _write_output(
                args.flight_out,
                json.dumps(doc, indent=2, sort_keys=True),
                f"flight recorder ({len(flight_docs)} drill(s))",
            )
            or status
        )
    if args.report_out:
        doc = (
            reports[0].as_dict()
            if len(reports) == 1
            else [r.as_dict() for r in reports]
        )
        status = (
            _write_output(
                args.report_out,
                json.dumps(doc, indent=2, sort_keys=True),
                f"chaos report ({len(reports)} drill(s))",
            )
            or status
        )
    return status


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.metrics.exporters import to_prometheus
    from repro.metrics.telemetry import Sampler, render_run_report
    from repro.metrics.tracing import Tracer

    platform = FaaSnapPlatform(remote_storage=args.remote)
    handle = platform.register_function(get_profile(args.function))
    tracer = Tracer(
        platform.env, default_tags={"host": platform.host.host_id}
    )
    registry = platform.metrics
    sampler = Sampler(
        registry, platform.env, args.sample_interval_ms * 1000.0
    )

    if args.input == "A":
        test_input = INPUT_A
    elif args.input == "B":
        test_input = handle.profile.input_b()
    else:
        test_input = InputSpec(content_id=9, size_ratio=float(args.input))

    policies = (
        [Policy(args.policy)]
        if args.policy != "all"
        else [
            Policy.WARM,
            Policy.FIRECRACKER,
            Policy.CACHED,
            Policy.REAP,
            Policy.FAASNAP,
        ]
    )
    # The sampler's pending timeout would hang the bare
    # ``env.run()`` the record phase uses; ``invoke`` drives the
    # loop with ``run(until=...)`` throughout, so starting the
    # sampler once up front is safe.
    sampler.start()
    try:
        for policy in policies:
            platform.invoke(
                handle, test_input, policy, record_input=INPUT_A, tracer=tracer
            )
    finally:
        sampler.stop()

    print(
        render_run_report(
            registry, platform.env.now, sampler=sampler, top=args.top
        )
    )
    status = _emit_run_outputs(
        args, registry, tracer, sampler=sampler, total_us=platform.env.now
    )
    if args.prometheus_out:
        status = (
            _write_output(
                args.prometheus_out,
                to_prometheus(registry),
                "prometheus exposition",
            )
            or status
        )
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FaaSnap reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("functions", help="list benchmark functions").set_defaults(
        handler=_cmd_functions
    )

    invoke = sub.add_parser("invoke", help="invoke one function")
    invoke.add_argument("function", choices=profile_names())
    invoke.add_argument(
        "--policy",
        default="all",
        choices=["all"] + [p.value for p in Policy],
    )
    invoke.add_argument(
        "--input",
        default="B",
        help="'A', 'B', or a numeric size ratio (record phase uses A)",
    )
    invoke.add_argument("--remote", action="store_true", help="EBS storage")
    invoke.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write Zipkin-flavoured JSON spans of each invocation",
    )
    _add_telemetry_outputs(invoke)
    invoke.set_defaults(handler=_cmd_invoke)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("id", help="e.g. fig1, table2, fig9")
    experiment.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent cells (results are "
        "bit-identical to a serial run; 0/1 serial, -1 one per CPU)",
    )
    experiment.add_argument(
        "--cluster",
        action="store_true",
        help="contention-aware multi-host mode (fig10/fig11 only)",
    )
    experiment.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write telemetry merged across experiment shards as JSON",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    validate = sub.add_parser(
        "validate", help="check the paper's claims C1-C4 (appendix A.4)"
    )
    validate.add_argument(
        "--full", action="store_true", help="full paper sweeps (slow)"
    )
    validate.set_defaults(handler=_cmd_validate)

    fleet = sub.add_parser("fleet", help="fleet simulation (paper 7.1)")
    fleet.add_argument("--functions", type=int, default=60)
    fleet.add_argument("--hours", type=float, default=2.0)
    fleet.add_argument("--ttl-minutes", type=float, default=15.0)
    fleet.add_argument("--memory-gb", type=float, default=8.0)
    fleet.add_argument(
        "--policy",
        default=Policy.FAASNAP.value,
        choices=[p.value for p in Policy],
    )
    fleet.add_argument("--seed", type=int, default=1)
    fleet.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for precomputing serving costs",
    )
    fleet.set_defaults(handler=_cmd_fleet)

    cluster = sub.add_parser(
        "cluster",
        help="contention-aware multi-host serving (page-level restores)",
    )
    from repro.cluster.placement import PLACEMENT_NAMES
    from repro.cluster.scheduler import SNAPSHOT_TIERS, TIER_LOCAL_NVME

    cluster.add_argument("--functions", type=int, default=12)
    cluster.add_argument("--hours", type=float, default=0.5)
    cluster.add_argument("--hosts", type=int, default=4)
    cluster.add_argument(
        "--placement", default="least-loaded", choices=PLACEMENT_NAMES
    )
    cluster.add_argument(
        "--tier", default=TIER_LOCAL_NVME, choices=SNAPSHOT_TIERS
    )
    cluster.add_argument("--ttl-minutes", type=float, default=15.0)
    cluster.add_argument("--memory-gb", type=float, default=8.0)
    cluster.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help="admission limit per host (default: unlimited)",
    )
    cluster.add_argument(
        "--policy",
        default=Policy.FAASNAP.value,
        choices=[p.value for p in Policy],
    )
    cluster.add_argument("--seed", type=int, default=1)
    cluster.add_argument(
        "--durability",
        default=None,
        metavar="JSON",
        help="enable the snapshot durability subsystem "
        "(DurabilityPolicy JSON, e.g. '{\"enabled\": true, "
        "\"replicas\": 2}'; '{}' enables verified restores with "
        "the defaults)",
    )
    cluster.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run the sharded execution path with N worker shards "
        "(1 = the same windowed protocol, serially; results are "
        "bit-identical for any N; default: the single-heap path)",
    )
    cluster.add_argument(
        "--window-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="synchronization window for --shards (default: 250)",
    )
    cluster.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write Zipkin-flavoured JSON spans (tagged per host)",
    )
    _add_telemetry_outputs(cluster)
    cluster.add_argument(
        "--sample-interval-ms",
        type=float,
        default=None,
        metavar="MS",
        help="virtual-time gauge sampling cadence (default: 100 ms "
        "when --metrics-out is given, otherwise off)",
    )
    cluster.add_argument(
        "--report-out",
        default=None,
        metavar="FILE",
        help="write every served invocation (with outcome and attempt "
        "count) plus the availability summary as JSON",
    )
    cluster.add_argument(
        "--causal-trace",
        default=None,
        metavar="FILE",
        help="write the merged end-to-end causal trace (one event "
        "story per invocation; byte-identical for any --shards count)",
    )
    cluster.add_argument(
        "--slo",
        default=None,
        metavar="JSON",
        help="attach an SLO monitor and print burn-rate status after "
        "the run ('{}' for the default objectives/rules; single-heap "
        "path only)",
    )
    cluster.add_argument(
        "--flight-out",
        default=None,
        metavar="FILE",
        help="arm the flight recorder and write its postmortem "
        "document (ring-buffer dumps on failure/crash/burn alerts; "
        "single-heap path only)",
    )
    cluster.set_defaults(handler=_cmd_cluster)

    serve = sub.add_parser(
        "serve",
        help="live service mode: drive the cluster with a journaled "
        "command stream (script file or interactive REPL)",
    )
    serve.add_argument("--functions", type=int, default=8)
    serve.add_argument("--hosts", type=int, default=2)
    serve.add_argument(
        "--placement", default="least-loaded", choices=PLACEMENT_NAMES
    )
    serve.add_argument(
        "--tier", default=TIER_LOCAL_NVME, choices=SNAPSHOT_TIERS
    )
    serve.add_argument("--ttl-minutes", type=float, default=15.0)
    serve.add_argument("--memory-gb", type=float, default=8.0)
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help="admission limit per host (default: unlimited)",
    )
    serve.add_argument(
        "--policy",
        default=Policy.FAASNAP.value,
        choices=[p.value for p in Policy],
    )
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument(
        "--arrivals",
        default="poisson",
        metavar="SOURCE",
        help="arrival stream pulled by 'advance': 'poisson' "
        "(synthetic, seeded), 'none' (only explicit inject), '-' "
        "(JSON lines from stdin; needs --script), or a JSON-lines "
        "file of {\"time_us\": ..., \"function\": ...} records "
        "(default: poisson)",
    )
    serve.add_argument(
        "--script",
        default=None,
        metavar="FILE",
        help="command file, one command per line ('#' comments "
        "allowed); without it, an interactive REPL reads stdin",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="record every executed command (with pulled arrivals "
        "and a state digest) as a replayable JSON-lines journal",
    )
    serve.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-execute a journal and verify every digest is "
        "bit-identical (exit non-zero on any mismatch); all other "
        "flags are ignored — the journal header pins the topology",
    )
    serve.add_argument(
        "--sample-interval-ms",
        type=float,
        default=None,
        metavar="MS",
        help="virtual-time gauge sampling cadence (default: off)",
    )
    serve.add_argument(
        "--report-out",
        default=None,
        metavar="FILE",
        help="write the final serving report as JSON after drain",
    )
    serve.add_argument(
        "--slo",
        default=None,
        metavar="JSON",
        help="install an SLO monitor at build time ('{}' for the "
        "defaults; recorded in the journal spec, so replays rebuild "
        "it); inspect with the slo-status command",
    )
    serve.add_argument(
        "--durability",
        default=None,
        metavar="JSON",
        help="arm the snapshot durability plane ('{}' for verified "
        "restores with the defaults; recorded in the journal spec, so "
        "replays rebuild it); inspect with durability-status, sweep "
        "with scrub",
    )
    serve.add_argument(
        "--causal-trace",
        default=None,
        metavar="FILE",
        help="record end-to-end causal traces and write the merged "
        "document after the run",
    )
    serve.add_argument(
        "--flight-out",
        default=None,
        metavar="FILE",
        help="arm the flight recorder and write its postmortem "
        "document after the run",
    )
    serve.set_defaults(handler=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="run a failure-injection drill against the cluster and "
        "report availability, goodput and tail latency",
    )
    from repro.faults.chaos import SCENARIO_NAMES

    chaos.add_argument(
        "--scenario",
        default="all",
        choices=["all"] + list(SCENARIO_NAMES),
        help="which drill to run (default: all of them)",
    )
    chaos.add_argument("--hosts", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument(
        "--arrivals",
        type=int,
        default=60,
        metavar="N",
        help="invocations in the drill trace (default 60)",
    )
    chaos.add_argument(
        "--no-recovery",
        action="store_true",
        help="disable retries/hedging/failover to measure the "
        "unprotected cluster",
    )
    chaos.add_argument(
        "--report-out",
        default=None,
        metavar="FILE",
        help="write the drill report(s) as deterministic JSON",
    )
    chaos.add_argument(
        "--min-availability",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit non-zero if any drill's availability falls below "
        "this fraction",
    )
    chaos.add_argument(
        "--min-detection",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit non-zero if any drill's corruption detection rate "
        "falls below this fraction (1.0 = no corrupted restore may "
        "complete ok)",
    )
    chaos.add_argument(
        "--slo",
        default=None,
        metavar="JSON",
        help="attach an SLO monitor to each drill's faulted run and "
        "print burn-rate status ('{}' for the defaults)",
    )
    chaos.add_argument(
        "--flight-out",
        default=None,
        metavar="FILE",
        help="arm a flight recorder per drill and write the "
        "postmortem document(s) as JSON",
    )
    chaos.add_argument(
        "--require-alert",
        action="store_true",
        help="exit non-zero unless at least one burn-rate alert "
        "fired (implies an SLO monitor with the default config "
        "when --slo is not given)",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    telemetry = sub.add_parser(
        "telemetry",
        help="run one function fully instrumented and print the "
        "telemetry report",
    )
    telemetry.add_argument("function", choices=profile_names())
    telemetry.add_argument(
        "--policy",
        default=Policy.FAASNAP.value,
        choices=["all"] + [p.value for p in Policy],
    )
    telemetry.add_argument(
        "--input",
        default="B",
        help="'A', 'B', or a numeric size ratio (record phase uses A)",
    )
    telemetry.add_argument(
        "--remote", action="store_true", help="EBS storage"
    )
    telemetry.add_argument(
        "--sample-interval-ms",
        type=float,
        default=10.0,
        metavar="MS",
        help="virtual-time gauge sampling cadence (default 10 ms)",
    )
    telemetry.add_argument(
        "--top",
        type=int,
        default=12,
        metavar="N",
        help="hot components shown in the report (default 12)",
    )
    telemetry.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write Zipkin-flavoured JSON spans of each invocation",
    )
    _add_telemetry_outputs(telemetry)
    telemetry.add_argument(
        "--prometheus-out",
        default=None,
        metavar="FILE",
        help="write the registry in Prometheus text exposition format",
    )
    telemetry.set_defaults(handler=_cmd_telemetry)

    return parser


def _add_telemetry_outputs(parser: argparse.ArgumentParser) -> None:
    """The shared ``--metrics-out`` / ``--chrome-trace`` flags."""
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's telemetry registry as structured JSON",
    )
    parser.add_argument(
        "--chrome-trace",
        default=None,
        metavar="FILE",
        help="write spans as a Chrome trace_event JSON document "
        "(open in chrome://tracing or Perfetto)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
