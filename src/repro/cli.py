"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``functions`` — list the Table 2 benchmark functions and their
  calibrated working sets.
* ``invoke`` — run one function under one (or every) restore policy.
* ``experiment`` — regenerate a paper table/figure by id
  (``--cluster`` switches a figure to its contention-aware mode).
* ``fleet`` — run a small fleet simulation (paper §7.1) against the
  static cost table.
* ``cluster`` — the same serving problem on N page-level simulated
  hosts, where restore contention is emergent.

``invoke`` and ``cluster`` accept ``--trace-out FILE`` to export the
recorded spans as Zipkin-flavoured JSON, each span tagged with the id
of the host that produced it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import FaaSnapPlatform, Policy
from repro.metrics import render_table
from repro.workloads import get_profile, profile_names
from repro.workloads.base import INPUT_A, InputSpec


def _cmd_functions(_args: argparse.Namespace) -> int:
    rows = []
    for name in profile_names():
        profile = get_profile(name)
        rows.append(
            [
                name,
                profile.description,
                profile.ws_a_mb,
                profile.ws_b_mb,
                profile.compute_base_us / 1000,
            ]
        )
    print(
        render_table(
            ["function", "description", "WS_A_MB", "WS_B_MB", "compute_ms"],
            rows,
            title="Registered benchmark functions (paper Table 2)",
        )
    )
    return 0


def _write_trace(tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(tracer.to_json())
        fh.write("\n")
    print(f"wrote {len(tracer.roots)} trace(s) to {path}", file=sys.stderr)


def _cmd_invoke(args: argparse.Namespace) -> int:
    from repro.metrics.tracing import Tracer

    platform = FaaSnapPlatform(remote_storage=args.remote)
    handle = platform.register_function(get_profile(args.function))
    tracer = (
        Tracer(platform.env, default_tags={"host": platform.host.host_id})
        if args.trace_out
        else None
    )
    if args.input == "A":
        test_input = INPUT_A
    elif args.input == "B":
        test_input = handle.profile.input_b()
    else:
        test_input = InputSpec(content_id=9, size_ratio=float(args.input))

    policies = (
        [Policy(args.policy)]
        if args.policy != "all"
        else [
            Policy.WARM,
            Policy.FIRECRACKER,
            Policy.CACHED,
            Policy.REAP,
            Policy.FAASNAP,
        ]
    )
    rows = []
    for policy in policies:
        result = platform.invoke(
            handle, test_input, policy, record_input=INPUT_A, tracer=tracer
        )
        rows.append(
            [
                policy.value,
                result.setup_us / 1000,
                result.invoke_us / 1000,
                result.total_ms,
                result.fault_count(),
                result.major_faults,
            ]
        )
    print(
        render_table(
            ["policy", "setup_ms", "invoke_ms", "total_ms", "faults", "majors"],
            rows,
            title=f"{args.function}, test input {args.input} "
            f"({'EBS' if args.remote else 'NVMe'})",
        )
    )
    if tracer is not None:
        _write_trace(tracer, args.trace_out)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    module = ALL_EXPERIMENTS.get(args.id)
    if module is None:
        print(
            f"unknown experiment {args.id!r}; "
            f"known: {', '.join(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    if args.cluster:
        if not hasattr(module, "run_cluster"):
            print(
                f"experiment {args.id!r} has no contention-aware "
                "cluster mode",
                file=sys.stderr,
            )
            return 2
        print(module.format_cluster_table(module.run_cluster(jobs=args.jobs)))
        return 0
    print(module.format_table(module.run(jobs=args.jobs)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments import claims

    results = claims.check_all(quick=not args.full)
    for result in results:
        print(result)
    return 0 if all(r.passed for r in results) else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (
        CostModel,
        FleetConfig,
        FleetSimulator,
        StartKind,
        generate_arrivals,
        synthesize_fleet,
    )
    from repro.fleet.workload import US_PER_HOUR, US_PER_MINUTE

    fleet = synthesize_fleet(
        args.functions, seed=args.seed, profile_names=("json", "pyaes")
    )
    trace = generate_arrivals(fleet, args.hours * US_PER_HOUR, seed=args.seed)
    config = FleetConfig(
        restore_policy=Policy(args.policy),
        keep_alive_ttl_us=args.ttl_minutes * US_PER_MINUTE,
        memory_budget_mb=args.memory_gb * 1024,
    )
    cost_model = CostModel()
    if args.jobs is not None:
        cost_model.precompute(
            [(name, Policy(args.policy)) for name in ("json", "pyaes")],
            jobs=args.jobs,
        )
    report = FleetSimulator(fleet, config, cost_model=cost_model).run(trace)
    print(
        render_table(
            ["metric", "value"],
            [
                ["invocations", report.count()],
                ["mean latency (ms)", report.mean_latency_us() / 1000],
                ["p99 latency (ms)", report.latency_percentile(99) / 1000],
                ["warm %", report.fraction(StartKind.WARM) * 100],
                ["snapshot %", report.fraction(StartKind.SNAPSHOT) * 100],
                ["cold %", report.fraction(StartKind.COLD) * 100],
                ["mean memory (GB)", report.mean_memory_mb() / 1024],
                ["evictions", report.evictions],
            ],
            title=f"Fleet: {args.functions} functions over {args.hours:g} h, "
            f"{args.policy} snapshots",
        )
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterConfig, ClusterSimulator
    from repro.fleet import StartKind, generate_arrivals, synthesize_fleet
    from repro.fleet.workload import US_PER_HOUR, US_PER_MINUTE
    from repro.metrics.tracing import Tracer

    fleet = synthesize_fleet(
        args.functions, seed=args.seed, profile_names=("json", "pyaes")
    )
    trace = generate_arrivals(fleet, args.hours * US_PER_HOUR, seed=args.seed)
    config = ClusterConfig(
        num_hosts=args.hosts,
        placement=args.placement,
        restore_policy=Policy(args.policy),
        keep_alive_ttl_us=args.ttl_minutes * US_PER_MINUTE,
        memory_budget_mb=args.memory_gb * 1024,
        snapshot_tier=args.tier,
        max_concurrent_per_host=args.max_concurrent,
    )
    simulator = ClusterSimulator(fleet, config)
    tracer = Tracer() if args.trace_out else None
    report = simulator.run(trace, tracer=tracer)
    rows = [
        ["invocations", report.count()],
        ["prep (s)", report.prep_us / 1e6],
        ["mean latency (ms)", report.mean_latency_us() / 1000],
        ["p99 latency (ms)", report.latency_percentile(99) / 1000],
        ["warm %", report.fraction(StartKind.WARM) * 100],
        ["snapshot %", report.fraction(StartKind.SNAPSHOT) * 100],
        ["cold %", report.fraction(StartKind.COLD) * 100],
        ["evictions", report.evictions],
    ]
    print(
        render_table(
            ["metric", "value"],
            rows,
            title=f"Cluster: {args.functions} functions over "
            f"{args.hours:g} h on {args.hosts} host(s), "
            f"{args.placement} placement, {args.tier} tier",
        )
    )
    host_rows = [
        [
            stats.host,
            stats.invocations,
            stats.warm_starts,
            stats.snapshot_starts,
            stats.cold_starts,
            stats.evictions,
            stats.device_bytes_read / 1e6,
            stats.device_queue_wait_us / 1000,
        ]
        for stats in report.host_stats.values()
    ]
    print(
        render_table(
            [
                "host",
                "served",
                "warm",
                "snapshot",
                "cold",
                "evictions",
                "dev_read_MB",
                "dev_qwait_ms",
            ],
            host_rows,
            title="Per-host breakdown",
        )
    )
    if tracer is not None:
        _write_trace(tracer, args.trace_out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FaaSnap reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("functions", help="list benchmark functions").set_defaults(
        handler=_cmd_functions
    )

    invoke = sub.add_parser("invoke", help="invoke one function")
    invoke.add_argument("function", choices=profile_names())
    invoke.add_argument(
        "--policy",
        default="all",
        choices=["all"] + [p.value for p in Policy],
    )
    invoke.add_argument(
        "--input",
        default="B",
        help="'A', 'B', or a numeric size ratio (record phase uses A)",
    )
    invoke.add_argument("--remote", action="store_true", help="EBS storage")
    invoke.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write Zipkin-flavoured JSON spans of each invocation",
    )
    invoke.set_defaults(handler=_cmd_invoke)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("id", help="e.g. fig1, table2, fig9")
    experiment.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent cells (results are "
        "bit-identical to a serial run; 0/1 serial, -1 one per CPU)",
    )
    experiment.add_argument(
        "--cluster",
        action="store_true",
        help="contention-aware multi-host mode (fig10/fig11 only)",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    validate = sub.add_parser(
        "validate", help="check the paper's claims C1-C4 (appendix A.4)"
    )
    validate.add_argument(
        "--full", action="store_true", help="full paper sweeps (slow)"
    )
    validate.set_defaults(handler=_cmd_validate)

    fleet = sub.add_parser("fleet", help="fleet simulation (paper 7.1)")
    fleet.add_argument("--functions", type=int, default=60)
    fleet.add_argument("--hours", type=float, default=2.0)
    fleet.add_argument("--ttl-minutes", type=float, default=15.0)
    fleet.add_argument("--memory-gb", type=float, default=8.0)
    fleet.add_argument(
        "--policy",
        default=Policy.FAASNAP.value,
        choices=[p.value for p in Policy],
    )
    fleet.add_argument("--seed", type=int, default=1)
    fleet.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for precomputing serving costs",
    )
    fleet.set_defaults(handler=_cmd_fleet)

    cluster = sub.add_parser(
        "cluster",
        help="contention-aware multi-host serving (page-level restores)",
    )
    from repro.cluster.placement import PLACEMENT_NAMES
    from repro.cluster.scheduler import SNAPSHOT_TIERS, TIER_LOCAL_NVME

    cluster.add_argument("--functions", type=int, default=12)
    cluster.add_argument("--hours", type=float, default=0.5)
    cluster.add_argument("--hosts", type=int, default=4)
    cluster.add_argument(
        "--placement", default="least-loaded", choices=PLACEMENT_NAMES
    )
    cluster.add_argument(
        "--tier", default=TIER_LOCAL_NVME, choices=SNAPSHOT_TIERS
    )
    cluster.add_argument("--ttl-minutes", type=float, default=15.0)
    cluster.add_argument("--memory-gb", type=float, default=8.0)
    cluster.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        metavar="N",
        help="admission limit per host (default: unlimited)",
    )
    cluster.add_argument(
        "--policy",
        default=Policy.FAASNAP.value,
        choices=[p.value for p in Policy],
    )
    cluster.add_argument("--seed", type=int, default=1)
    cluster.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write Zipkin-flavoured JSON spans (tagged per host)",
    )
    cluster.set_defaults(handler=_cmd_cluster)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
