"""Per-region memory mapping (paper §4.5, §4.8, Table 1, Figure 4).

FaaSnap maps guest memory as a three-layer MAP_FIXED hierarchy:

1. an **anonymous** region covering the entire guest address space —
   this serves the *released set* (pages the guest freed, sanitized
   to zero during the record phase) and the *unused set* (never
   touched), so guest anonymous allocation becomes fast host
   anonymous faults instead of disk reads;
2. the **non-zero regions** of the memory file, mapped file-backed at
   identical offsets — this covers the *cold set* (non-zero pages
   outside the working set) for memory integrity;
3. the **loading-set regions**, mapped onto the compact loading-set
   file at their recorded offsets.

Scanning the memory file yields exact alternating zero/non-zero runs;
mapping every tiny non-zero run separately would cost thousands of
mmap calls, so non-zero runs separated by only a few zero pages are
coalesced (the zero pages in between stay file-backed; the memory
file is sparse, so faulting them costs no I/O and returns zeros —
semantics are preserved).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.loading_set import LoadingSet, _merge_runs, _runs
from repro.storage.filestore import StoredFile
from repro.vm.snapshot import Snapshot
from repro.vm.vmm import MappingPlan

#: Gap tolerance when coalescing non-zero runs into mapped regions.
DEFAULT_NONZERO_MERGE_GAP = 16


def nonzero_regions(
    nonzero_pages: Iterable[int], merge_gap: int = DEFAULT_NONZERO_MERGE_GAP
) -> List[Tuple[int, int]]:
    """Coalesced ``(start, npages)`` regions covering all non-zero
    pages (and at most ``merge_gap``-page zero gaps between them)."""
    pages = sorted(set(nonzero_pages))
    return _merge_runs(_runs(pages), merge_gap)


def build_faasnap_plan(
    snapshot: Snapshot,
    loading_set: Optional[LoadingSet] = None,
    loading_file: Optional[StoredFile] = None,
    nonzero_merge_gap: int = DEFAULT_NONZERO_MERGE_GAP,
) -> MappingPlan:
    """The full per-region mapping plan of Figure 4.

    Without a loading set this is the bare per-region ablation: zero
    regions anonymous, non-zero regions on the memory file.
    """
    if (loading_set is None) != (loading_file is None):
        raise ValueError("loading_set and loading_file go together")
    # Snapshot contents are immutable after capture and the plan is
    # read-only when applied, so the (identical) plan every restore of
    # the same artefacts would rebuild — a full nonzero-page scan plus
    # run merging — is memoized on the snapshot.
    key = (
        loading_file.name if loading_file is not None else None,
        nonzero_merge_gap,
    )
    cache = getattr(snapshot, "_plan_cache", None)
    if cache is None:
        cache = {}
        snapshot._plan_cache = cache
    cached = cache.get(key)
    if cached is not None:
        return cached
    plan = MappingPlan()
    plan.add_anonymous(0, snapshot.num_pages)
    for start, npages in nonzero_regions(
        snapshot.nonzero_pages(), nonzero_merge_gap
    ):
        plan.add_file(start, npages, snapshot.memory_file, start)
    if loading_set is not None and loading_file is not None:
        for region in loading_set.regions:
            plan.add_file(
                region.start, region.npages, loading_file, region.file_offset
            )
    cache[key] = plan
    return plan
