"""FaaSnap: the paper's contribution.

The five techniques of Section 4, plus the baselines they are
evaluated against:

* **concurrent paging** (:mod:`~repro.core.loader`) — a daemon loader
  thread prefetches the working set while the guest runs, turning
  blocking major faults into page-cache minor faults (§4.2);
* **working-set groups** (:mod:`~repro.core.working_set`,
  :mod:`~repro.core.recorder`) — pages grouped by access order so the
  loader reads in approximately the guest's order while keeping disk
  locality (§4.3);
* **host page recording** (:mod:`~repro.core.recorder`) — the working
  set comes from repeated ``mincore`` scans, so pages cached by
  readahead count too, tolerating input changes (§4.4);
* **per-region memory mapping** (:mod:`~repro.core.mapping`) — zero
  regions map to anonymous memory, non-zero regions to the memory
  file, bridging the guest/host semantic gap (§4.5, §4.8);
* **loading sets** (:mod:`~repro.core.loading_set`) — the non-zero
  working set, region-merged and stored in a compact file sorted by
  (group, address) for sequential prefetch (§4.6, §4.7).

:mod:`~repro.core.reap` implements the REAP baseline (ASPLOS '21),
:mod:`~repro.core.policies` names every restore policy including the
Figure 9 ablations, and :mod:`~repro.core.daemon` is the FaaSnap
daemon — the public entry point (register a function, record, invoke,
burst-invoke).
"""

from repro.core.adaptive import AdaptiveConfig, AdaptiveSnapshotManager
from repro.core.analysis import CoverageReport, faasnap_coverage, reap_coverage
from repro.core.daemon import FaaSnapPlatform, FunctionHandle, PlatformConfig
from repro.core.host import Host
from repro.core.loading_set import LoadingRegion, LoadingSet, build_loading_set
from repro.core.mapping import build_faasnap_plan, nonzero_regions
from repro.core.policies import Policy
from repro.core.restore import InvocationResult, RecordArtifacts
from repro.core.staging import SnapshotStager
from repro.core.storage_manager import SnapshotStorageManager
from repro.core.working_set import ReapWorkingSet, WorkingSetGroups

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSnapshotManager",
    "CoverageReport",
    "FaaSnapPlatform",
    "FunctionHandle",
    "Host",
    "InvocationResult",
    "LoadingRegion",
    "LoadingSet",
    "PlatformConfig",
    "Policy",
    "ReapWorkingSet",
    "RecordArtifacts",
    "SnapshotStager",
    "SnapshotStorageManager",
    "WorkingSetGroups",
    "build_faasnap_plan",
    "build_loading_set",
    "faasnap_coverage",
    "nonzero_regions",
    "reap_coverage",
]
