"""The REAP baseline (Ustiugov et al., ASPLOS '21; paper §2.5, §3).

REAP records the guest pages that fault during the first invocation
into a compact working-set file. On subsequent invocations it:

1. maps guest memory anonymously and registers it with userfaultfd;
2. *before the function runs*, reads the entire working-set file in
   one sequential pass — bypassing the page cache — and installs
   every page into the host page table with ``UFFDIO_COPY``;
3. serves any fault outside the working set in user space: the
   handler preads the page from the original memory file (through
   the page cache, with readahead) and installs it, with wake-up and
   context-switch overheads on every such fault.

Step 2 is the "long initial loading step that blocks the invocation"
FaaSnap's concurrent paging removes (§4.2); step 3 is why REAP
degrades when the input changes (§6.3).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.core.working_set import ReapWorkingSet
from repro.host.fault import plan_uncontended_read
from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.host.readahead import ReadaheadPolicy
from repro.sim import Environment, Event
from repro.storage.filestore import FileStore, StoredFile
from repro.vm.snapshot import Snapshot
from repro.vm.vmm import MicroVM

#: Pages per sequential read while loading the working-set file.
_WS_READ_CHUNK_PAGES = 256

#: User-space pread of an already-cached page (copy + syscall).
_CACHED_PREAD_US = 2.0


def write_working_set_file(
    store: FileStore, name: str, working_set: ReapWorkingSet, snapshot: Snapshot
) -> StoredFile:
    """Write REAP's compact working-set file.

    File page ``i`` holds the contents of the ``i``-th faulted guest
    page; a single sequential read fetches everything.
    """
    pages = {}
    for index, guest_page in enumerate(working_set.pages_in_fault_order):
        value = snapshot.page_value(guest_page)
        if value != 0:
            pages[index] = value
    return store.create(
        name, max(len(working_set), 1), pages=pages, sparse=False
    )


def reap_setup(
    env: Environment,
    params: HostParams,
    vm: MicroVM,
    working_set: ReapWorkingSet,
    ws_file: StoredFile,
    snapshot: Snapshot,
) -> Generator[Event, Any, float]:
    """Process helper: REAP's blocking working-set installation.

    Reads the working-set file sequentially (bypassing the page
    cache, as REAP does to maximise read bandwidth — §6.6) and
    installs every page with ``UFFDIO_COPY``. Returns the elapsed
    time; the guest has not run a single instruction meanwhile.
    """
    start = env.now
    total = len(working_set)
    for offset in range(0, total, _WS_READ_CHUNK_PAGES):
        npages = min(_WS_READ_CHUNK_PAGES, total - offset)
        yield from ws_file.read(offset, npages)
        yield env.timeout(params.uffd_copy_us * npages)
        for guest_page in working_set.pages_in_fault_order[
            offset : offset + npages
        ]:
            vm.space.install_pte(guest_page, snapshot.page_value(guest_page))
    return env.now - start


def make_reap_fault_handler(
    env: Environment,
    params: HostParams,
    cache: PageCache,
    snapshot: Snapshot,
) -> Callable[[int], Generator[Event, Any, int]]:
    """User-space handler for faults outside the working set.

    preads the page from the original memory file: zeros for holes,
    a copy from the page cache when resident, otherwise a disk read
    that goes through the cache with readahead (matching the paper's
    observation that out-of-WS handling is 8-64 us when prefetched
    and >128 us when not, §3.3).
    """
    memory_file = snapshot.memory_file
    readahead = ReadaheadPolicy(params)

    def handler(page: int) -> Generator[Event, Any, int]:
        if memory_file.is_hole(page):
            yield env.timeout(_CACHED_PREAD_US)
            return 0
        if cache.contains(memory_file.name, page):
            yield env.timeout(_CACHED_PREAD_US)
            return memory_file.page_value(page)
        pending = cache.pending_event(memory_file.name, page)
        if pending is not None:
            yield pending
            yield env.timeout(_CACHED_PREAD_US)
            return memory_file.page_value(page)
        yield from readahead.fault_read(memory_file, cache, page)
        return memory_file.page_value(page)

    def fast(page: int, now: float):
        # Synchronous twin of ``handler`` for the fault fast path
        # (see repro.host.uffd.UffdFastHandler): prices the fault on
        # the virtual clock ``now`` without mutating, deferring the
        # read's side effects to the plan's commit. Bails to the
        # event path only for waits on in-flight reads.
        if memory_file.is_hole(page):
            return 0, now + _CACHED_PREAD_US, None
        if cache.contains(memory_file.name, page):
            return memory_file.page_value(page), now + _CACHED_PREAD_US, None
        if cache.has_pending(memory_file.name, page):
            return None
        plan = plan_uncontended_read(readahead, memory_file, cache, page, now)
        if plan is None:
            return None
        return memory_file.page_value(page), plan.end, plan

    handler.fast = fast
    return handler
