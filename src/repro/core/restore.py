"""Record-phase and test-phase orchestration (paper Figure 5).

``run_record_phase`` performs the first invocation: restore the clean
snapshot, execute the function while the recorder watches (mincore
for the FaaSnap family, the fault stream for REAP), optionally
sanitize freed pages, capture the warm snapshot, and build the
working-set / loading-set artefacts.

``invocation_process`` performs a test-phase invocation under any
:class:`~repro.core.policies.Policy`, returning an
:class:`InvocationResult` with the timing and fault accounting every
paper figure is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Sequence, Set

from repro.core.loader import (
    DEFAULT_CHUNK_PAGES,
    DEFAULT_COALESCE_GAP,
    LoaderStats,
    loading_set_loader,
    ordered_pages_loader,
)
from repro.core.loading_set import (
    DEFAULT_MERGE_GAP_PAGES,
    LoadingSet,
    build_loading_set,
    write_loading_set_file,
)
from repro.core.mapping import DEFAULT_NONZERO_MERGE_GAP, build_faasnap_plan
from repro.core.policies import Policy
from repro.core.reap import (
    make_reap_fault_handler,
    reap_setup,
    write_working_set_file,
)
from repro.core.recorder import DEFAULT_POLL_INTERVAL_US, mincore_recorder
from repro.core.working_set import (
    DEFAULT_GROUP_PAGES,
    ReapWorkingSet,
    WorkingSetGroups,
)
from repro.host.fault import FaultKind, FaultRecord
from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.sim import Environment, Event, Resource
from repro.storage.device import DeviceSpec
from repro.storage.filestore import PAGE_SIZE, FileStore, StoredFile
from repro.storage.presets import NVME_LOCAL
from repro.vm.snapshot import Snapshot, capture_memory_contents, create_snapshot
from repro.vm.vcpu import GuestAccess, ObservationHorizon
from repro.vm.vmm import MappingPlan, MicroVM, VmmParams, full_file_plan
from repro.workloads.base import InputSpec, WorkloadProfile, WorkloadTrace
from repro.workloads.base import generate_trace
from repro.workloads.base import clean_snapshot_contents

#: Think time of one sanitize (zero-fill) write during the record
#: phase; sanitizing costs the guest ~10% of execution (§5) but only
#: runs in the unmeasured record phase.
_SANITIZE_WRITE_US = 0.2


@dataclass(frozen=True)
class PlatformConfig:
    """Tunables of the simulated platform."""

    host: HostParams = HostParams()
    vmm: VmmParams = VmmParams()
    device: DeviceSpec = NVME_LOCAL
    #: Working-set group size (paper: 1024).
    group_pages: int = DEFAULT_GROUP_PAGES
    #: Gap threshold for merging loading-set regions (paper: 32).
    loading_merge_gap: int = DEFAULT_MERGE_GAP_PAGES
    #: Gap threshold for coalescing non-zero mapped regions.
    nonzero_merge_gap: int = DEFAULT_NONZERO_MERGE_GAP
    #: Loader read granularity and gap coalescing.
    loader_chunk_pages: int = DEFAULT_CHUNK_PAGES
    loader_coalesce_gap: int = DEFAULT_COALESCE_GAP
    #: Recorder procfs poll interval.
    record_poll_interval_us: float = DEFAULT_POLL_INTERVAL_US
    #: Host CPU slots for guest vCPUs (None = uncontended).
    cpu_slots: Optional[int] = None
    #: Tiered snapshot storage (§7.2 future work): keep the small
    #: loading-set / working-set files on the local NVMe SSD while the
    #: large memory files live on the (remote) primary device. Only
    #: meaningful when the primary device is remote.
    tiered_storage: bool = False
    #: Service runs of non-blocking page accesses (anonymous, minor,
    #: present) as one aggregated wakeup instead of one simulation
    #: event per page. Deterministic service times make the
    #: aggregation exact — every simulated number is bit-identical
    #: either way (the golden-parity tests machine-check this) — but
    #: test-phase invocations run roughly an order of magnitude
    #: faster. Record phases batch too: the mincore recorder publishes
    #: the instant of its next shared-state read through an
    #: :class:`~repro.vm.vcpu.ObservationHorizon`, and the vCPU
    #: flushes rather than install a page at or past that instant, so
    #: the recorder sees bit-identical RSS and cache state either way.
    batch_faults: bool = True


@dataclass
class RecordArtifacts:
    """Everything the record phase produces for later test phases."""

    profile: WorkloadProfile
    record_input: InputSpec
    sanitize: bool
    clean_snapshot: Snapshot
    warm_snapshot: Snapshot
    record_trace: WorkloadTrace
    #: FaaSnap working set (only for sanitize=True records).
    ws_groups: Optional[WorkingSetGroups] = None
    loading_set: Optional[LoadingSet] = None
    loading_file: Optional[StoredFile] = None
    #: REAP working set (only for sanitize=False records).
    reap_ws: Optional[ReapWorkingSet] = None
    reap_ws_file: Optional[StoredFile] = None


@dataclass
class InvocationResult:
    """Outcome and accounting of one test-phase invocation."""

    policy: Policy
    function: str
    input: InputSpec
    setup_us: float
    invoke_us: float
    #: Working-set / loading-set fetch (REAP setup read, FaaSnap
    #: loader) — Table 3's fetch columns.
    fetch_time_us: float = 0.0
    fetch_bytes: int = 0
    fault_records: List[FaultRecord] = field(default_factory=list)
    uffd_faults: int = 0
    #: Memory footprint after the invocation (paper §7.3): the VMM
    #: process's resident pages, the page-cache pages holding this
    #: function's snapshot/loading/working-set files, and any private
    #: user-space buffers (REAP's working-set staging buffer).
    rss_pages: int = 0
    cache_pages: int = 0
    private_buffer_pages: int = 0

    @property
    def memory_footprint_mb(self) -> float:
        return (
            (self.rss_pages + self.cache_pages + self.private_buffer_pages)
            * PAGE_SIZE
            / 1e6
        )

    @property
    def total_us(self) -> float:
        return self.setup_us + self.invoke_us

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0

    def fault_count(self, kind: Optional[FaultKind] = None) -> int:
        if kind is None:
            return len(self.fault_records)
        return sum(1 for r in self.fault_records if r.kind is kind)

    @property
    def major_faults(self) -> int:
        return self.fault_count(FaultKind.MAJOR)

    @property
    def fault_time_us(self) -> float:
        return sum(r.duration_us for r in self.fault_records)

    @property
    def fault_block_requests(self) -> int:
        return sum(r.block_requests for r in self.fault_records)

    @property
    def guest_fault_bytes(self) -> int:
        return sum(r.bytes_read for r in self.fault_records)


def artifact_file_names(artifacts: RecordArtifacts) -> List[str]:
    """Names of the files a test-phase invocation of ``artifacts`` can
    touch: the warm memory file plus the loading-set / working-set
    file. Used for per-function footprint accounting and for evicting
    one function's pages from a host cache (the clean snapshot is only
    read during the record phase and is excluded)."""
    names = [artifacts.warm_snapshot.memory_file.name]
    if artifacts.loading_file is not None:
        names.append(artifacts.loading_file.name)
    if artifacts.reap_ws_file is not None:
        names.append(artifacts.reap_ws_file.name)
    return names


def run_record_phase(
    env: Environment,
    config: PlatformConfig,
    store: FileStore,
    cache: PageCache,
    profile: WorkloadProfile,
    record_input: InputSpec,
    sanitize: bool,
    tag: str,
    wipe_pages: Sequence[int] = (),
    artifact_store: Optional[FileStore] = None,
) -> Generator[Event, Any, RecordArtifacts]:
    """Process helper: execute the record phase (paper Figure 5 left).

    Restores a clean snapshot with stock full-file mapping, runs the
    record invocation (with the mincore recorder and freed-page
    sanitization when ``sanitize``), captures the warm snapshot, and
    builds the per-policy artefacts. Drops the page cache afterwards,
    as the evaluation methodology does between phases (§6.1).

    ``wipe_pages`` are guest pages holding high-value secrets (e.g.
    PRNG state); they are zeroed in the captured snapshot, the
    MADV_WIPEONSUSPEND mitigation of §7.4, so restored clones never
    share them. ``artifact_store`` places the derived loading-set /
    working-set files on a different (e.g. faster, local) device than
    the snapshot itself — the tiered-storage layout of §7.2.
    """
    phase_start = env.now
    clean = create_snapshot(
        store,
        f"{tag}.clean",
        profile.total_pages,
        clean_snapshot_contents(profile),
    )
    vm = MicroVM(
        env,
        config.host,
        config.vmm,
        cache,
        profile.total_pages,
        label=f"{tag}.record",
        batch_faults=config.batch_faults,
    )
    yield from vm.restore(clean, full_file_plan(clean))

    trace = generate_trace(profile, record_input)
    accesses = list(trace.accesses)
    if sanitize:
        accesses.extend(
            GuestAccess(page=page, write=True, value=0, think_us=_SANITIZE_WRITE_US)
            for page in trace.freed_pages
        )

    done = env.event()
    recorder_proc = None
    if sanitize:
        # The recorder reads shared state (RSS, the cache log) at
        # known instants; publishing them through the horizon lets the
        # vCPU batch its fault fast path without ever being observed
        # mid-batch. Pre-seed the first poll instant — the vCPU runs
        # synchronously before the recorder's init event dispatches.
        horizon = ObservationHorizon(env.now + config.host.procfs_poll_us)
        vm.vcpu.observer_horizon = horizon
        recorder_proc = env.process(
            mincore_recorder(
                env,
                config.host,
                cache,
                vm.procfs,
                clean.memory_file.name,
                profile.total_pages,
                done,
                group_pages=config.group_pages,
                poll_interval_us=config.record_poll_interval_us,
                horizon=horizon,
            ),
            name=f"{tag}.recorder",
        )

    yield from vm.vcpu.run_trace(accesses, tail_think_us=trace.tail_think_us)
    done.succeed()

    ws_groups: Optional[WorkingSetGroups] = None
    if recorder_proc is not None:
        ws_groups = yield recorder_proc

    contents = capture_memory_contents(vm.space, base=clean)
    for page in wipe_pages:
        contents.pop(page, None)
    warm = create_snapshot(store, f"{tag}.warm", profile.total_pages, contents)

    artifacts = RecordArtifacts(
        profile=profile,
        record_input=record_input,
        sanitize=sanitize,
        clean_snapshot=clean,
        warm_snapshot=warm,
        record_trace=trace,
        ws_groups=ws_groups,
    )

    derived_store = artifact_store or store
    if sanitize:
        assert ws_groups is not None
        artifacts.loading_set = build_loading_set(
            ws_groups,
            warm.nonzero_pages(),
            merge_gap=config.loading_merge_gap,
        )
        artifacts.loading_file = write_loading_set_file(
            derived_store, f"{tag}.loadingset", artifacts.loading_set, warm
        )
    else:
        faulted = [
            record.page
            for record in vm.handler.stats.records
            if record.kind is not FaultKind.NONE
        ]
        artifacts.reap_ws = ReapWorkingSet.from_fault_pages(faulted)
        artifacts.reap_ws_file = write_working_set_file(
            derived_store, f"{tag}.reapws", artifacts.reap_ws, warm
        )

    telemetry = getattr(cache, "telemetry", None)
    if telemetry is not None:
        telemetry.profiler.phase("record", phase_start, env.now)
        telemetry.record_phases.value += 1
        telemetry.absorb_fault_records(vm.handler.stats.records)

    cache.drop_all()
    store.device.reset_stats()
    if derived_store is not store:
        derived_store.device.reset_stats()
    return artifacts


def _start_loader(
    env: Environment,
    config: PlatformConfig,
    cache: PageCache,
    artifacts: RecordArtifacts,
    policy: Policy,
    loader_gate: Optional[Set[str]],
    tag: str,
):
    """Kick off the concurrent daemon loader for FaaSnap-family
    policies. Returns ``(process, stats)`` or ``(None, stats)`` when
    another VM of the same burst already loads this snapshot (the
    daemon's load-once lock, §6.6)."""
    stats = LoaderStats()
    assert artifacts.ws_groups is not None

    if policy is Policy.FAASNAP:
        assert artifacts.loading_file is not None
        gate_key = artifacts.loading_file.name
        if loader_gate is not None:
            if gate_key in loader_gate:
                return None, stats
            loader_gate.add(gate_key)
        proc = env.process(
            loading_set_loader(
                env,
                cache,
                artifacts.loading_file,
                stats,
                chunk_pages=config.loader_chunk_pages,
            ),
            name=f"{tag}.loader",
        )
        return proc, stats

    memory_file = artifacts.warm_snapshot.memory_file
    if policy is Policy.FAASNAP_CONCURRENT:
        pages = artifacts.ws_groups.pages  # plain address order
    else:  # FAASNAP_PER_REGION: group order, addresses within group
        group_of = artifacts.ws_groups.group_of
        pages = sorted(group_of, key=lambda p: (group_of[p], p))
    gate_key = f"{memory_file.name}:{policy.value}"
    if loader_gate is not None:
        if gate_key in loader_gate:
            return None, stats
        loader_gate.add(gate_key)
    proc = env.process(
        ordered_pages_loader(
            env,
            cache,
            memory_file,
            pages,
            stats,
            coalesce_gap=config.loader_coalesce_gap,
            chunk_pages=config.loader_chunk_pages,
        ),
        name=f"{tag}.loader",
    )
    return proc, stats


def invocation_process(
    env: Environment,
    config: PlatformConfig,
    store: FileStore,
    cache: PageCache,
    cpu: Optional[Resource],
    artifacts: RecordArtifacts,
    test_input: InputSpec,
    policy: Policy,
    tag: str,
    loader_gate: Optional[Set[str]] = None,
    tracer=None,
) -> Generator[Event, Any, InvocationResult]:
    """Process helper: one test-phase invocation under ``policy``.

    ``tracer`` (a :class:`repro.metrics.tracing.Tracer`) records a
    Zipkin-style span tree of the invocation's phases.
    """
    _check_artifacts(artifacts, policy)
    profile = artifacts.profile
    warm = artifacts.warm_snapshot
    trace = generate_trace(profile, test_input, prior=artifacts.record_trace)
    request_time = env.now

    vm = MicroVM(
        env,
        config.host,
        config.vmm,
        cache,
        profile.total_pages,
        label=tag,
        cpu=cpu,
        use_uffd=(policy is Policy.REAP),
        batch_faults=config.batch_faults,
    )

    # Concurrent paging starts the instant the request arrives —
    # before the VMM even begins setup (§4.2).
    loader_proc = None
    loader_stats = LoaderStats()
    if policy.uses_loader:
        loader_proc, loader_stats = _start_loader(
            env, config, cache, artifacts, policy, loader_gate, tag
        )

    fetch_time_us = 0.0
    fetch_bytes = 0

    if policy is Policy.WARM:
        vm.make_warm(warm)
        setup_us = 0.0
    elif policy is Policy.FIRECRACKER:
        setup_us = yield from vm.restore(warm, full_file_plan(warm))
    elif policy is Policy.CACHED:
        cache.warm_file(warm.memory_file.name, warm.memory_file.pages)
        setup_us = yield from vm.restore(warm, full_file_plan(warm))
    elif policy is Policy.REAP:
        assert artifacts.reap_ws is not None
        assert artifacts.reap_ws_file is not None
        plan = MappingPlan()
        plan.add_anonymous(0, profile.total_pages)
        setup_us = yield from vm.restore(warm, plan)
        assert vm.uffd is not None
        vm.uffd.register(
            0,
            profile.total_pages,
            make_reap_fault_handler(env, config.host, cache, warm),
        )
        vm.handler.io_device = warm.memory_file.device
        fetch_time_us = yield from reap_setup(
            env, config.host, vm, artifacts.reap_ws, artifacts.reap_ws_file, warm
        )
        fetch_bytes = len(artifacts.reap_ws) * PAGE_SIZE
        setup_us += fetch_time_us
    elif policy is Policy.FAASNAP_CONCURRENT:
        setup_us = yield from vm.restore(warm, full_file_plan(warm))
    else:  # FAASNAP and FAASNAP_PER_REGION
        loading_set = (
            artifacts.loading_set if policy.uses_loading_set_file else None
        )
        loading_file = (
            artifacts.loading_file if policy.uses_loading_set_file else None
        )
        plan = build_faasnap_plan(
            warm,
            loading_set,
            loading_file,
            nonzero_merge_gap=config.nonzero_merge_gap,
        )
        setup_us = yield from vm.restore(warm, plan)

    invoke_started = env.now
    yield from vm.vcpu.run_trace(trace.accesses, tail_think_us=trace.tail_think_us)
    invoke_us = env.now - invoke_started

    if loader_proc is not None:
        if loader_proc.is_alive:
            yield loader_proc
        fetch_time_us = loader_stats.fetch_time_us
        fetch_bytes = loader_stats.bytes_read

    if tracer is not None:
        root = tracer.record(
            f"{profile.name} [{policy.value}]", request_time, env.now
        )
        setup_span = tracer.record(
            "setup", request_time, request_time + setup_us, parent=root
        )
        if policy is Policy.REAP and fetch_time_us > 0:
            tracer.record(
                "working-set fetch + UFFDIO_COPY",
                request_time + setup_us - fetch_time_us,
                request_time + setup_us,
                parent=setup_span,
            )
        tracer.record(
            "invoke", invoke_started, invoke_started + invoke_us, parent=root
        )
        if loader_proc is not None and loader_stats.finished_us > 0:
            span = tracer.record(
                "concurrent loader",
                loader_stats.started_us,
                loader_stats.finished_us,
                parent=root,
            )
            span.annotate(
                f"fetched {loader_stats.bytes_read / 1e6:.1f} MB in "
                f"{loader_stats.requests} requests"
            )

    telemetry = getattr(cache, "telemetry", None)
    if telemetry is not None:
        profiler = telemetry.profiler
        invoke_end = invoke_started + invoke_us
        profiler.phase(
            f"setup.{policy.value}", request_time, request_time + setup_us
        )
        profiler.phase("invoke", invoke_started, invoke_end)
        if env.now > invoke_end:
            # The loader join drained past the guest's finish.
            profiler.phase("loader.drain", invoke_end, env.now)
        if loader_proc is not None and loader_stats.finished_us > 0:
            profiler.add("loader.fetch", loader_stats.fetch_time_us)
        telemetry.invocations.value += 1
        telemetry.absorb_fault_records(vm.handler.stats.records)
        if vm.uffd is not None:
            telemetry.uffd_delegated.value += vm.uffd.delegated_faults

    function_files = artifact_file_names(artifacts)
    cache_pages = sum(cache.count_for_file(name) for name in function_files)
    private_buffer_pages = (
        len(artifacts.reap_ws)
        if policy is Policy.REAP and artifacts.reap_ws is not None
        else 0
    )

    return InvocationResult(
        policy=policy,
        function=profile.name,
        input=test_input,
        setup_us=setup_us,
        invoke_us=invoke_us,
        fetch_time_us=fetch_time_us,
        fetch_bytes=fetch_bytes,
        fault_records=list(vm.handler.stats.records),
        uffd_faults=vm.uffd.delegated_faults if vm.uffd else 0,
        rss_pages=vm.space.rss_pages(),
        cache_pages=cache_pages,
        private_buffer_pages=private_buffer_pages,
    )


def _check_artifacts(artifacts: RecordArtifacts, policy: Policy) -> None:
    """Refuse mismatched record/test pairings early."""
    if policy.is_faasnap_family and not artifacts.sanitize:
        raise ValueError(
            f"{policy.value} needs a sanitize=True record phase"
        )
    if policy is Policy.REAP and artifacts.sanitize:
        raise ValueError("REAP needs a sanitize=False record phase")
    if policy in (Policy.FIRECRACKER, Policy.CACHED, Policy.WARM) and (
        artifacts.sanitize
    ):
        raise ValueError(
            f"{policy.value} compares against unsanitized snapshots"
        )
