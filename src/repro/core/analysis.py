"""Working-set quality analysis.

The paper's Section 3 analysis boils down to two numbers about a
recorded working set faced with a new invocation:

* **coverage** — what fraction of the pages the new invocation
  touches were captured (those become fast faults);
* **waste** — what fraction of the prefetched pages go unused (those
  cost fetch bandwidth and page-cache memory for nothing, §7.3).

REAP's exact fault set maximises precision but loses coverage the
moment inputs change; FaaSnap's host page recording trades some waste
for coverage. These helpers make that trade measurable for any
record/test pair, giving operators the signal for when a snapshot has
gone stale (see :mod:`repro.core.adaptive`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.core.restore import RecordArtifacts
from repro.workloads.base import InputSpec, WorkloadTrace, generate_trace


@dataclass(frozen=True)
class CoverageReport:
    """How well a prefetch set matches an invocation's accesses."""

    #: Pages the test invocation touches.
    touched_pages: int
    #: Pages in the prefetch (working/loading) set.
    prefetch_pages: int
    #: Touched pages that the prefetch set captured.
    covered_pages: int

    @property
    def coverage(self) -> float:
        """Fraction of touched pages served by the prefetch set."""
        return self.covered_pages / self.touched_pages if self.touched_pages else 1.0

    @property
    def waste(self) -> float:
        """Fraction of prefetched pages the invocation never used."""
        if self.prefetch_pages == 0:
            return 0.0
        return 1.0 - self.covered_pages / self.prefetch_pages

    @property
    def miss_pages(self) -> int:
        """Touched pages outside the prefetch set (slow-path faults)."""
        return self.touched_pages - self.covered_pages


def _coverage(prefetch: Set[int], trace: WorkloadTrace) -> CoverageReport:
    touched = trace.touched_pages
    return CoverageReport(
        touched_pages=len(touched),
        prefetch_pages=len(prefetch),
        covered_pages=len(touched & prefetch),
    )


def trace_for(
    artifacts: RecordArtifacts, test_input: InputSpec
) -> WorkloadTrace:
    """The trace a test invocation of ``test_input`` would execute."""
    return generate_trace(
        artifacts.profile, test_input, prior=artifacts.record_trace
    )


def faasnap_coverage(
    artifacts: RecordArtifacts,
    test_input: InputSpec,
    trace: Optional[WorkloadTrace] = None,
) -> CoverageReport:
    """Coverage of FaaSnap's prefetch for a hypothetical invocation.

    FaaSnap serves a touched page fast if it is in the loading set
    (prefetched), or if it is zero in the snapshot (anonymous fault) —
    so the effective fast set is loading-set pages plus zero pages.
    """
    if artifacts.loading_set is None:
        raise ValueError("artifacts carry no FaaSnap loading set")
    trace = trace or trace_for(artifacts, test_input)
    nonzero = set(artifacts.warm_snapshot.memory_file.pages)
    fast = set(artifacts.loading_set.covered_pages())
    fast |= {p for p in trace.touched_pages if p not in nonzero}
    return _coverage(fast, trace)


def reap_coverage(
    artifacts: RecordArtifacts,
    test_input: InputSpec,
    trace: Optional[WorkloadTrace] = None,
) -> CoverageReport:
    """Coverage of REAP's working set for a hypothetical invocation."""
    if artifacts.reap_ws is None:
        raise ValueError("artifacts carry no REAP working set")
    trace = trace or trace_for(artifacts, test_input)
    return _coverage(
        set(artifacts.reap_ws.pages_in_fault_order), trace
    )
