"""Working-set representations.

Two recorders, two shapes:

* :class:`WorkingSetGroups` — FaaSnap's working set: every page the
  host cached during the record invocation (faulted *or* readahead),
  partitioned into groups of ~N pages by the order mincore scans saw
  them (§4.3, §4.4). N = 1024 in the paper.
* :class:`ReapWorkingSet` — REAP's working set: exactly the guest
  pages that faulted, in fault order (§2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

#: The paper's group size (§4.3: "we find N = 1024 works well").
DEFAULT_GROUP_PAGES = 1024


@dataclass
class WorkingSetGroups:
    """FaaSnap working set: guest page -> group number (1-based)."""

    group_of: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_batches(
        cls,
        batches: Sequence[Sequence[int]],
        group_pages: int = DEFAULT_GROUP_PAGES,
    ) -> "WorkingSetGroups":
        """Build groups from successive mincore scan results.

        Each batch holds the pages that became resident since the
        previous scan; oversized batches (e.g. a burst of readahead)
        are split into consecutive groups of ``group_pages``.
        """
        if group_pages < 1:
            raise ValueError("group_pages must be >= 1")
        group_of: Dict[int, int] = {}
        group = 0
        for batch in batches:
            fresh: List[int] = []
            batch_seen = set()
            for page in batch:
                if page not in group_of and page not in batch_seen:
                    batch_seen.add(page)
                    fresh.append(page)
            for start in range(0, len(fresh), group_pages):
                group += 1
                for page in fresh[start : start + group_pages]:
                    group_of[page] = group
        return cls(group_of=group_of)

    def __len__(self) -> int:
        return len(self.group_of)

    def __contains__(self, page: int) -> bool:
        return page in self.group_of

    @property
    def pages(self) -> List[int]:
        """All working-set pages in ascending address order."""
        return sorted(self.group_of)

    @property
    def num_groups(self) -> int:
        return max(self.group_of.values()) if self.group_of else 0

    def group(self, page: int) -> int:
        """Group number of ``page`` (KeyError if not in the set)."""
        return self.group_of[page]

    def pages_of_group(self, group: int) -> List[int]:
        """Pages of one group in address order."""
        return sorted(p for p, g in self.group_of.items() if g == group)

    def size_mb(self) -> float:
        return len(self.group_of) * 4096 / 1e6


@dataclass
class ReapWorkingSet:
    """REAP working set: faulting guest pages in fault order."""

    pages_in_fault_order: List[int] = field(default_factory=list)

    @classmethod
    def from_fault_pages(cls, pages: Iterable[int]) -> "ReapWorkingSet":
        """Deduplicate a fault stream, keeping first-fault order."""
        seen = set()
        ordered: List[int] = []
        for page in pages:
            if page not in seen:
                seen.add(page)
                ordered.append(page)
        return cls(pages_in_fault_order=ordered)

    def __len__(self) -> int:
        return len(self.pages_in_fault_order)

    def __contains__(self, page: int) -> bool:
        return page in self._page_set

    @property
    def _page_set(self) -> frozenset:
        cached = getattr(self, "_cached_page_set", None)
        if cached is None or len(cached) != len(self.pages_in_fault_order):
            cached = frozenset(self.pages_in_fault_order)
            object.__setattr__(self, "_cached_page_set", cached)
        return cached

    def size_mb(self) -> float:
        return len(self.pages_in_fault_order) * 4096 / 1e6
