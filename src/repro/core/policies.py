"""Snapshot restore policies.

The four systems the paper compares (§3.1, §6.1) plus the two
intermediate ablation steps of Figure 9 (§6.5).
"""

from __future__ import annotations

import enum
from typing import List


class Policy(enum.Enum):
    """How a function invocation's guest memory is provided."""

    #: A warm VM cached in memory that served a previous invocation.
    WARM = "warm"
    #: Stock Firecracker snapshot restore: whole-file mapping,
    #: on-demand paging from disk.
    FIRECRACKER = "firecracker"
    #: Firecracker with the snapshot memory file preloaded into the
    #: page cache — impractical, used as a reference (§3.1).
    CACHED = "cached"
    #: REAP (ASPLOS '21): blocking prefetch of the recorded working
    #: set via userfaultfd; out-of-WS faults handled at user level.
    REAP = "reap"
    #: Full FaaSnap: concurrent paging + working-set groups + host
    #: page recording + per-region mapping + loading-set file.
    FAASNAP = "faasnap"
    #: Ablation (Fig. 9 step 2): concurrent paging only — stock
    #: whole-file mapping, loader prefetches the working set from the
    #: memory file in address order.
    FAASNAP_CONCURRENT = "faasnap-concurrent"
    #: Ablation (Fig. 9 step 3): + per-region mapping and working-set
    #: groups, but no compact loading-set file — the loader reads the
    #: working set from the memory file in group order.
    FAASNAP_PER_REGION = "faasnap-per-region"

    @property
    def is_faasnap_family(self) -> bool:
        """Policies that record via mincore and sanitize freed pages."""
        return self in (
            Policy.FAASNAP,
            Policy.FAASNAP_CONCURRENT,
            Policy.FAASNAP_PER_REGION,
        )

    @property
    def uses_loader(self) -> bool:
        """Policies with a concurrent daemon loader thread."""
        return self.is_faasnap_family

    @property
    def uses_per_region_mapping(self) -> bool:
        return self in (Policy.FAASNAP, Policy.FAASNAP_PER_REGION)

    @property
    def uses_loading_set_file(self) -> bool:
        return self is Policy.FAASNAP

    @property
    def needs_record_phase(self) -> bool:
        """Policies whose test phase consumes record-phase artefacts
        beyond the warm snapshot itself."""
        return self is Policy.REAP or self.is_faasnap_family


#: The comparison set of the paper's main figures (6, 7, 11).
MAIN_POLICIES: List[Policy] = [
    Policy.FIRECRACKER,
    Policy.REAP,
    Policy.FAASNAP,
    Policy.CACHED,
]

#: The Figure 9 ablation ladder.
ABLATION_POLICIES: List[Policy] = [
    Policy.FIRECRACKER,
    Policy.FAASNAP_CONCURRENT,
    Policy.FAASNAP_PER_REGION,
    Policy.FAASNAP,
]
