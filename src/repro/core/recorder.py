"""The record-phase recorder: host page recording via mincore.

Paper §4.4 and §5: during the record invocation the FaaSnap daemon
polls procfs for the guest's RSS; once at least 1024 new pages are
resident it calls ``mincore`` on the mapped memory file to pick up the
pages that appeared since the last scan — including pages the kernel's
readahead brought in that the guest never faulted on. Each scan's
pages extend the working set in scan order, which is what defines the
working-set groups (§4.3).

The recorder runs as a simulation process concurrent with the guest
vCPU, exactly like the daemon thread it models.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.host.procfs import Procfs
from repro.sim import Environment, Event
from repro.core.working_set import DEFAULT_GROUP_PAGES, WorkingSetGroups

#: How often the daemon polls procfs, microseconds. The paper does
#: not give a number; sub-millisecond polling is cheap for a daemon
#: thread and fine-grained enough to keep groups near 1024 pages.
DEFAULT_POLL_INTERVAL_US = 200.0


def mincore_recorder(
    env: Environment,
    params: HostParams,
    cache: PageCache,
    procfs: Procfs,
    memory_file_name: str,
    num_pages: int,
    done: Event,
    group_pages: int = DEFAULT_GROUP_PAGES,
    poll_interval_us: float = DEFAULT_POLL_INTERVAL_US,
) -> Generator[Event, Any, WorkingSetGroups]:
    """Process helper: record the working set of one invocation.

    Runs until ``done`` fires, then performs a final sweep so pages
    resident at invocation end are never lost. Returns the grouped
    working set.

    Cost model: each RSS poll charges the procfs read; each mincore
    scan charges the full present-bit scan of the mapping (base +
    per-page), even though the simulation diffs incrementally via the
    page cache's insertion log.
    """
    batches: List[List[int]] = []
    cursor = 0
    seen: set = set()
    rss_at_last_scan = 0

    def scan() -> Generator[Event, Any, None]:
        nonlocal cursor
        # Charge the real mincore cost for scanning the whole mapping.
        yield env.timeout(
            params.mincore_base_us + params.mincore_per_page_us * num_pages
        )
        log = cache.insertion_log(memory_file_name)
        fresh: List[int] = []
        for page in log[cursor:]:
            if page not in seen and cache.peek(memory_file_name, page):
                seen.add(page)
                fresh.append(page)
        cursor = len(log)
        if fresh:
            batches.append(fresh)

    while not done.triggered:
        rss = yield from procfs.rss_pages()
        if rss - rss_at_last_scan >= group_pages:
            yield from scan()
            rss_at_last_scan = rss
        if done.triggered:
            break
        yield env.timeout(poll_interval_us)

    yield from scan()
    return WorkingSetGroups.from_batches(batches, group_pages=group_pages)
