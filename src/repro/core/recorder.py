"""The record-phase recorder: host page recording via mincore.

Paper §4.4 and §5: during the record invocation the FaaSnap daemon
polls procfs for the guest's RSS; once at least 1024 new pages are
resident it calls ``mincore`` on the mapped memory file to pick up the
pages that appeared since the last scan — including pages the kernel's
readahead brought in that the guest never faulted on. Each scan's
pages extend the working set in scan order, which is what defines the
working-set groups (§4.3).

The recorder runs as a simulation process concurrent with the guest
vCPU, exactly like the daemon thread it models.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.host.page_cache import PageCache
from repro.host.params import HostParams
from repro.host.procfs import Procfs
from repro.sim import Environment, Event
from repro.vm.vcpu import ObservationHorizon
from repro.core.working_set import DEFAULT_GROUP_PAGES, WorkingSetGroups

#: How often the daemon polls procfs, microseconds. The paper does
#: not give a number; sub-millisecond polling is cheap for a daemon
#: thread and fine-grained enough to keep groups near 1024 pages.
DEFAULT_POLL_INTERVAL_US = 200.0


def mincore_recorder(
    env: Environment,
    params: HostParams,
    cache: PageCache,
    procfs: Procfs,
    memory_file_name: str,
    num_pages: int,
    done: Event,
    group_pages: int = DEFAULT_GROUP_PAGES,
    poll_interval_us: float = DEFAULT_POLL_INTERVAL_US,
    horizon: Optional[ObservationHorizon] = None,
) -> Generator[Event, Any, WorkingSetGroups]:
    """Process helper: record the working set of one invocation.

    Runs until ``done`` fires, then performs a final sweep so pages
    resident at invocation end are never lost. Returns the grouped
    working set.

    Cost model: each RSS poll charges the procfs read; each mincore
    scan charges the full present-bit scan of the mapping (base +
    per-page), even though the simulation diffs incrementally via the
    page cache's insertion log.

    ``horizon`` lets the recorded VM's vCPU batch its fault fast path
    without ever being observed mid-batch: before each sleep this
    process publishes the instant of its *next* read of shared state
    (the RSS count, the cache's insertion log), and the batching vCPU
    flushes rather than install a page at or past that instant.
    """

    def publish(next_read_at: float) -> None:
        if horizon is not None:
            horizon.next_at = next_read_at

    batches: List[List[int]] = []
    cursor = 0
    seen: set = set()
    rss_at_last_scan = 0

    def scan() -> Generator[Event, Any, None]:
        nonlocal cursor
        # Charge the real mincore cost for scanning the whole mapping.
        scan_cost = (
            params.mincore_base_us + params.mincore_per_page_us * num_pages
        )
        publish(env.now + scan_cost)
        yield env.timeout(scan_cost)
        log = cache.insertion_log(memory_file_name)
        fresh: List[int] = []
        for page in log[cursor:]:
            if page not in seen and cache.peek(memory_file_name, page):
                seen.add(page)
                fresh.append(page)
        cursor = len(log)
        if fresh:
            batches.append(fresh)

    while not done.triggered:
        # procfs.rss_pages charges its poll cost, then reads the RSS.
        publish(env.now + params.procfs_poll_us)
        rss = yield from procfs.rss_pages()
        if rss - rss_at_last_scan >= group_pages:
            yield from scan()
            rss_at_last_scan = rss
        if done.triggered:
            break
        publish(env.now + poll_interval_us + params.procfs_poll_us)
        yield env.timeout(poll_interval_us)

    publish(float("inf"))
    yield from scan()
    return WorkingSetGroups.from_batches(batches, group_pages=group_pages)
