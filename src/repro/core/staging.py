"""Hierarchical snapshot staging (paper §7.2).

Snapshots of functions far down the invocation-frequency distribution
belong on the cheapest storage — S3-class object stores. Serving page
faults from an object store directly is hopeless (millisecond
first-byte latency), so the paper sketches a hierarchical scheme:
fetch the snapshot bundle to a faster tier when the function becomes
active, then serve from there.

:class:`SnapshotStager` implements that: it streams a snapshot's
files from their (slow) home device to a local store as one big
sequential read per file — paying object-store bandwidth once — and
returns artefacts that point at the local copies, ready for any
restore policy. Sparse files only transfer their non-zero pages.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.core.restore import RecordArtifacts
from repro.sim import Environment, Event
from repro.storage.filestore import FileStore, StoredFile
from repro.vm.snapshot import Snapshot

#: Pages per staging read request.
_STAGE_CHUNK_PAGES = 512


@dataclass
class StagingStats:
    """Accounting for capacity planning and cost estimates."""

    files_staged: int = 0
    bytes_transferred: int = 0
    staging_time_us: float = 0.0


class SnapshotStager:
    """Copies snapshot bundles from a slow tier to a local store."""

    def __init__(self, env: Environment, local_store: FileStore):
        self.env = env
        self.local_store = local_store
        self.stats = StagingStats()
        self._staged: Dict[str, StoredFile] = {}

    def is_staged(self, file_name: str) -> bool:
        return file_name in self._staged

    def stage_file(
        self, remote: StoredFile
    ) -> Generator[Event, Any, StoredFile]:
        """Process helper: copy ``remote`` to the local store.

        Reads the remote file sequentially (holes free), creates the
        local twin with identical contents, and memoizes it so a
        second staging request is free.
        """
        cached = self._staged.get(remote.name)
        if cached is not None:
            return cached
        started = self.env.now
        before = remote.device.stats.bytes_read
        for start in range(0, remote.num_pages, _STAGE_CHUNK_PAGES):
            npages = min(_STAGE_CHUNK_PAGES, remote.num_pages - start)
            yield from remote.read(start, npages)
        local = self.local_store.create(
            f"staged.{remote.name}",
            remote.num_pages,
            pages=dict(remote.pages),
            sparse=remote.sparse,
        )
        self._staged[remote.name] = local
        self.stats.files_staged += 1
        self.stats.bytes_transferred += remote.device.stats.bytes_read - before
        self.stats.staging_time_us += self.env.now - started
        return local

    def stage_artifacts(
        self, artifacts: RecordArtifacts
    ) -> Generator[Event, Any, RecordArtifacts]:
        """Process helper: stage a whole record-phase bundle.

        Returns a copy of ``artifacts`` whose snapshot, loading-set
        and working-set files live on the local store; the working-set
        metadata (groups, regions, offsets) carries over unchanged.
        """
        warm = artifacts.warm_snapshot
        local_memory = yield from self.stage_file(warm.memory_file)
        local_vmstate = yield from self.stage_file(warm.vmstate_file)
        local_warm = Snapshot(
            name=f"staged.{warm.name}",
            memory_file=local_memory,
            vmstate_file=local_vmstate,
        )
        local_loading: Optional[StoredFile] = None
        if artifacts.loading_file is not None:
            local_loading = yield from self.stage_file(artifacts.loading_file)
        local_ws: Optional[StoredFile] = None
        if artifacts.reap_ws_file is not None:
            local_ws = yield from self.stage_file(artifacts.reap_ws_file)
        return dataclasses.replace(
            artifacts,
            warm_snapshot=local_warm,
            loading_file=local_loading,
            reap_ws_file=local_ws,
        )
