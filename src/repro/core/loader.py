"""The FaaSnap daemon loader: concurrent paging (paper §4.2).

The loader is a daemon thread that starts prefetching the moment the
invocation request arrives — concurrently with VMM setup and guest
execution, never blocking either. Pages it reads land in the host
page cache; guest faults on them become minor faults, and guest
faults racing an in-flight loader read wait for that read instead of
issuing their own (§6.5).

Three loader flavours back the Figure 9 ablation ladder:

* :func:`loading_set_loader` — full FaaSnap: stream the compact
  loading-set file start to finish (it is already laid out in
  (group, address) order, §4.7);
* :func:`ordered_pages_loader` over group-ordered pages — per-region
  ablation: read the working set from the *memory file*, groups in
  order, addresses ascending within a group (§4.3);
* :func:`ordered_pages_loader` over address-ordered pages —
  concurrent-paging-only ablation: read the working set from the
  memory file in plain address order (§6.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Sequence, Tuple

from repro.faults.errors import DeviceError
from repro.host.page_cache import PageCache
from repro.sim import Environment, Event
from repro.storage.filestore import StoredFile

#: Pages per loader read request.
DEFAULT_CHUNK_PAGES = 64

#: Gaps up to this many pages are read through rather than split into
#: separate requests (I/O-scheduler-style merging).
DEFAULT_COALESCE_GAP = 32


@dataclass
class LoaderStats:
    """Accounting for one loader run (Table 3's fetch columns)."""

    started_us: float = 0.0
    finished_us: float = 0.0
    pages_fetched: int = 0
    bytes_read: int = 0
    requests: int = 0
    #: Injected I/O errors that made the loader give up early. The
    #: guest then demand-faults the unfetched pages itself.
    errors: int = 0

    @property
    def fetch_time_us(self) -> float:
        return self.finished_us - self.started_us


def _read_chunk(
    env: Environment,
    cache: PageCache,
    file: StoredFile,
    start: int,
    npages: int,
    stats: LoaderStats,
) -> Generator[Event, Any, None]:
    """Read one contiguous file chunk, publishing pending state so
    concurrent guest faults wait on it."""
    # One interval computation instead of a per-page residency +
    # pending probe: ``fresh`` is the ascending list of sub-ranges the
    # chunk still has to read.
    fresh = cache.missing_ranges(file.name, start, npages)
    if not fresh:
        return
    for run_start, run_end in fresh:
        cache.note_pending_range(file.name, run_start, run_end - run_start)
    before_requests = file.device.stats.requests
    before_bytes = file.device.stats.bytes_read
    try:
        yield from file.read(start, npages)
    except BaseException:
        for run_start, run_end in fresh:
            cache.abandon_pending_range(
                file.name, run_start, run_end - run_start
            )
        raise
    # Insert each fresh run in one range operation: runs are ascending,
    # so pending completions and the insertion log keep the exact
    # per-page order the per-page loop produced.
    fetched = 0
    for run_start, run_end in fresh:
        cache.insert_range(file.name, run_start, run_end - run_start)
        fetched += run_end - run_start
    stats.pages_fetched += fetched
    stats.requests += file.device.stats.requests - before_requests
    stats.bytes_read += file.device.stats.bytes_read - before_bytes


def loading_set_loader(
    env: Environment,
    cache: PageCache,
    loading_file: StoredFile,
    stats: LoaderStats,
    chunk_pages: int = DEFAULT_CHUNK_PAGES,
) -> Generator[Event, Any, LoaderStats]:
    """Process helper: stream the whole loading-set file sequentially."""
    stats.started_us = env.now
    try:
        for start in range(0, loading_file.num_pages, chunk_pages):
            npages = min(chunk_pages, loading_file.num_pages - start)
            yield from _read_chunk(
                env, cache, loading_file, start, npages, stats
            )
    except DeviceError:
        # A daemon loader thread hitting an I/O error gives up: the
        # remaining pages are simply never prefetched and the guest
        # demand-faults them. Absorbing the error here (the chunk
        # reader already abandoned its pending marks) keeps the
        # loader process from dying unobserved — the invocation may
        # have finished without ever joining it.
        stats.errors += 1
    stats.finished_us = env.now
    return stats


def coalesce_ordered_pages(
    pages: Sequence[int],
    coalesce_gap: int = DEFAULT_COALESCE_GAP,
    chunk_pages: int = DEFAULT_CHUNK_PAGES,
) -> List[Tuple[int, int]]:
    """Turn an ordered page list into read units ``(start, npages)``.

    Consecutive-or-nearby pages (ascending, gap <= ``coalesce_gap``)
    merge into one read that spans the gap; units are capped at
    ``chunk_pages``. Out-of-order jumps always start a new unit —
    this is what makes address-ordered loading disk-friendlier than
    access-ordered loading (§4.3).
    """
    units: List[Tuple[int, int]] = []
    for page in pages:
        if units:
            start, npages = units[-1]
            end = start + npages
            if 0 <= page - end <= coalesce_gap and (
                page - start + 1 <= chunk_pages
            ):
                units[-1] = (start, page - start + 1)
                continue
            if start <= page < end:
                continue  # already covered by the current unit
        units.append((page, 1))
    return units


def ordered_pages_loader(
    env: Environment,
    cache: PageCache,
    memory_file: StoredFile,
    pages: Sequence[int],
    stats: LoaderStats,
    coalesce_gap: int = DEFAULT_COALESCE_GAP,
    chunk_pages: int = DEFAULT_CHUNK_PAGES,
) -> Generator[Event, Any, LoaderStats]:
    """Process helper: prefetch ``pages`` from the memory file in the
    given order, coalescing nearby ascending pages into single reads."""
    stats.started_us = env.now
    try:
        for start, npages in coalesce_ordered_pages(
            pages, coalesce_gap, chunk_pages
        ):
            yield from _read_chunk(
                env, cache, memory_file, start, npages, stats
            )
    except DeviceError:
        # Same bail-out as loading_set_loader: give up on the first
        # injected I/O error and let demand paging cover the rest.
        stats.errors += 1
    stats.finished_us = env.now
    return stats
