"""Snapshot storage management (paper §7.2).

Snapshots cost real storage: a memory file is a full copy of guest
memory (saved sparse, so its footprint is its non-zero pages), plus
the loading-set or working-set file. The paper's discussion section
lays out the policy this module implements:

* track per-function snapshot bundles and their on-disk footprint;
* enforce a storage quota, evicting the least valuable bundles —
  least-recently-used first, like warm-VM eviction one tier up;
* skip snapshotting very infrequent functions entirely ("for very
  infrequent functions, providers can choose to not take snapshots
  at all to reduce overall storage requirements").

Evicting a bundle is safe: the next invocation of that function falls
back to a cold start and re-records, exactly as the fleet scheduler
models it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.restore import RecordArtifacts
from repro.storage.filestore import PAGE_SIZE


@dataclass
class SnapshotBundle:
    """The on-disk artefacts of one function's snapshot."""

    function: str
    #: Sparse memory file footprint: non-zero pages only (§7.2).
    memory_bytes: int
    #: Loading-set or working-set file footprint.
    artifact_bytes: int
    created_us: float
    last_used_us: float
    invocations: int = 0

    @property
    def total_bytes(self) -> int:
        return self.memory_bytes + self.artifact_bytes


def bundle_from_artifacts(
    artifacts: RecordArtifacts, now_us: float
) -> SnapshotBundle:
    """Measure a record phase's on-disk footprint."""
    memory_bytes = (
        len(artifacts.warm_snapshot.memory_file.pages) * PAGE_SIZE
    )
    artifact_bytes = 0
    if artifacts.loading_file is not None:
        artifact_bytes += artifacts.loading_file.size_bytes
    if artifacts.reap_ws_file is not None:
        artifact_bytes += artifacts.reap_ws_file.size_bytes
    return SnapshotBundle(
        function=artifacts.profile.name,
        memory_bytes=memory_bytes,
        artifact_bytes=artifact_bytes,
        created_us=now_us,
        last_used_us=now_us,
    )


@dataclass
class StorageStats:
    """Counters for capacity planning."""

    admitted: int = 0
    rejected_infrequent: int = 0
    evictions: int = 0
    evicted_bytes: int = 0


class SnapshotStorageManager:
    """Quota-enforcing registry of snapshot bundles."""

    def __init__(
        self,
        quota_bytes: int,
        min_invocations_per_hour: float = 0.0,
    ):
        """``min_invocations_per_hour`` below which a function is not
        worth snapshotting (0 admits everything)."""
        if quota_bytes <= 0:
            raise ValueError("quota must be positive")
        self.quota_bytes = quota_bytes
        self.min_invocations_per_hour = min_invocations_per_hour
        self._bundles: Dict[str, SnapshotBundle] = {}
        self.stats = StorageStats()

    @property
    def stored_bytes(self) -> int:
        return sum(b.total_bytes for b in self._bundles.values())

    @property
    def stored_functions(self) -> List[str]:
        return sorted(self._bundles)

    def has_snapshot(self, function: str) -> bool:
        return function in self._bundles

    def get(self, function: str) -> Optional[SnapshotBundle]:
        return self._bundles.get(function)

    def should_snapshot(self, invocations_per_hour: float) -> bool:
        """Policy gate: is this function frequent enough to justify
        the storage (§7.2)?"""
        return invocations_per_hour >= self.min_invocations_per_hour

    def admit(
        self,
        bundle: SnapshotBundle,
        invocations_per_hour: float = float("inf"),
    ) -> bool:
        """Store ``bundle``, evicting LRU bundles to fit the quota.

        Returns False (and stores nothing) when the function is too
        infrequent or the bundle alone exceeds the quota.
        """
        if not self.should_snapshot(invocations_per_hour):
            self.stats.rejected_infrequent += 1
            return False
        if bundle.total_bytes > self.quota_bytes:
            return False
        existing = self._bundles.pop(bundle.function, None)
        self._evict_until_fits(bundle.total_bytes)
        self._bundles[bundle.function] = bundle
        if existing is None:
            self.stats.admitted += 1
        return True

    def touch(self, function: str, now_us: float) -> None:
        """Record a snapshot-served invocation (refreshes LRU)."""
        bundle = self._bundles.get(function)
        if bundle is None:
            raise KeyError(f"no snapshot stored for {function!r}")
        bundle.last_used_us = now_us
        bundle.invocations += 1

    def evict(self, function: str) -> SnapshotBundle:
        """Explicitly drop a function's snapshot."""
        bundle = self._bundles.pop(function, None)
        if bundle is None:
            raise KeyError(f"no snapshot stored for {function!r}")
        self.stats.evictions += 1
        self.stats.evicted_bytes += bundle.total_bytes
        return bundle

    def _evict_until_fits(self, incoming_bytes: int) -> None:
        while (
            self._bundles
            and self.stored_bytes + incoming_bytes > self.quota_bytes
        ):
            victim = min(
                self._bundles.values(), key=lambda b: b.last_used_us
            )
            self.evict(victim.function)
