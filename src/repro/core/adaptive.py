"""Adaptive re-recording under working-set drift.

FaaSnap tolerates working-set change better than REAP, but any
recorded set goes stale if inputs keep drifting (paper §6.3 shows the
benefit shrinking as test inputs grow past the recorded ones; §7.2
notes snapshots should follow the workload). This module closes the
loop: watch the *slow-fault fraction* of each invocation — the pages
that had to block on disk or user-level handling because the loading
set missed them — and re-run the record phase with the current input
once it crosses a threshold.

Re-recording costs one slower invocation's worth of daemon work off
the critical path (the record phase is unmeasured in the paper's
methodology, and here it reuses the normal pipeline), in exchange for
restoring the prefetch hit rate for the drifted workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.daemon import FaaSnapPlatform, FunctionHandle
from repro.core.policies import Policy
from repro.core.restore import InvocationResult
from repro.host.fault import FaultKind
from repro.workloads.base import INPUT_A, InputSpec


def slow_fault_fraction(result: InvocationResult) -> float:
    """Fraction of this invocation's faults that took the slow path
    (blocking majors or user-level userfaultfd handling)."""
    total = result.fault_count()
    if total == 0:
        return 0.0
    slow = result.fault_count(FaultKind.MAJOR) + result.fault_count(
        FaultKind.UFFD
    )
    return slow / total


def slow_fault_count(result: InvocationResult) -> int:
    """Slow-path faults of one invocation: blocking majors plus
    user-level userfaultfd faults. The drift signal — fast anonymous
    and minor faults dilute the *fraction*, but every slow fault is
    ~100 us of avoidable stall, so the absolute count tracks how far
    the workload has moved past the recorded set."""
    return result.fault_count(FaultKind.MAJOR) + result.fault_count(
        FaultKind.UFFD
    )


@dataclass(frozen=True)
class AdaptiveConfig:
    """When to consider a snapshot stale."""

    #: Re-record once an invocation takes more slow faults than this
    #: (256 pages = 1 MB of missed working set at ~100 us each).
    stale_slow_faults: int = 256
    #: Back-off: minimum invocations between re-records.
    min_invocations_between_records: int = 2

    def __post_init__(self) -> None:
        if self.stale_slow_faults < 1:
            raise ValueError("stale_slow_faults must be >= 1")
        if self.min_invocations_between_records < 1:
            raise ValueError("back-off must be >= 1 invocation")


@dataclass
class AdaptiveStats:
    invocations: int = 0
    re_records: int = 0
    slow_counts: List[int] = field(default_factory=list)


class AdaptiveSnapshotManager:
    """Per-function controller that refreshes stale snapshots."""

    def __init__(
        self,
        platform: FaaSnapPlatform,
        function: FunctionHandle,
        policy: Policy = Policy.FAASNAP,
        config: Optional[AdaptiveConfig] = None,
        initial_record_input: InputSpec = INPUT_A,
    ):
        if not policy.needs_record_phase:
            raise ValueError(
                f"{policy.value} has no working set to adapt"
            )
        self.platform = platform
        self.function = function
        self.policy = policy
        self.config = config or AdaptiveConfig()
        self.record_input = initial_record_input
        self.stats = AdaptiveStats()
        self._since_last_record = 0

    def invoke(self, test_input: InputSpec) -> Tuple[InvocationResult, bool]:
        """Serve one invocation; returns ``(result, re_recorded)``.

        If the invocation's slow-fault fraction crossed the staleness
        threshold (and the back-off allows), the *next* invocation
        will use artefacts re-recorded with this input.
        """
        result = self.platform.invoke(
            self.function,
            test_input,
            self.policy,
            record_input=self.record_input,
        )
        slow = slow_fault_count(result)
        self.stats.invocations += 1
        self.stats.slow_counts.append(slow)
        self._since_last_record += 1

        re_recorded = False
        stale = slow > self.config.stale_slow_faults
        backed_off = (
            self._since_last_record
            < self.config.min_invocations_between_records
        )
        if stale and not backed_off:
            # Refresh with the input that exposed the drift; the
            # record phase runs through the normal (cached) pipeline.
            self.record_input = test_input
            self.platform.ensure_record(
                self.function, self.record_input, self.policy
            )
            self.stats.re_records += 1
            self._since_last_record = 0
            re_recorded = True
        return result, re_recorded
