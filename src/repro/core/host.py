"""One simulated machine: the state a FaaSnap daemon instance owns.

Historically :class:`~repro.core.daemon.FaaSnapPlatform` hard-wired a
single host's hardware and OS state — the simulation
:class:`~repro.sim.Environment`, the
:class:`~repro.host.page_cache.PageCache`, the snapshot
:class:`~repro.storage.device.BlockDevice` and
:class:`~repro.storage.filestore.FileStore`, and the record-artifact
cache — directly into the platform object. :class:`Host` extracts all
of it into a reusable unit so that:

* the single-host platform keeps exactly its old behaviour by owning
  one ``Host`` with a private clock, and
* the :mod:`repro.cluster` subsystem can instantiate N hosts *sharing
  one virtual clock*, each with its own device, page cache and
  record-artifact cache — which is what makes restore contention and
  warm page-cache reuse emergent at fleet scale instead of being
  summarised by a static cost table.

A ``Host`` deliberately does **not** own an event loop: it attaches to
an :class:`~repro.sim.Environment` given at construction, and its
record/invocation helpers return *process generators* for the caller
to schedule, so any number of hosts compose on one timeline.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.policies import Policy
from repro.core.restore import (
    InvocationResult,
    PlatformConfig,
    RecordArtifacts,
    artifact_file_names,
    invocation_process,
    run_record_phase,
)
from repro.host.page_cache import PageCache
from repro.sim import Environment, Event, Resource
from repro.storage.device import BlockDevice
from repro.storage.filestore import FileStore
from repro.storage.presets import EBS_IO2, NVME_LOCAL
from repro.workloads.base import InputSpec, WorkloadProfile

#: Cache key of one record phase: (function name, record-input content
#: id, record-input size ratio, sanitize family).
ArtifactKey = Tuple[str, int, float, bool]


class Host:
    """A simulated host: devices, file store, page cache, CPU slots,
    and the cache of record-phase artefacts produced on this host."""

    def __init__(
        self,
        env: Environment,
        config: Optional[PlatformConfig] = None,
        host_id: str = "host0",
        remote_storage: bool = False,
        store: Optional[FileStore] = None,
    ):
        """Attach a host to ``env``.

        ``store`` injects a snapshot file store shared with other
        hosts (the cluster's shared-EBS tier); by default the host
        gets its own device and store (its local NVMe). The page
        cache is always per host — a shared store models shared
        *storage*, not shared *memory*.
        """
        self.env = env
        self.host_id = host_id
        config = config or PlatformConfig()
        if remote_storage:
            config = dataclasses.replace(config, device=EBS_IO2)
        self.config = config
        if store is not None:
            self.store = store
            self.device = store.device
        else:
            self.device = BlockDevice(
                env, config.device, metrics_prefix=f"{host_id}.device"
            )
            self.store = FileStore(env, self.device)
        if config.tiered_storage:
            # Small derived files (loading sets, working sets) stay on
            # a local NVMe SSD while the big memory files live on the
            # primary (usually remote) device (§7.2).
            self.local_device: Optional[BlockDevice] = BlockDevice(
                env, NVME_LOCAL, metrics_prefix=f"{host_id}.local_device"
            )
            self.artifact_store: FileStore = FileStore(env, self.local_device)
        else:
            self.local_device = None
            self.artifact_store = self.store
        self.cache = PageCache(env, metrics_root=host_id)
        self.cpu = (
            Resource(env, config.cpu_slots)
            if config.cpu_slots is not None
            else None
        )
        self._artifacts: Dict[ArtifactKey, RecordArtifacts] = {}
        self._tags = itertools.count()
        #: Crash state (fault injection): a crashed host serves
        #: nothing until rebooted. Snapshot artefacts live on durable
        #: storage and survive; the page cache does not.
        self.crashed = False
        self.crash_count = 0
        registry = getattr(env, "metrics", None)
        if registry is not None and self.cache.metrics_root is not None:
            registry.gauge(
                f"{self.cache.metrics_root}.artifact_cache.entries",
                lambda: len(self._artifacts),
            )

    # -- tags and artifact cache ---------------------------------------

    def next_tag(self) -> int:
        """Monotonic per-host counter for unique file/process names."""
        return next(self._tags)

    @staticmethod
    def artifact_key(
        profile_name: str, record_input: InputSpec, sanitize: bool
    ) -> ArtifactKey:
        return (
            profile_name,
            record_input.content_id,
            record_input.size_ratio,
            sanitize,
        )

    def cached_artifacts(
        self, profile_name: str, record_input: InputSpec, policy: Policy
    ) -> Optional[RecordArtifacts]:
        """Already-recorded artefacts matching ``policy``, if any."""
        key = self.artifact_key(
            profile_name, record_input, policy.is_faasnap_family
        )
        return self._artifacts.get(key)

    def adopt_artifacts(
        self, record_input: InputSpec, artifacts: RecordArtifacts
    ) -> None:
        """Register artefacts recorded elsewhere (a shared snapshot
        store lets every host restore files another host recorded)."""
        key = self.artifact_key(
            artifacts.profile.name, record_input, artifacts.sanitize
        )
        self._artifacts[key] = artifacts

    # -- record phase --------------------------------------------------

    def record_process(
        self,
        profile: WorkloadProfile,
        record_input: InputSpec,
        policy: Policy,
        wipe_pages: Sequence[int] = (),
    ) -> Generator[Event, Any, RecordArtifacts]:
        """Process generator: run (or reuse) the record phase matching
        ``policy`` on this host. FaaSnap-family policies record with
        mincore tracking and freed-page sanitization; the others share
        a plain record. The result is cached per
        :meth:`artifact_key`, exactly like the paper's two-phase
        methodology (§6.1) caches record artefacts per function."""
        sanitize = policy.is_faasnap_family
        key = self.artifact_key(profile.name, record_input, sanitize)
        cached = self._artifacts.get(key)
        if cached is not None:
            return cached
        tag = (
            f"{profile.name}.{'fs' if sanitize else 'std'}.{self.next_tag()}"
        )
        artifacts = yield from run_record_phase(
            self.env,
            self.config,
            self.store,
            self.cache,
            profile,
            record_input,
            sanitize,
            tag,
            wipe_pages=wipe_pages,
            artifact_store=self.artifact_store,
        )
        self._artifacts[key] = artifacts
        return artifacts

    # -- invocation ----------------------------------------------------

    def invocation(
        self,
        artifacts: RecordArtifacts,
        test_input: InputSpec,
        policy: Policy,
        loader_gate: Optional[set] = None,
        tracer=None,
        tag: Optional[str] = None,
    ) -> Generator[Event, Any, InvocationResult]:
        """Process generator: one test-phase invocation on this host's
        device, cache and CPU slots."""
        if tag is None:
            tag = (
                f"{artifacts.profile.name}.{policy.value}.{self.next_tag()}"
            )
        return invocation_process(
            self.env,
            self.config,
            self.store,
            self.cache,
            self.cpu,
            artifacts,
            test_input,
            policy,
            tag,
            loader_gate=loader_gate,
            tracer=tracer,
        )

    # -- crash lifecycle -----------------------------------------------

    def crash(self) -> None:
        """Power-fail the host: volatile state (page cache, readahead
        window) is lost immediately. Device counters survive — they
        model the run's accounting, not on-host RAM — and so do the
        snapshot files and record-artefact index, which live on
        durable storage. The *caller* (scheduler / injector) is
        responsible for aborting in-flight work and discarding
        keep-alive VMs, which are scheduler-owned state."""
        self.crashed = True
        self.crash_count += 1
        self.cache.drop_all()
        self.device.reset_readahead()
        if self.local_device is not None:
            self.local_device.reset_readahead()

    def reboot(self) -> None:
        """Bring a crashed host back with cold caches."""
        if not self.crashed:
            raise RuntimeError(f"reboot() of a running host {self.host_id}")
        self.crashed = False

    # -- housekeeping --------------------------------------------------

    def drop_caches(self) -> None:
        """Evict the whole page cache and reset device counters and
        readahead state (``echo 3 > /proc/sys/vm/drop_caches`` between
        tests, §6.1)."""
        self.cache.drop_all()
        self.device.reset_stats()
        self.device.reset_readahead()
        if self.local_device is not None:
            self.local_device.reset_stats()
            self.local_device.reset_readahead()

    def drop_function_caches(self, artifacts: RecordArtifacts) -> None:
        """Evict one function's snapshot/working-set pages and reset
        the readahead detector — the per-function equivalent of the
        between-tests ``drop_caches``, used by the cluster scheduler
        to reproduce the cost model's cold-cache methodology for a
        function that has not run recently, without disturbing other
        functions' resident pages. Pending reads are unaffected."""
        for name in artifact_file_names(artifacts):
            self.cache.drop_file(name)
        self.device.reset_readahead()
        if self.local_device is not None:
            self.local_device.reset_readahead()

    def function_file_names(self, artifacts: RecordArtifacts) -> List[str]:
        return artifact_file_names(artifacts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.host_id} on {self.device.spec.name}>"
