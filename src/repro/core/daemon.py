"""The FaaSnap daemon / platform — the library's public entry point.

Mirrors the role of the FaaSnap daemon in the paper (§4.1, Figure 3):
it owns the VM images, snapshot and working-set files, the page cache
and disk, manages VM lifecycles, and serves invocation requests. Here
the "cluster" is a single simulated host, and the remote clients are
your Python code:

    from repro.core import FaaSnapPlatform, Policy
    from repro.workloads import get_profile
    from repro.workloads.base import INPUT_A

    platform = FaaSnapPlatform()
    fn = platform.register_function(get_profile("json"))
    result = platform.invoke(fn, INPUT_A, Policy.FAASNAP)
    print(result.total_ms)

All per-machine state (device, file store, page cache, CPU slots,
record-artifact cache) lives in a :class:`~repro.core.host.Host`; the
platform owns exactly one host with a private clock and adds the
function registry and the record/test-phase orchestration on top.
Multi-host serving — N hosts on one shared clock, with placement and
contention — is :mod:`repro.cluster`, built from the same ``Host``.

Record phases run lazily: the first invocation of a (function,
record-input, policy-family) combination performs the record phase
and caches its artefacts, exactly like the paper's two-phase
methodology (§6.1). The page cache is dropped before each measured
invocation, as the paper does.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.host import Host
from repro.core.policies import Policy
from repro.core.restore import (
    InvocationResult,
    PlatformConfig,
    RecordArtifacts,
)
from repro.sim import Environment
from repro.workloads.base import INPUT_A, InputSpec, WorkloadProfile
from repro.workloads.registry import get_profile


@dataclass(frozen=True)
class FunctionHandle:
    """A registered function."""

    name: str
    profile: WorkloadProfile
    #: Guest pages wiped (zeroed) in every snapshot of this function —
    #: the MADV_WIPEONSUSPEND mitigation for secrets like PRNG state
    #: (paper §7.4).
    wipe_pages: Tuple[int, ...] = ()


class FaaSnapPlatform:
    """One simulated FaaS host with a policy-switchable restore path."""

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        remote_storage: bool = False,
    ):
        self.host = Host(
            Environment(), config=config, remote_storage=remote_storage
        )
        self._functions: Dict[str, FunctionHandle] = {}

    # -- host delegation ---------------------------------------------------
    # The per-machine state was extracted into Host; these aliases keep
    # the platform's public surface (and a lot of test plumbing) stable.

    @property
    def config(self) -> PlatformConfig:
        return self.host.config

    @property
    def env(self) -> Environment:
        return self.host.env

    @property
    def metrics(self):
        """The run's :class:`~repro.metrics.telemetry.MetricsRegistry`
        (owned by the host's environment)."""
        return self.host.env.metrics

    @property
    def device(self):
        return self.host.device

    @property
    def store(self):
        return self.host.store

    @property
    def local_device(self):
        return self.host.local_device

    @property
    def artifact_store(self):
        return self.host.artifact_store

    @property
    def cache(self):
        return self.host.cache

    @property
    def cpu(self):
        return self.host.cpu

    @property
    def _artifacts(self):
        return self.host._artifacts

    # -- functions -----------------------------------------------------

    def register_function(
        self,
        profile: Union[str, WorkloadProfile],
        wipe_pages: Tuple[int, ...] = (),
    ) -> FunctionHandle:
        """Register a function by profile (or by its Table 2 name).

        ``wipe_pages`` marks guest pages holding secrets; they are
        zeroed in every snapshot taken of this function (§7.4).
        """
        if isinstance(profile, str):
            profile = get_profile(profile)
        if profile.name in self._functions:
            raise ValueError(f"function {profile.name!r} already registered")
        handle = FunctionHandle(
            name=profile.name, profile=profile, wipe_pages=tuple(wipe_pages)
        )
        self._functions[profile.name] = handle
        return handle

    def function(self, name: str) -> FunctionHandle:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} is not registered") from None

    # -- record phase ----------------------------------------------------

    def ensure_record(
        self,
        function: FunctionHandle,
        record_input: InputSpec,
        policy: Policy,
    ) -> RecordArtifacts:
        """Run (or reuse) the record phase matching ``policy``.

        FaaSnap-family policies record with mincore tracking and
        freed-page sanitization; the others share a plain record.
        """
        cached = self.host.cached_artifacts(
            function.name, record_input, policy
        )
        if cached is not None:
            return cached
        process = self.env.process(
            self.host.record_process(
                function.profile,
                record_input,
                policy,
                wipe_pages=function.wipe_pages,
            ),
            name=f"record:{function.name}",
        )
        return self.env.run(until=process)

    # -- invocation -------------------------------------------------------

    def invoke(
        self,
        function: FunctionHandle,
        test_input: InputSpec = INPUT_A,
        policy: Policy = Policy.FAASNAP,
        record_input: Optional[InputSpec] = None,
        drop_caches: bool = True,
        tracer=None,
    ) -> InvocationResult:
        """One measured test-phase invocation.

        ``record_input`` defaults to input A (the paper records with A
        and tests with B or a scaled input; pass both to reproduce a
        specific figure cell). ``drop_caches`` reproduces the paper's
        methodology of evicting all snapshot files before each test.
        ``tracer`` (see :class:`repro.metrics.tracing.Tracer`) records
        a span tree of the invocation, the simulated equivalent of the
        artifact's Zipkin traces.
        """
        artifacts = self.ensure_record(
            function, record_input or INPUT_A, policy
        )
        if drop_caches:
            self.drop_caches()
        tag = f"{function.name}.{policy.value}.{self.host.next_tag()}"
        process = self.env.process(
            self.host.invocation(
                artifacts,
                test_input,
                policy,
                loader_gate=set(),
                tracer=tracer,
                tag=tag,
            ),
            name=f"invoke:{tag}",
        )
        return self.env.run(until=process)

    def invoke_burst(
        self,
        function: FunctionHandle,
        test_input: InputSpec,
        policy: Policy,
        parallelism: int,
        same_snapshot: bool = True,
        record_input: Optional[InputSpec] = None,
        drop_caches: bool = True,
        clones: Optional[List[FunctionHandle]] = None,
    ) -> List[InvocationResult]:
        """``parallelism`` simultaneous invocations (paper §6.6).

        With ``same_snapshot`` every VM restores the same snapshot
        (one bursty application); otherwise each VM gets its own
        clone of the function with its own snapshot files (many
        different applications bursting at once). Pass ``clones``
        (see :meth:`make_clones`) to reuse the clone functions — and
        their cached record phases — across several bursts.
        """
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        record_input = record_input or INPUT_A
        if same_snapshot:
            artifact_list = [
                self.ensure_record(function, record_input, policy)
            ] * parallelism
        else:
            if clones is None:
                clones = self.make_clones(function, parallelism)
            if len(clones) < parallelism:
                raise ValueError(
                    f"need {parallelism} clones, got {len(clones)}"
                )
            artifact_list = [
                self.ensure_record(clone, record_input, policy)
                for clone in clones[:parallelism]
            ]
        if drop_caches:
            self.drop_caches()
        loader_gate: set = set()
        processes = []
        for index, artifacts in enumerate(artifact_list):
            tag = (
                f"{function.name}.{policy.value}.burst{index}."
                f"{self.host.next_tag()}"
            )
            processes.append(
                self.env.process(
                    self.host.invocation(
                        artifacts,
                        test_input,
                        policy,
                        loader_gate=loader_gate,
                        tag=tag,
                    ),
                    name=f"invoke:{tag}",
                )
            )
        return self.env.run(until=self.env.all_of(processes))

    def make_clones(
        self, function: FunctionHandle, count: int
    ) -> List[FunctionHandle]:
        """Register ``count`` clones of ``function`` — distinct
        applications with identical behaviour but separate snapshot
        files, for different-snapshot bursts."""
        clones = []
        for _ in range(count):
            clone_name = f"{function.name}@clone{self.host.next_tag()}"
            clones.append(
                self.register_function(
                    dataclasses.replace(function.profile, name=clone_name)
                )
            )
        return clones

    # -- housekeeping -------------------------------------------------------

    def drop_caches(self) -> None:
        """Evict the whole page cache and reset device counters
        (``echo 3 > /proc/sys/vm/drop_caches`` between tests, §6.1)."""
        self.host.drop_caches()
