"""Loading sets: the compact prefetch unit of FaaSnap.

Paper §4.6-§4.7: the *loading set* is the working set minus its zero
pages (those will be served by anonymous mappings). Adjacent loading
regions separated by at most 32 pages are merged — the gap pages
(zero or non-working-set pages) are included, trading a little extra
data for far fewer mmap calls. The merged regions are then sorted by
(group number, address) and written to a compact *loading-set file*
whose layout matches that order, so the daemon loader reads it
strictly sequentially while populating pages scattered all over the
guest address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from repro.core.working_set import WorkingSetGroups
from repro.storage.filestore import FileStore, StoredFile
from repro.vm.snapshot import Snapshot

#: Paper §4.6: merge regions separated by at most 32 pages.
DEFAULT_MERGE_GAP_PAGES = 32


@dataclass(frozen=True)
class LoadingRegion:
    """A contiguous guest range backed by the loading-set file."""

    start: int
    npages: int
    group: int
    #: Page offset of this region inside the loading-set file.
    file_offset: int

    @property
    def end(self) -> int:
        return self.start + self.npages


@dataclass
class LoadingSet:
    """Ordered loading regions plus summary accounting."""

    #: Regions sorted by (group, start) — the file layout order.
    regions: List[LoadingRegion] = field(default_factory=list)
    #: Pages that are working-set-and-non-zero (before gap merging).
    essential_pages: int = 0
    #: Total pages across merged regions (essential + gap filler).
    total_pages: int = 0
    #: Number of regions before merging (paper: >1000 for hello-world).
    unmerged_region_count: int = 0

    @property
    def region_count(self) -> int:
        return len(self.regions)

    @property
    def gap_pages(self) -> int:
        """Extra pages pulled in by merging."""
        return self.total_pages - self.essential_pages

    @property
    def size_mb(self) -> float:
        return self.total_pages * 4096 / 1e6

    def covered_pages(self) -> Set[int]:
        """Every guest page mapped to the loading-set file."""
        covered: Set[int] = set()
        for region in self.regions:
            covered.update(range(region.start, region.end))
        return covered


def _runs(pages: List[int]) -> List[Tuple[int, int]]:
    """Maximal consecutive runs ``(start, npages)`` of sorted pages."""
    runs: List[Tuple[int, int]] = []
    if not pages:
        return runs
    start = prev = pages[0]
    for page in pages[1:]:
        if page == prev + 1:
            prev = page
            continue
        runs.append((start, prev - start + 1))
        start = prev = page
    runs.append((start, prev - start + 1))
    return runs


def _merge_runs(
    runs: List[Tuple[int, int]], merge_gap: int
) -> List[Tuple[int, int]]:
    """Merge runs whose separating gap is at most ``merge_gap`` pages,
    absorbing the gap pages (paper §4.6)."""
    merged: List[Tuple[int, int]] = []
    for start, npages in runs:
        if merged:
            prev_start, prev_npages = merged[-1]
            gap = start - (prev_start + prev_npages)
            if gap <= merge_gap:
                merged[-1] = (prev_start, start + npages - prev_start)
                continue
        merged.append((start, npages))
    return merged


def build_loading_set(
    working_set: WorkingSetGroups,
    nonzero_pages: Iterable[int],
    merge_gap: int = DEFAULT_MERGE_GAP_PAGES,
) -> LoadingSet:
    """Intersect the working set with the non-zero pages, merge, sort.

    The region's group number is the lowest group of any working-set
    page it contains (§4.5: "a region is also assigned a group number,
    which is the lowest group number of any page in the region").
    """
    if merge_gap < 0:
        raise ValueError("merge_gap must be >= 0")
    nonzero = set(nonzero_pages)
    loading_pages = sorted(p for p in working_set.pages if p in nonzero)
    raw_runs = _runs(loading_pages)
    merged = _merge_runs(raw_runs, merge_gap)

    regions: List[Tuple[int, int, int]] = []  # (group, start, npages)
    for start, npages in merged:
        group = min(
            working_set.group(p)
            for p in range(start, start + npages)
            if p in working_set
        )
        regions.append((group, start, npages))
    regions.sort()

    placed: List[LoadingRegion] = []
    offset = 0
    for group, start, npages in regions:
        placed.append(
            LoadingRegion(
                start=start, npages=npages, group=group, file_offset=offset
            )
        )
        offset += npages

    return LoadingSet(
        regions=placed,
        essential_pages=len(loading_pages),
        total_pages=offset,
        unmerged_region_count=len(raw_runs),
    )


def write_loading_set_file(
    store: FileStore, name: str, loading_set: LoadingSet, snapshot: Snapshot
) -> StoredFile:
    """Write the compact loading-set file.

    File page ``region.file_offset + i`` holds the contents of guest
    page ``region.start + i`` from the (post-record) snapshot. The
    file is dense (not sparse): gap pages are stored as real zero
    blocks so the loader's reads stay contiguous.
    """
    pages = {}
    for region in loading_set.regions:
        for i in range(region.npages):
            value = snapshot.page_value(region.start + i)
            if value != 0:
                pages[region.file_offset + i] = value
    return store.create(
        name, max(loading_set.total_pages, 1), pages=pages, sparse=False
    )
