"""The paper's benchmark functions as page-access trace generators.

FaaSnap never inspects function semantics — only the *page access
pattern* of the guest: which guest-physical pages an invocation
touches, in what order, how the set varies with input, what gets
allocated fresh and freed. Each function from the paper's Table 2 is
therefore modelled as a deterministic generator of
:class:`~repro.vm.vcpu.GuestAccess` traces, calibrated so that the
working-set sizes match Table 2 and warm execution times land in the
paper's ballpark.

Structure of a trace (see :mod:`repro.workloads.base`):

* **core** pages — runtime/interpreter pages touched by every
  invocation, scattered through guest-physical memory (fragmented by
  boot-time allocation), in an input-independent shuffled order;
* **variable** pages — a content-dependent sample from a larger pool
  of library/data pages, scaling with input size. This is what makes
  REAP's record-once working set go stale (§3, §6.3);
* **data** pages — sequential reads of long-lived data (read-list's
  512 MB list, recognition's model weights);
* **anonymous** pages — fresh heap allocations written during the
  invocation and (mostly) freed at its end, reused LIFO by the next
  invocation (§4.5's released set).
"""

from repro.workloads.base import (
    InputSpec,
    TracePair,
    WorkloadProfile,
    WorkloadTrace,
    build_layout,
    clean_snapshot_contents,
    generate_trace,
    generate_trace_pair,
)
from repro.workloads.registry import (
    BENCHMARK_FUNCTIONS,
    SYNTHETIC_FUNCTIONS,
    VARIABLE_INPUT_FUNCTIONS,
    get_profile,
    profile_names,
)

__all__ = [
    "BENCHMARK_FUNCTIONS",
    "InputSpec",
    "SYNTHETIC_FUNCTIONS",
    "TracePair",
    "VARIABLE_INPUT_FUNCTIONS",
    "WorkloadProfile",
    "WorkloadTrace",
    "build_layout",
    "clean_snapshot_contents",
    "generate_trace",
    "generate_trace_pair",
    "get_profile",
    "profile_names",
]
