"""The paper's Table 2 functions, calibrated.

Working-set sizes target Table 2 (input A and input B), and warm
compute times target the paper's Figures 1 and 8 ballparks. The
calibration tests in ``tests/test_workloads_calibration.py`` assert
the working sets stay within tolerance of Table 2.

Scaling exponents express how touched pages and compute grow with
*effective workload scale* (``InputSpec.size_ratio``): e.g. matmul's
compute grows superlinearly while its memory grows linearly, pyaes is
pure compute over a small buffer, ffmpeg's frame buffers dominate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadProfile

_PROFILES: Dict[str, WorkloadProfile] = {}


def _register(profile: WorkloadProfile) -> WorkloadProfile:
    if profile.name in _PROFILES:
        raise ValueError(f"duplicate profile {profile.name!r}")
    _PROFILES[profile.name] = profile
    return profile


HELLO_WORLD = _register(
    WorkloadProfile(
        name="hello-world",
        description="a minimal function replying with a 'hello' string",
        core_pages=2_900,
        var_base_pages=40,
        var_pool_pages=80,
        anon_base_pages=80,
        anon_free_fraction=0.9,
        compute_base_us=3_000.0,
        spread_factor=8.0,
        input_b_ratio=1.0,
        ws_a_mb=11.8,
        ws_b_mb=11.8,
    )
)

READ_LIST = _register(
    WorkloadProfile(
        name="read-list",
        description="read every page of a 512 MB resident Python list",
        core_pages=3_000,
        var_base_pages=300,
        var_pool_pages=600,
        data_pages=131_072,  # the 512 MB list
        data_read_pages=131_072,
        anon_base_pages=300,
        anon_free_fraction=0.9,
        compute_base_us=310_000.0,
        spread_factor=6.0,
        input_b_ratio=1.0,
        ws_a_mb=526.0,
        ws_b_mb=526.0,
    )
)

MMAP = _register(
    WorkloadProfile(
        name="mmap",
        description="mmap a 512 MB anonymous region and write every page",
        core_pages=3_000,
        var_base_pages=200,
        var_pool_pages=400,
        anon_base_pages=134_000,
        anon_free_fraction=1.0,  # the whole region is unmapped at exit
        compute_base_us=60_000.0,
        spread_factor=6.0,
        input_b_ratio=1.0,
        ws_a_mb=536.0,
        ws_b_mb=536.0,
    )
)

IMAGE = _register(
    WorkloadProfile(
        name="image",
        description="rotate a JPEG image (FunctionBench)",
        core_pages=2_200,
        var_base_pages=1_500,
        var_pool_pages=6_000,
        anon_base_pages=1_560,
        anon_free_fraction=0.85,
        compute_base_us=100_000.0,
        var_exp=1.2,
        compute_exp=0.8,
        spread_factor=6.0,
        input_b_ratio=2.0,
        ws_a_mb=20.6,
        ws_b_mb=32.6,
    )
)

JSON_FN = _register(
    WorkloadProfile(
        name="json",
        description="deserialise and serialise a JSON document",
        core_pages=2_700,
        var_base_pages=300,
        var_pool_pages=1_500,
        anon_base_pages=250,
        anon_free_fraction=0.9,
        compute_base_us=110_000.0,
        compute_exp=0.8,
        spread_factor=6.0,
        input_b_ratio=1.8,
        ws_a_mb=12.7,
        ws_b_mb=14.4,
    )
)

PYAES = _register(
    WorkloadProfile(
        name="pyaes",
        description="pure-Python AES encryption of a string",
        core_pages=2_600,
        var_base_pages=320,
        var_pool_pages=1_200,
        anon_base_pages=300,
        anon_free_fraction=0.9,
        compute_base_us=850_000.0,
        spread_factor=6.0,
        input_b_ratio=1.25,
        ws_a_mb=12.6,
        ws_b_mb=13.2,
    )
)

CHAMELEON = _register(
    WorkloadProfile(
        name="chameleon",
        description="render an HTML table with the Chameleon templating engine",
        core_pages=2_700,
        var_base_pages=1_200,
        var_pool_pages=5_000,
        anon_base_pages=1_960,
        anon_free_fraction=0.85,
        compute_base_us=320_000.0,
        spread_factor=6.0,
        input_b_ratio=1.18,
        ws_a_mb=22.9,
        ws_b_mb=25.1,
    )
)

MATMUL = _register(
    WorkloadProfile(
        name="matmul",
        description="dense matrix multiplication (numpy)",
        core_pages=3_000,
        var_base_pages=500,
        var_pool_pages=2_000,
        anon_base_pages=25_400,
        anon_free_fraction=0.9,
        compute_base_us=2_300_000.0,
        compute_exp=1.5,
        spread_factor=5.0,
        input_b_ratio=1.2,
        ws_a_mb=113.0,
        ws_b_mb=133.0,
    )
)

FFMPEG = _register(
    WorkloadProfile(
        name="ffmpeg",
        description="apply a grayscale filter to a 1-second 480p video",
        core_pages=3_200,
        var_base_pages=800,
        var_pool_pages=3_000,
        anon_base_pages=41_800,
        anon_free_fraction=0.92,
        compute_base_us=950_000.0,
        spread_factor=5.0,
        input_b_ratio=1.0,  # WS A and B are both ~178 MB in Table 2
        ws_a_mb=179.0,
        ws_b_mb=178.0,
    )
)

COMPRESSION = _register(
    WorkloadProfile(
        name="compression",
        description="compress a file (SeBS)",
        core_pages=2_700,
        var_base_pages=400,
        var_pool_pages=1_600,
        anon_base_pages=820,
        anon_free_fraction=0.9,
        compute_base_us=340_000.0,
        compute_exp=0.9,
        spread_factor=6.0,
        input_b_ratio=1.105,
        ws_a_mb=15.3,
        ws_b_mb=15.8,
    )
)

RECOGNITION = _register(
    WorkloadProfile(
        name="recognition",
        description="PyTorch ResNet-50 image recognition",
        core_pages=4_000,
        var_base_pages=1_500,
        var_pool_pages=6_000,
        data_pages=51_200,  # ~200 MB of resident model weights
        data_read_pages=51_200,
        anon_base_pages=2_160,
        anon_free_fraction=0.85,
        compute_base_us=1_300_000.0,
        compute_exp=0.7,
        spread_factor=5.0,
        input_b_ratio=1.28,
        ws_a_mb=230.0,
        ws_b_mb=234.0,
    )
)

PAGERANK = _register(
    WorkloadProfile(
        name="pagerank",
        description="igraph PageRank over a synthetic graph",
        core_pages=3_000,
        var_base_pages=600,
        var_pool_pages=2_400,
        anon_base_pages=23_000,
        anon_free_fraction=0.9,
        compute_base_us=1_000_000.0,
        compute_exp=1.2,
        spread_factor=5.0,
        input_b_ratio=1.11,
        ws_a_mb=104.0,
        ws_b_mb=114.0,
    )
)


#: The three synthetic functions (paper §3.1, Figure 7).
SYNTHETIC_FUNCTIONS: List[str] = ["hello-world", "read-list", "mmap"]

#: The nine variable-input benchmark functions (Figures 6 and 8).
VARIABLE_INPUT_FUNCTIONS: List[str] = [
    "json",
    "compression",
    "pyaes",
    "chameleon",
    "image",
    "recognition",
    "pagerank",
    "matmul",
    "ffmpeg",
]

#: Everything in Table 2.
BENCHMARK_FUNCTIONS: List[str] = SYNTHETIC_FUNCTIONS + VARIABLE_INPUT_FUNCTIONS


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by its paper name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown function {name!r}; known: {sorted(_PROFILES)}"
        ) from None


def profile_names() -> List[str]:
    return sorted(_PROFILES)
