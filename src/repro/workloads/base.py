"""Workload model: profiles, inputs, and trace generation.

A :class:`WorkloadProfile` describes a function's memory behaviour;
:func:`generate_trace` turns a profile plus an :class:`InputSpec` into
a deterministic guest access trace. :func:`generate_trace_pair`
produces the record-phase and test-phase traces together so the test
phase can reuse heap pages the record phase freed, exactly like a
guest kernel allocator would (§4.5's released set).

Page placement
--------------
Guest-physical pages of a long-running runtime are heavily fragmented
— objects allocated over boot and import time interleave — so the
pages an invocation touches are *scattered* through a wider span of
guest memory. The profile's ``spread_factor`` controls that density,
which in turn controls how effective the kernel's readahead is for
stock Firecracker (the paper's observation that on-demand paging
makes "small and scattered" disk reads, §2.4).

Access order
------------
Core pages are visited in a fixed pseudo-random order (the runtime's
startup path), variable pages in a content-seeded order, data pages
sequentially, anonymous pages in allocation order. Compute time is
spread across the trace with a startup slice, a processing slice and
a tail slice so that page faults interleave with computation the way
the loader race in concurrent paging requires (§4.2).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.vm.layout import DEFAULT_BOOT_PAGES, DEFAULT_GUEST_PAGES, GuestLayout
from repro.vm.vcpu import GuestAccess

#: Interleave granularity for the processing phase, in pages.
_CHUNK_PAGES = 64

#: Fraction of compute spent before (startup), during (processing),
#: and after (tail) the memory accesses.
_STARTUP_FRACTION = 0.15
_TAIL_FRACTION = 0.25


@dataclass(frozen=True)
class InputSpec:
    """One function input.

    ``content_id`` seeds *which* content-dependent pages get touched
    (two inputs of identical size still touch different page subsets,
    the paper's image-diff scenario). ``size_ratio`` scales the
    workload relative to the nominal input A (the paper's Figure 8
    sweeps this from 1/4 to 4).
    """

    content_id: int
    size_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.size_ratio <= 0:
            raise ValueError("size_ratio must be positive")


#: The paper's canonical inputs (Table 2): input A is the nominal
#: input; input B differs in both content and effective size.
INPUT_A = InputSpec(content_id=1, size_ratio=1.0)


@dataclass(frozen=True)
class WorkloadProfile:
    """Static memory/compute description of one benchmark function."""

    name: str
    description: str
    #: Runtime pages touched by every invocation, input-independent.
    core_pages: int
    #: Input-dependent pages touched at ratio 1.0 ...
    var_base_pages: int
    #: ... sampled from this larger pool of library/data pages.
    var_pool_pages: int
    #: Long-lived data region (pages), read sequentially ...
    data_pages: int = 0
    #: ... this many pages of it per invocation.
    data_read_pages: int = 0
    #: Fresh heap pages written at ratio 1.0.
    anon_base_pages: int = 0
    #: Fraction of them freed when the invocation ends.
    anon_free_fraction: float = 0.9
    #: Compute (think) time at ratio 1.0, microseconds.
    compute_base_us: float = 100_000.0
    #: Scaling exponents versus size_ratio.
    var_exp: float = 1.0
    anon_exp: float = 1.0
    compute_exp: float = 1.0
    #: Core+pool pages scatter over span = (core+pool) * spread_factor.
    spread_factor: float = 6.0
    #: Effective workload scale of the paper's input B (Table 2).
    input_b_ratio: float = 1.0
    #: Cold-start runtime initialisation (start interpreter, install
    #: function code, import libraries) after the kernel boots —
    #: "seconds to minutes" (§2.1). Used by cold-boot paths.
    runtime_init_us: float = 2_000_000.0
    #: Table 2 working-set targets, for calibration tests (MB).
    ws_a_mb: float = 0.0
    ws_b_mb: float = 0.0
    boot_pages: int = DEFAULT_BOOT_PAGES
    total_pages: int = DEFAULT_GUEST_PAGES

    def __post_init__(self) -> None:
        if self.core_pages <= 0:
            raise ValueError("core_pages must be positive")
        if self.var_base_pages > self.var_pool_pages:
            raise ValueError("var_base_pages cannot exceed the pool")
        if not 0.0 <= self.anon_free_fraction <= 1.0:
            raise ValueError("anon_free_fraction must be in [0, 1]")
        if self.data_read_pages > self.data_pages:
            raise ValueError("cannot read more data pages than exist")

    # -- derived sizes -------------------------------------------------

    @property
    def runtime_span_pages(self) -> int:
        """Span of the runtime region the core+pool pages scatter in."""
        populated = self.core_pages + self.var_pool_pages
        return max(populated, int(math.ceil(populated * self.spread_factor)))

    def var_pages_at(self, ratio: float) -> int:
        if self.var_base_pages == 0:
            return 0
        return min(
            self.var_pool_pages,
            max(0, int(round(self.var_base_pages * ratio**self.var_exp))),
        )

    def anon_pages_at(self, ratio: float) -> int:
        if self.anon_base_pages == 0:
            return 0
        return max(1, int(round(self.anon_base_pages * ratio**self.anon_exp)))

    def compute_us_at(self, ratio: float) -> float:
        return self.compute_base_us * ratio**self.compute_exp

    def input_b(self) -> InputSpec:
        """The paper's input B: different content, Table 2's size."""
        return InputSpec(content_id=2, size_ratio=self.input_b_ratio)


@dataclass
class WorkloadTrace:
    """One invocation's access trace plus its bookkeeping."""

    profile: WorkloadProfile
    input: InputSpec
    accesses: List[GuestAccess]
    #: Guest pages freed when the invocation finishes (released set).
    freed_pages: List[int]
    #: Heap allocation high-water mark, in heap-region offsets.
    heap_bump: int
    #: Final compute after the last access, microseconds.
    tail_think_us: float
    #: Memo of traces derived *from* this one (``prior=self``), keyed
    #: by ``(profile, input)`` — generation is deterministic, so the
    #: derived trace is a pure function of those. Living on the prior
    #: keeps the memo's lifetime tied to it.
    _derived: Dict[Any, "WorkloadTrace"] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def touched_pages(self) -> Set[int]:
        return {access.page for access in self.accesses}

    @property
    def working_set_pages(self) -> int:
        return len(self.touched_pages)

    @property
    def working_set_mb(self) -> float:
        return self.working_set_pages * 4096 / 1e6

    @property
    def total_think_us(self) -> float:
        return sum(a.think_us for a in self.accesses) + self.tail_think_us


@dataclass
class TracePair:
    """Record-phase and test-phase traces with shared heap state."""

    record: WorkloadTrace
    test: WorkloadTrace


def build_layout(profile: WorkloadProfile) -> GuestLayout:
    """The guest memory layout implied by a profile."""
    return GuestLayout(
        total_pages=profile.total_pages,
        boot_pages=profile.boot_pages,
        runtime_pages=profile.runtime_span_pages,
        data_pages=profile.data_pages,
    )


def _rng(*seed_parts: object) -> random.Random:
    """Deterministic RNG from stable string keys (independent of
    PYTHONHASHSEED)."""
    return random.Random("|".join(str(part) for part in seed_parts))


def content_token(page: int, content_id: int) -> int:
    """Nonzero content token for a write of input ``content_id`` to
    guest ``page``."""
    return (((page + 1) * 1_000_003 + content_id * 7_919) & 0x7FFFFFFF) | 1


#: Runtime pages cluster: library extents are contiguous runs with
#: small holes, and the clusters themselves scatter widely through
#: guest-physical memory (boot-time allocation fragments them).
_CLUSTER_SLOTS = 16
_CLUSTER_DENSITY = 0.875


def _placement(profile: WorkloadProfile) -> Dict[str, List[int]]:
    """Scatter core and pool pages over the runtime span in clusters.

    Deterministic per function name; the same placement is used for
    snapshot synthesis and trace generation so they agree on which
    guest pages hold runtime content. Pages sit in ~16-page clusters
    at ~75% density (a mapped library extent with a few untouched
    pages), and clusters scatter uniformly over the span — so
    readahead helps a little within a cluster but cross-cluster reads
    stay scattered, and loading-set merging absorbs intra-cluster
    holes without chaining distant clusters together (§4.6's "small
    amount of additional data").
    """
    span = profile.runtime_span_pages
    populated = profile.core_pages + profile.var_pool_pages
    pages_per_cluster = max(1, int(_CLUSTER_SLOTS * _CLUSTER_DENSITY))
    n_clusters = int(math.ceil(populated / pages_per_cluster))
    n_slots = span // _CLUSTER_SLOTS
    rng = _rng("placement", profile.name)

    offsets: List[int] = []
    if n_clusters >= n_slots:
        # Degenerate (spread close to 1): fall back to a dense prefix.
        offsets = list(range(populated))
    else:
        # Stratified placement: clusters spread evenly over the span
        # with bounded jitter, like library extents laid out over a
        # long-running address space. Bounded jitter keeps distinct
        # clusters farther apart than the loading-set merge gap, so
        # merging absorbs intra-cluster holes without chaining
        # unrelated clusters together.
        stride = n_slots / n_clusters
        jitter = max(0, int(stride * 0.2))
        remaining = populated
        for index in range(n_clusters):
            base = int(index * stride)
            if jitter:
                base = min(n_slots - 1, base + rng.randint(0, jitter))
            take = min(pages_per_cluster, remaining)
            inside = rng.sample(range(_CLUSTER_SLOTS), take)
            offsets.extend(base * _CLUSTER_SLOTS + o for o in inside)
            remaining -= take
            if remaining == 0:
                break

    rng.shuffle(offsets)
    return {
        "core": sorted(offsets[: profile.core_pages]),
        "pool": sorted(offsets[profile.core_pages :]),
    }


def runtime_resident_offsets(profile: WorkloadProfile) -> List[int]:
    """All populated (non-zero) offsets within the runtime span."""
    placement = _placement(profile)
    return sorted(placement["core"] + placement["pool"])


_CLEAN_CONTENTS_CACHE: Dict[WorkloadProfile, Dict[int, int]] = {}


def clean_snapshot_contents(profile: WorkloadProfile) -> Dict[int, int]:
    """Guest memory contents of the *clean* snapshot: the VM booted,
    runtime initialised and data loaded, but no invocation served yet
    (paper Figure 5, "restore clean snapshot").

    Non-zero pages: the whole boot region, every populated runtime
    page (core + pool: the interpreter and its imported libraries),
    and the data region. The heap is all zeros. Deterministic per
    profile, so the construction is memoised; a fresh copy is
    returned each call.
    """
    cached = _CLEAN_CONTENTS_CACHE.get(profile)
    if cached is not None:
        return dict(cached)
    layout = build_layout(profile)
    contents: Dict[int, int] = {}
    for offset in range(profile.boot_pages):
        page = layout.boot_page(offset)
        contents[page] = content_token(page, 0)
    for offset in runtime_resident_offsets(profile):
        page = layout.runtime_page(offset)
        contents[page] = content_token(page, 0)
    for offset in range(profile.data_pages):
        page = layout.data_page(offset)
        contents[page] = content_token(page, 0)
    _CLEAN_CONTENTS_CACHE[profile] = contents
    return dict(contents)


def _interleave_chunks(
    rng: random.Random, streams: Sequence[List[GuestAccess]]
) -> List[GuestAccess]:
    """Round-robin merge of access streams in chunks, modelling a
    function that alternates between reading libraries, reading data
    and writing buffers."""
    cursors = [0] * len(streams)
    merged: List[GuestAccess] = []
    active = [i for i, s in enumerate(streams) if s]
    while active:
        index = active[rng.randrange(len(active))] if len(active) > 1 else active[0]
        stream = streams[index]
        cursor = cursors[index]
        take = min(_CHUNK_PAGES, len(stream) - cursor)
        merged.extend(stream[cursor : cursor + take])
        cursors[index] = cursor + take
        if cursors[index] >= len(stream):
            active.remove(index)
    return merged


#: Memo of prior-less traces keyed by ``(profile, input)``. Trace
#: generation is deterministic and traces are treated as immutable by
#: every consumer, so repeated experiment cells share one object
#: instead of regenerating (and the key space — distinct workload ×
#: input pairs — is small).
_TRACE_CACHE: Dict[Tuple[WorkloadProfile, InputSpec], WorkloadTrace] = {}


def generate_trace(
    profile: WorkloadProfile,
    input_spec: InputSpec,
    prior: Optional[WorkloadTrace] = None,
) -> WorkloadTrace:
    """Build (or recall) the access trace of one invocation.

    ``prior`` is the previous invocation on the same VM image (the
    record phase): its freed heap pages are reused LIFO before fresh
    heap pages are drawn, and its heap high-water mark is where the
    bump allocator continues.
    """
    cache = _TRACE_CACHE if prior is None else prior._derived
    key = (profile, input_spec)
    trace = cache.get(key)
    if trace is None:
        trace = _generate_trace(profile, input_spec, prior)
        cache[key] = trace
    return trace


def _generate_trace(
    profile: WorkloadProfile,
    input_spec: InputSpec,
    prior: Optional[WorkloadTrace],
) -> WorkloadTrace:
    layout = build_layout(profile)
    placement = _placement(profile)
    ratio = input_spec.size_ratio

    # 1. Core pages: fixed startup order, input independent.
    core_order = list(placement["core"])
    _rng("core-order", profile.name).shuffle(core_order)
    core_accesses = [
        GuestAccess(page=layout.runtime_page(off)) for off in core_order
    ]

    # 2. Variable pages: content-seeded sample of the pool.
    n_var = profile.var_pages_at(ratio)
    var_rng = _rng("var", profile.name, input_spec.content_id, ratio)
    var_offsets = (
        var_rng.sample(placement["pool"], n_var) if n_var else []
    )
    var_accesses = [
        GuestAccess(page=layout.runtime_page(off)) for off in var_offsets
    ]

    # 3. Data pages: sequential scan (read-list, model weights).
    data_accesses = [
        GuestAccess(page=layout.data_page(off))
        for off in range(profile.data_read_pages)
    ]

    # 4. Anonymous heap: reuse freed pages first, then bump-allocate.
    # Freed ranges coalesce in the guest buddy allocator and are
    # handed back in ascending address order on the next allocation.
    n_anon = profile.anon_pages_at(ratio) if profile.anon_base_pages else 0
    n_anon = min(n_anon, layout.heap_pages)
    free_list = sorted(prior.freed_pages) if prior else []
    bump = prior.heap_bump if prior else 0
    anon_pages: List[int] = []
    for _ in range(n_anon):
        if free_list:
            anon_pages.append(free_list.pop(0))
        elif bump < layout.heap_pages:
            anon_pages.append(layout.heap_page(bump))
            bump += 1
        else:
            break
    anon_accesses = [
        GuestAccess(
            page=page,
            write=True,
            value=content_token(page, input_spec.content_id),
        )
        for page in anon_pages
    ]

    # Assemble: startup core pages, then interleaved processing.
    mix_rng = _rng("interleave", profile.name, input_spec.content_id, ratio)
    processing = _interleave_chunks(
        mix_rng, [var_accesses, data_accesses, anon_accesses]
    )
    accesses = core_accesses + processing

    # Distribute compute over the trace.
    compute = profile.compute_us_at(ratio)
    accesses = _spread_think_time(accesses, len(core_accesses), compute)
    tail = compute * _TAIL_FRACTION

    # Free a suffix of this invocation's allocations (transient
    # buffers die young; long-lived results survive into the
    # snapshot).
    n_keep = int(round(len(anon_pages) * (1.0 - profile.anon_free_fraction)))
    freed = anon_pages[n_keep:]

    return WorkloadTrace(
        profile=profile,
        input=input_spec,
        accesses=accesses,
        freed_pages=freed,
        heap_bump=bump,
        tail_think_us=tail,
    )


def _spread_think_time(
    accesses: List[GuestAccess], n_startup: int, compute_us: float
) -> List[GuestAccess]:
    """Attach per-access think time: a startup slice across the core
    accesses and a processing slice across the rest (the tail slice is
    carried separately on the trace)."""
    if not accesses:
        return accesses
    startup_budget = compute_us * _STARTUP_FRACTION
    processing_budget = compute_us * (1.0 - _STARTUP_FRACTION - _TAIL_FRACTION)
    n_processing = len(accesses) - n_startup
    startup_each = startup_budget / n_startup if n_startup else 0.0
    processing_each = (
        processing_budget / n_processing if n_processing else 0.0
    )
    out: List[GuestAccess] = []
    for index, access in enumerate(accesses):
        think = startup_each if index < n_startup else processing_each
        if n_processing == 0 and index == n_startup - 1:
            think += processing_budget
        out.append(
            GuestAccess(
                page=access.page,
                write=access.write,
                value=access.value,
                think_us=think,
            )
        )
    return out


def generate_trace_pair(
    profile: WorkloadProfile,
    record_input: InputSpec,
    test_input: InputSpec,
) -> TracePair:
    """Record-phase and test-phase traces with heap continuity."""
    record = generate_trace(profile, record_input)
    test = generate_trace(profile, test_input, prior=record)
    return TracePair(record=record, test=test)
