"""Unit tests for fleet workload synthesis."""

import pytest

from repro.fleet.workload import (
    ArrivalTrace,
    FleetFunction,
    US_PER_HOUR,
    US_PER_MINUTE,
    frequency_quantiles,
    generate_arrivals,
    synthesize_fleet,
)


def test_synthesize_fleet_basic():
    fleet = synthesize_fleet(50, seed=3)
    assert len(fleet) == 50
    assert len({f.name for f in fleet}) == 50
    for function in fleet:
        assert function.mean_interarrival_us > 0
        assert function.profile_name


def test_synthesize_fleet_deterministic():
    a = synthesize_fleet(20, seed=7)
    b = synthesize_fleet(20, seed=7)
    assert a == b
    c = synthesize_fleet(20, seed=8)
    assert a != c


def test_fleet_matches_azure_quantiles():
    """Paper §2.1: <50% of functions invoked hourly, <10% every
    minute — the quantiles the default bounds were solved for."""
    fleet = synthesize_fleet(4000, seed=1)
    quantiles = frequency_quantiles(fleet)
    assert 0.30 < quantiles["at_least_hourly"] < 0.55
    assert 0.02 < quantiles["at_least_minutely"] < 0.14


def test_synthesize_fleet_validation():
    with pytest.raises(ValueError):
        synthesize_fleet(0)
    with pytest.raises(ValueError):
        synthesize_fleet(5, hot_interarrival_us=100, cold_interarrival_us=50)


def test_generate_arrivals_sorted_and_bounded():
    fleet = synthesize_fleet(30, seed=2)
    trace = generate_arrivals(fleet, duration_us=2 * US_PER_HOUR, seed=2)
    times = [a.time_us for a in trace.arrivals]
    assert times == sorted(times)
    assert all(0 <= t < 2 * US_PER_HOUR for t in times)
    assert trace.duration_us == 2 * US_PER_HOUR


def test_generate_arrivals_rate_roughly_matches():
    fn = FleetFunction(
        name="f", profile_name="json", mean_interarrival_us=US_PER_MINUTE
    )
    trace = generate_arrivals([fn], duration_us=10 * US_PER_HOUR, seed=5)
    expected = 10 * 60
    assert expected * 0.7 < len(trace) < expected * 1.3


def test_generate_arrivals_deterministic():
    fleet = synthesize_fleet(10, seed=4)
    t1 = generate_arrivals(fleet, US_PER_HOUR, seed=9)
    t2 = generate_arrivals(fleet, US_PER_HOUR, seed=9)
    assert t1.arrivals == t2.arrivals


def test_generate_arrivals_validation():
    with pytest.raises(ValueError):
        generate_arrivals([], duration_us=0)


def test_per_function_counts():
    fleet = synthesize_fleet(5, seed=6)
    trace = generate_arrivals(fleet, 5 * US_PER_HOUR, seed=6)
    counts = trace.per_function_counts()
    assert sum(counts.values()) == len(trace)
