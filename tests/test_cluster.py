"""Tests for the contention-aware multi-host cluster scheduler."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    SNAPSHOT_TIERS,
)
from repro.cluster.placement import (
    HostView,
    LeastLoaded,
    RoundRobin,
    SnapshotLocality,
    make_placement,
)
from repro.core.policies import Policy
from repro.fleet.costs import CostModel
from repro.fleet.scheduler import StartKind
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction
from repro.metrics.tracing import Tracer

SECOND = 1_000_000.0


def fleet_of(*names):
    return [
        FleetFunction(
            name=name, profile_name=name.split("@")[0],
            mean_interarrival_us=SECOND,
        )
        for name in names
    ]


def trace_of(*arrivals):
    items = sorted(
        (Arrival(time_us=t, function=f) for t, f in arrivals),
        key=lambda a: (a.time_us, a.function),
    )
    return ArrivalTrace(
        arrivals=items, duration_us=max(a.time_us for a in items) + 1
    )


def burst(name, count):
    """``count`` distinct clones of ``name`` all arriving at t=0."""
    fleet = fleet_of(*(f"{name}@c{i}" for i in range(count)))
    return fleet, trace_of(*((0.0, f.name) for f in fleet))


# -- parity with the cost table ---------------------------------------


def test_uncontended_single_host_matches_cost_table():
    """One host, arrivals spaced apart: the page-level cluster must
    reproduce the cost-table latencies (cold / snapshot / warm) within
    1%, because the cost model measures exactly this situation."""
    costs = CostModel().costs("hello-world", Policy.FAASNAP)
    config = ClusterConfig(
        num_hosts=1,
        restore_policy=Policy.FAASNAP,
        keep_alive_ttl_us=18 * SECOND,
    )
    report = ClusterSimulator(fleet_of("hello-world"), config).run(
        trace_of(
            (0.0, "hello-world"),
            (30 * SECOND, "hello-world"),
            (45 * SECOND, "hello-world"),
        )
    )
    kinds = [s.kind for s in report.served]
    assert kinds == [StartKind.COLD, StartKind.SNAPSHOT, StartKind.WARM]
    expected = [costs.cold_us, costs.snapshot_us, costs.warm_us]
    for served, want in zip(report.served, expected):
        assert served.latency_us == pytest.approx(want, rel=0.01)


# -- emergent contention ----------------------------------------------


def test_concurrent_restores_contend_on_one_host():
    """Eight simultaneous snapshot starts on one NVMe host queue on
    its device: mean restore latency rises well above uncontended."""
    config = ClusterConfig(num_hosts=1, assume_snapshots_exist=True)

    single_fleet, single_trace = burst("json", 1)
    baseline = ClusterSimulator(single_fleet, config).run(single_trace)
    base_us = baseline.mean_latency_us()

    fleet, trace = burst("json", 8)
    report = ClusterSimulator(fleet, config).run(trace)
    assert all(s.kind is StartKind.SNAPSHOT for s in report.served)
    assert all(s.host == "host0" for s in report.served)
    assert report.mean_latency_us() > 1.1 * base_us


def test_spreading_over_hosts_relieves_contention():
    fleet, trace = burst("json", 8)
    one = ClusterSimulator(
        fleet, ClusterConfig(num_hosts=1, assume_snapshots_exist=True)
    ).run(trace)
    four = ClusterSimulator(
        fleet,
        ClusterConfig(
            num_hosts=4,
            placement="least-loaded",
            assume_snapshots_exist=True,
        ),
    ).run(trace)
    assert four.mean_latency_us() < one.mean_latency_us()
    # Same-instant arrivals must see each other's placements: the
    # burst spreads 2/2/2/2, not 8 on host0.
    assert [four.count_on(f"host{i}") for i in range(4)] == [2, 2, 2, 2]


def test_shared_ebs_tier_slower_than_local_nvme():
    """Concurrent restores across hosts: per-host NVMe devices stay
    uncontended, one shared EBS volume serialises them (Fig. 11)."""
    fleet, trace = burst("json", 4)

    def run_tier(tier):
        config = ClusterConfig(
            num_hosts=2,
            placement="least-loaded",
            snapshot_tier=tier,
            assume_snapshots_exist=True,
        )
        return ClusterSimulator(fleet, config).run(trace)

    nvme = run_tier("local-nvme")
    ebs = run_tier("shared-ebs")
    assert ebs.snapshot_tier == "shared-ebs"
    assert ebs.mean_latency_us() > nvme.mean_latency_us()


def test_warm_page_cache_reuse_between_restores():
    """With the cold-cache methodology disabled, a back-to-back
    restore of the same function hits still-resident pages and gets
    faster — emergent from the shared per-host page cache."""
    fleet = fleet_of("json")
    trace = trace_of((0.0, "json"), (5 * SECOND, "json"))

    def run_mode(cold_cache):
        config = ClusterConfig(
            num_hosts=1,
            keep_alive_ttl_us=0.0,  # force both starts to restore
            assume_snapshots_exist=True,
            cold_cache_between_runs=cold_cache,
        )
        return ClusterSimulator(fleet, config).run(trace)

    cold = run_mode(True)
    assert [s.kind for s in cold.served] == [StartKind.SNAPSHOT] * 2
    assert cold.served[1].latency_us == pytest.approx(
        cold.served[0].latency_us, rel=0.01
    )
    reuse = run_mode(False)
    # The second restore's reads all hit the page cache (device
    # traffic roughly halves) and its latency strictly drops; the gain
    # is a few percent because fault handling and guest compute — not
    # disk — dominate an uncontended NVMe restore.
    assert reuse.served[1].latency_us < 0.99 * reuse.served[0].latency_us
    assert (
        reuse.host_stats["host0"].device_bytes_read
        < 0.6 * cold.host_stats["host0"].device_bytes_read
    )


# -- scheduling semantics ---------------------------------------------


def test_admission_limit_queues_excess_arrivals():
    fleet, trace = burst("json", 2)
    config = ClusterConfig(
        num_hosts=1,
        max_concurrent_per_host=1,
        assume_snapshots_exist=True,
    )
    report = ClusterSimulator(fleet, config).run(trace)
    first, second = sorted(s.latency_us for s in report.served)
    # The second invocation waits for the first to finish.
    assert second > 1.9 * first
    assert report.host_stats["host0"].admission_wait_us > 0


def test_snapshots_disabled_every_start_is_cold():
    fleet = fleet_of("hello-world")
    config = ClusterConfig(
        num_hosts=1, snapshots_enabled=False, keep_alive_ttl_us=0.0
    )
    report = ClusterSimulator(fleet, config).run(
        trace_of((0.0, "hello-world"), (30 * SECOND, "hello-world"))
    )
    assert [s.kind for s in report.served] == [StartKind.COLD] * 2


def test_report_attributes_hosts_round_robin():
    fleet, trace = burst("hello-world", 4)
    config = ClusterConfig(
        num_hosts=2, placement="round-robin", assume_snapshots_exist=True
    )
    report = ClusterSimulator(fleet, config).run(trace)
    assert report.count_on("host0") == 2
    assert report.count_on("host1") == 2
    stats = report.host_stats
    assert stats["host0"].snapshot_starts == 2
    assert stats["host0"].device_requests > 0


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(num_hosts=0)
    with pytest.raises(ValueError):
        ClusterConfig(snapshot_tier="floppy")
    with pytest.raises(ValueError):
        ClusterConfig(max_concurrent_per_host=0)
    with pytest.raises(ValueError):
        ClusterSimulator(fleet_of("json", "json"), ClusterConfig())
    assert set(SNAPSHOT_TIERS) == {"local-nvme", "shared-ebs"}


# -- determinism ------------------------------------------------------


def test_repeated_runs_are_identical():
    fleet, trace = burst("json", 4)
    config = ClusterConfig(
        num_hosts=2, placement="least-loaded", assume_snapshots_exist=True
    )
    first = ClusterSimulator(fleet, config).run(trace)
    second = ClusterSimulator(fleet, config).run(trace)
    assert first.served == second.served
    assert first.host_stats == second.host_stats
    assert first.prep_us == second.prep_us


def test_fig10_cluster_results_independent_of_jobs():
    from repro.experiments import fig10_bursty

    kwargs = dict(parallelisms=(1, 4), host_counts=(1,))
    serial = fig10_bursty.run_cluster(jobs=1, **kwargs)
    parallel = fig10_bursty.run_cluster(jobs=2, **kwargs)
    assert serial.points == parallel.points


# -- tracing ----------------------------------------------------------


def test_cluster_trace_spans_tagged_with_host():
    fleet, trace = burst("json", 4)
    config = ClusterConfig(
        num_hosts=2, placement="round-robin", assume_snapshots_exist=True
    )
    tracer = Tracer()
    ClusterSimulator(fleet, config).run(trace, tracer=tracer)
    assert len(tracer.roots) == 4
    hosts = {span.tags["host"] for span in tracer.roots}
    assert hosts == {"host0", "host1"}


# -- placement policies (unit, on stub views) -------------------------


class StubHost(HostView):
    def __init__(self, index, load=0, warm=(), snapshots=()):
        self.index = index
        self._load = load
        self._warm = set(warm)
        self._snapshots = set(snapshots)

    @property
    def load(self):
        return self._load

    def has_idle_warm(self, function):
        return function in self._warm

    def has_snapshot_for(self, function):
        return function in self._snapshots


def test_round_robin_rotates():
    hosts = [StubHost(i) for i in range(3)]
    policy = RoundRobin()
    assert [policy.choose(hosts, "f") for _ in range(5)] == [0, 1, 2, 0, 1]


def test_least_loaded_breaks_ties_on_lowest_index():
    hosts = [StubHost(0, load=2), StubHost(1, load=1), StubHost(2, load=1)]
    assert LeastLoaded().choose(hosts, "f") == 1


def test_locality_prefers_warm_then_snapshot_then_load():
    policy = SnapshotLocality()
    hosts = [
        StubHost(0, load=0),
        StubHost(1, load=5, snapshots=("f",)),
        StubHost(2, load=9, warm=("f",), snapshots=("f",)),
    ]
    # An idle warm VM beats everything, even on the busiest host.
    assert policy.choose(hosts, "f") == 2
    # Without a warm VM, a host holding the snapshot wins.
    hosts[2]._warm.clear()
    assert policy.choose(hosts, "f") == 1
    # Unknown function: plain least-loaded.
    assert policy.choose(hosts, "g") == 0


def test_make_placement_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_placement("random")
