"""Unit tests for mincore and procfs helpers."""

import pytest

from repro.host import AddressSpace, HostParams, PageCache, Procfs
from repro.host.mincore import mincore_file, mincore_new_pages
from repro.sim import Environment


PARAMS = HostParams()


def run(env, gen):
    return env.run(until=env.process(gen))


def test_mincore_reports_present_pages():
    env = Environment()
    cache = PageCache(env)
    cache.insert("mem", 1)
    cache.insert("mem", 3)
    cache.insert("other", 2)

    vector = run(env, mincore_file(env, PARAMS, cache, "mem", 5))
    assert vector == [False, True, False, True, False]


def test_mincore_charges_scan_cost():
    env = Environment()
    cache = PageCache(env)
    run(env, mincore_file(env, PARAMS, cache, "mem", 1000))
    expected = PARAMS.mincore_base_us + 1000 * PARAMS.mincore_per_page_us
    assert env.now == pytest.approx(expected)


def test_mincore_does_not_perturb_lru():
    env = Environment()
    cache = PageCache(env, capacity_pages=2)
    cache.insert("mem", 0)
    cache.insert("mem", 1)
    run(env, mincore_file(env, PARAMS, cache, "mem", 2))
    cache.insert("mem", 2)  # must evict page 0, oldest by insertion
    assert not cache.peek("mem", 0)


def test_mincore_new_pages_incremental():
    env = Environment()
    cache = PageCache(env)
    seen = set()

    cache.insert("mem", 0)
    cache.insert("mem", 5)
    first = run(env, mincore_new_pages(env, PARAMS, cache, "mem", 10, seen))
    assert first == [0, 5]

    cache.insert("mem", 3)
    second = run(env, mincore_new_pages(env, PARAMS, cache, "mem", 10, seen))
    assert second == [3]

    third = run(env, mincore_new_pages(env, PARAMS, cache, "mem", 10, seen))
    assert third == []
    assert seen == {0, 3, 5}


def test_procfs_rss():
    env = Environment()
    space = AddressSpace(100)
    space.mmap_anonymous(0, 100)
    procfs = Procfs(env, PARAMS, space)

    def poll():
        rss = yield from procfs.rss_pages()
        return rss

    assert run(env, poll()) == 0
    space.install_pte(1, 1)
    space.install_pte(2, 1)
    assert run(env, poll()) == 2
    assert procfs.polls == 2
    assert env.now == pytest.approx(2 * PARAMS.procfs_poll_us)
