"""Unit tests for guest layout and snapshot artefacts."""

import pytest

from repro.host import AddressSpace
from repro.sim import Environment
from repro.storage import BlockDevice, DeviceSpec, FileStore
from repro.vm import GuestLayout, capture_memory_contents, create_snapshot
from repro.vm.layout import DEFAULT_GUEST_PAGES
from repro.vm.snapshot import VMSTATE_PAGES


@pytest.fixture
def store():
    env = Environment()
    device = BlockDevice(
        env, DeviceSpec("d", 100.0, 10.0, 1000.0, 1e6, queue_depth=4)
    )
    return FileStore(env, device)


# -- layout -----------------------------------------------------------


def test_default_layout_is_2gb():
    layout = GuestLayout()
    assert layout.total_pages == DEFAULT_GUEST_PAGES
    assert layout.total_pages * 4096 == 2 * 1024**3


def test_regions_are_contiguous_and_cover_memory():
    layout = GuestLayout(runtime_pages=1000, data_pages=2000)
    bounds = layout.region_bounds()
    assert bounds["boot"][0] == 0
    assert bounds["runtime"][0] == bounds["boot"][0] + bounds["boot"][1]
    assert bounds["data"][0] == bounds["runtime"][0] + bounds["runtime"][1]
    assert bounds["heap"][0] == bounds["data"][0] + bounds["data"][1]
    assert bounds["heap"][0] + bounds["heap"][1] == layout.total_pages


def test_region_addressing_roundtrip():
    layout = GuestLayout(runtime_pages=100, data_pages=50)
    assert layout.region_of(layout.boot_page(0)) == "boot"
    assert layout.region_of(layout.runtime_page(99)) == "runtime"
    assert layout.region_of(layout.data_page(0)) == "data"
    assert layout.region_of(layout.heap_page(0)) == "heap"


def test_region_offset_bounds_checked():
    layout = GuestLayout(runtime_pages=100, data_pages=0)
    with pytest.raises(ValueError):
        layout.runtime_page(100)
    with pytest.raises(ValueError):
        layout.data_page(0)
    with pytest.raises(ValueError):
        layout.region_of(layout.total_pages)


def test_oversized_layout_rejected():
    with pytest.raises(ValueError):
        GuestLayout(total_pages=1000, boot_pages=600, runtime_pages=500)


# -- snapshot ---------------------------------------------------------


def test_create_snapshot_files(store):
    snap = create_snapshot(store, "fn", 1000, {3: 30, 7: 70})
    assert snap.memory_file.num_pages == 1000
    assert snap.vmstate_file.num_pages == VMSTATE_PAGES
    assert snap.nonzero_pages() == [3, 7]
    assert snap.page_value(3) == 30
    assert snap.page_value(4) == 0
    assert snap.memory_file.sparse


def test_snapshot_drops_zero_contents(store):
    snap = create_snapshot(store, "fn", 100, {1: 0, 2: 5})
    assert snap.nonzero_pages() == [2]


def test_capture_contents_from_anonymous_space(store):
    space = AddressSpace(100)
    space.mmap_anonymous(0, 100)
    space.write_anon(4, 44)
    space.write_anon(5, 0)  # guest wrote zeros: stays zero
    contents = capture_memory_contents(space)
    assert contents == {4: 44}


def test_capture_contents_merges_file_backing_and_dirty_overlay(store):
    base = create_snapshot(store, "base", 100, {1: 10, 2: 20, 3: 30})
    space = AddressSpace(100)
    space.mmap_file(0, 100, base.memory_file, 0)
    space.write_anon(2, 99)  # dirtied by the invocation
    space.write_anon(3, 0)  # freed and sanitized
    space.write_anon(50, 500)  # fresh allocation... but file-backed CoW
    contents = capture_memory_contents(space, base=base)
    assert contents[1] == 10  # untouched: inherited from base
    assert contents[2] == 99  # dirty overlay wins
    assert 3 not in contents  # zeroed page dropped
    assert contents[50] == 500


def test_capture_contents_without_base_scans_mapped_files(store):
    base = create_snapshot(store, "base2", 100, {10: 1, 60: 6})
    space = AddressSpace(100)
    space.mmap_anonymous(0, 100)
    space.mmap_file(0, 50, base.memory_file, 0)  # covers file page 10 only
    contents = capture_memory_contents(space)
    assert contents == {10: 1}


def test_roundtrip_snapshot_of_captured_contents(store):
    base = create_snapshot(store, "gen0", 200, {i: i for i in range(1, 50)})
    space = AddressSpace(200)
    space.mmap_file(0, 200, base.memory_file, 0)
    space.write_anon(10, 1000)
    new = create_snapshot(
        store, "gen1", 200, capture_memory_contents(space, base=base)
    )
    assert new.page_value(10) == 1000
    assert new.page_value(20) == 20
    assert new.page_value(100) == 0
