"""Integration tests: the full platform across policies.

Uses a scaled-down profile so each invocation simulates in
milliseconds while exercising the identical code paths as the paper
benchmarks.
"""

import dataclasses

import pytest

from repro.core import FaaSnapPlatform, Policy
from repro.core.policies import ABLATION_POLICIES, MAIN_POLICIES
from repro.host.fault import FaultKind
from repro.workloads.base import INPUT_A, InputSpec, WorkloadProfile

TINY = WorkloadProfile(
    name="tiny",
    description="scaled-down function for integration tests",
    core_pages=400,
    var_base_pages=200,
    var_pool_pages=800,
    data_pages=300,
    data_read_pages=300,
    anon_base_pages=250,
    anon_free_fraction=0.9,
    compute_base_us=20_000.0,
    spread_factor=6.0,
    input_b_ratio=1.6,
    total_pages=32_768,
    boot_pages=2_048,
)

INPUT_B = TINY.input_b()


@pytest.fixture
def platform():
    return FaaSnapPlatform()


@pytest.fixture
def fn(platform):
    return platform.register_function(TINY)


def test_register_by_name(platform):
    handle = platform.register_function("hello-world")
    assert handle.name == "hello-world"
    assert platform.function("hello-world") is handle


def test_register_twice_rejected(platform, fn):
    with pytest.raises(ValueError):
        platform.register_function(TINY)


def test_unknown_function_lookup(platform):
    with pytest.raises(KeyError):
        platform.function("ghost")


@pytest.mark.parametrize("policy", MAIN_POLICIES + [Policy.WARM])
def test_invoke_returns_result(platform, fn, policy):
    result = platform.invoke(fn, INPUT_B, policy)
    assert result.policy is policy
    assert result.function == "tiny"
    assert result.invoke_us > 0
    assert result.total_us >= result.invoke_us


def test_warm_is_fastest_and_firecracker_slowest(platform, fn):
    totals = {
        policy: platform.invoke(fn, INPUT_B, policy).total_us
        for policy in MAIN_POLICIES + [Policy.WARM]
    }
    assert totals[Policy.WARM] == min(totals.values())
    assert totals[Policy.FIRECRACKER] == max(totals.values())


def test_faasnap_beats_firecracker_and_reap_on_changed_input(platform, fn):
    """The paper's headline claim (C1) on a changed input."""
    results = {
        policy: platform.invoke(fn, INPUT_B, policy).total_us
        for policy in MAIN_POLICIES
    }
    assert results[Policy.FAASNAP] < results[Policy.FIRECRACKER]
    assert results[Policy.FAASNAP] < results[Policy.REAP]


def test_record_artifacts_cached(platform, fn):
    first = platform.ensure_record(fn, INPUT_A, Policy.FAASNAP)
    second = platform.ensure_record(fn, INPUT_A, Policy.FAASNAP)
    assert first is second
    other = platform.ensure_record(fn, INPUT_A, Policy.REAP)
    assert other is not first
    assert not other.sanitize and first.sanitize


def test_faasnap_artifacts_have_loading_set(platform, fn):
    artifacts = platform.ensure_record(fn, INPUT_A, Policy.FAASNAP)
    assert artifacts.ws_groups is not None and len(artifacts.ws_groups) > 0
    assert artifacts.loading_set is not None
    assert artifacts.loading_file is not None
    assert artifacts.loading_set.region_count > 0
    assert artifacts.reap_ws is None


def test_reap_artifacts_have_working_set(platform, fn):
    artifacts = platform.ensure_record(fn, INPUT_A, Policy.REAP)
    assert artifacts.reap_ws is not None and len(artifacts.reap_ws) > 0
    assert artifacts.reap_ws_file is not None
    assert artifacts.ws_groups is None


def test_sanitize_zeroes_freed_pages_in_snapshot(platform, fn):
    sanitized = platform.ensure_record(fn, INPUT_A, Policy.FAASNAP)
    plain = platform.ensure_record(fn, INPUT_A, Policy.FIRECRACKER)
    freed = set(sanitized.record_trace.freed_pages)
    assert freed
    sanitized_nonzero = set(sanitized.warm_snapshot.nonzero_pages())
    plain_nonzero = set(plain.warm_snapshot.nonzero_pages())
    assert not (freed & sanitized_nonzero)  # released set zeroed
    assert freed <= plain_nonzero  # garbage survives without sanitize


def test_host_page_recording_includes_readahead_pages(platform, fn):
    """FaaSnap's working set is a superset of REAP's faulted pages
    intersected with file-resident pages (paper §4.4)."""
    faasnap = platform.ensure_record(fn, INPUT_A, Policy.FAASNAP)
    reap = platform.ensure_record(fn, INPUT_A, Policy.REAP)
    ws_pages = set(faasnap.ws_groups.pages)
    # REAP's set contains heap pages (not file-resident); compare only
    # pages that live in the clean memory file.
    clean_nonzero = set(faasnap.clean_snapshot.nonzero_pages())
    reap_file_pages = {
        p for p in reap.reap_ws.pages_in_fault_order if p in clean_nonzero
    }
    assert reap_file_pages <= ws_pages
    assert len(ws_pages) > len(reap_file_pages)  # readahead extras


@pytest.mark.parametrize("policy", MAIN_POLICIES)
def test_memory_integrity_every_policy(platform, fn, policy):
    """All pages the guest reads observe the snapshot's contents."""
    artifacts = platform.ensure_record(fn, INPUT_A, policy)
    platform.drop_caches()
    from repro.core.restore import invocation_process
    from repro.workloads.base import generate_trace

    snapshot = artifacts.warm_snapshot
    trace = generate_trace(TINY, INPUT_B, prior=artifacts.record_trace)
    read_pages = sorted(
        {a.page for a in trace.accesses if not a.write}
    )
    result = platform.invoke(fn, INPUT_B, policy)
    assert result.fault_count() > 0
    # Re-run manually to inspect the VM state afterwards.
    process = platform.env.process(
        invocation_process(
            platform.env,
            platform.config,
            platform.store,
            platform.cache,
            platform.cpu,
            artifacts,
            INPUT_B,
            policy,
            f"integrity.{policy.value}",
        )
    )
    platform.env.run(until=process)
    # The snapshot itself must still hold the recorded values.
    for page in read_pages[:200]:
        expected = snapshot.page_value(page)
        assert snapshot.memory_file.page_value(page) == expected


def test_mismatched_record_policy_rejected(platform, fn):
    from repro.core.restore import invocation_process

    artifacts = platform.ensure_record(fn, INPUT_A, Policy.FIRECRACKER)
    with pytest.raises(ValueError, match="sanitize"):
        gen = invocation_process(
            platform.env,
            platform.config,
            platform.store,
            platform.cache,
            platform.cpu,
            artifacts,
            INPUT_B,
            Policy.FAASNAP,
            "bad",
        )
        next(gen)


def test_ablation_ladder_improves_monotonically_in_fault_time(platform, fn):
    """Figure 9's direction: each added optimization lowers the page
    fault time versus stock Firecracker."""
    fault_times = {}
    for policy in ABLATION_POLICIES:
        result = platform.invoke(fn, INPUT_B, policy)
        fault_times[policy] = result.fault_time_us
    assert fault_times[Policy.FAASNAP] < fault_times[Policy.FIRECRACKER]
    assert (
        fault_times[Policy.FAASNAP_CONCURRENT]
        < fault_times[Policy.FIRECRACKER]
    )


def test_cached_has_no_major_faults(platform, fn):
    result = platform.invoke(fn, INPUT_B, Policy.CACHED)
    assert result.major_faults == 0
    assert result.fault_count(FaultKind.MINOR) > 0


def test_reap_uses_uffd_for_out_of_ws_faults(platform, fn):
    same = platform.invoke(fn, INPUT_A, Policy.REAP)
    changed = platform.invoke(fn, INPUT_B, Policy.REAP)
    assert changed.uffd_faults > same.uffd_faults
    assert changed.fetch_bytes > 0
    assert changed.setup_us > same.invoke_us * 0  # setup includes fetch
    assert changed.fetch_time_us > 0


def test_burst_same_snapshot(platform, fn):
    results = platform.invoke_burst(
        fn, INPUT_A, Policy.FAASNAP, parallelism=4, same_snapshot=True
    )
    assert len(results) == 4
    # The loading set is read once: only one VM reports fetch bytes.
    fetchers = [r for r in results if r.fetch_bytes > 0]
    assert len(fetchers) == 1


def test_burst_different_snapshots(platform, fn):
    results = platform.invoke_burst(
        fn, INPUT_A, Policy.FAASNAP, parallelism=3, same_snapshot=False
    )
    assert len(results) == 3
    # Every VM loads its own loading-set file.
    assert all(r.fetch_bytes > 0 for r in results)


def test_burst_parallelism_validated(platform, fn):
    with pytest.raises(ValueError):
        platform.invoke_burst(fn, INPUT_A, Policy.FAASNAP, parallelism=0)


def test_remote_storage_platform_slower(fn):
    local = FaaSnapPlatform()
    remote = FaaSnapPlatform(remote_storage=True)
    fn_l = local.register_function(TINY)
    fn_r = remote.register_function(TINY)
    t_local = local.invoke(fn_l, INPUT_B, Policy.FIRECRACKER).total_us
    t_remote = remote.invoke(fn_r, INPUT_B, Policy.FIRECRACKER).total_us
    assert t_remote > t_local


def test_cpu_contention_config():
    config = dataclasses.replace(
        FaaSnapPlatform().config, cpu_slots=2
    )
    platform = FaaSnapPlatform(config)
    assert platform.cpu is not None
    fn = platform.register_function(TINY)
    results = platform.invoke_burst(
        fn, INPUT_A, Policy.FAASNAP, parallelism=4
    )
    assert len(results) == 4


def test_results_deterministic():
    def run():
        platform = FaaSnapPlatform()
        fn = platform.register_function(TINY)
        return platform.invoke(fn, INPUT_B, Policy.FAASNAP).total_us

    assert run() == run()
