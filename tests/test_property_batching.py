"""Property-based tests for the fault fast-path batching.

The batched vCPU must be observationally equivalent to the per-event
path for *arbitrary* traces, not just the paper's workloads: same
fault records (bit-identical floats), same finish time, same final
address-space, page-cache and device state. Hypothesis drives random
mixes of file-backed reads/writes, anonymous touches, repeats and
think time through both paths and compares everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reap import make_reap_fault_handler
from repro.host import HostParams, PageCache
from repro.host.fault import FaultHandler
from repro.host.uffd import UserfaultfdManager
from repro.host.vma import AddressSpace
from repro.sim import Environment
from repro.storage import BlockDevice, DeviceSpec, FileStore
from repro.vm import create_snapshot
from repro.vm.vcpu import GuestAccess, VCpu

HOST = HostParams()

#: File-backed pages [0, FILE_PAGES) then anonymous pages up to TOTAL.
FILE_PAGES = 48
TOTAL_PAGES = 96


def _device(env):
    return BlockDevice(
        env, DeviceSpec("d", 100.0, 10.0, 1589.0, 285_000, queue_depth=16)
    )


def _build_file_backed(file_pages, sparse):
    env = Environment()
    store = FileStore(env, _device(env))
    cache = PageCache(env)
    file = store.create("mem", FILE_PAGES, pages=file_pages, sparse=sparse)
    space = AddressSpace(TOTAL_PAGES)
    space.mmap_file(0, FILE_PAGES, file, 0)
    space.mmap_anonymous(FILE_PAGES, TOTAL_PAGES - FILE_PAGES)
    handler = FaultHandler(env, HOST, cache, space)
    return env, handler, file.device


def _build_uffd(file_pages):
    env = Environment()
    store = FileStore(env, _device(env))
    cache = PageCache(env)
    snapshot = create_snapshot(store, "fn", FILE_PAGES, file_pages)
    space = AddressSpace(TOTAL_PAGES)
    uffd = UserfaultfdManager(env, HOST)
    uffd.register(
        0, FILE_PAGES, make_reap_fault_handler(env, HOST, cache, snapshot)
    )
    handler = FaultHandler(env, HOST, cache, space, uffd=uffd)
    handler.io_device = snapshot.memory_file.device
    return env, handler, snapshot.memory_file.device


def _observe(env, handler, device, result):
    """Everything the two paths must agree on."""
    space = handler.space
    return (
        result.started_us,
        result.finished_us,
        env.now,
        tuple(
            (
                r.kind,
                r.page,
                r.start_us,
                r.duration_us,
                r.block_requests,
                r.bytes_read,
            )
            for r in result.records
        ),
        sorted(space.pte.items()),
        sorted(space.anon_contents.items()),
        sorted(space.ept),
        sorted(handler.cache.resident_set()),
        device.stats.requests,
        device.stats.sequential_requests,
        device.stats.bytes_read,
        device.stats.busy_time_us,
        tuple(device.stats.per_request_sizes),
    )


def _trace(raw, page_limit):
    return [
        GuestAccess(
            page=page % page_limit,
            write=write,
            value=(page % page_limit) + 7 if write else None,
            think_us=think,
        )
        for page, write, think in raw
    ]


accesses = st.lists(
    st.tuples(
        st.integers(0, TOTAL_PAGES - 1),
        st.booleans(),
        st.sampled_from([0.0, 0.5, 3.25]),
    ),
    max_size=50,
)

file_contents = st.dictionaries(
    st.integers(0, FILE_PAGES - 1), st.integers(1, 9), max_size=FILE_PAGES
)


@settings(max_examples=60, deadline=None)
@given(file_contents, st.booleans(), accesses)
def test_batched_trace_matches_event_path(file_pages, sparse, raw):
    trace = _trace(raw, TOTAL_PAGES)
    seen = []
    for batch in (False, True):
        env, handler, device = _build_file_backed(file_pages, sparse)
        vcpu = VCpu(env, handler, batch_faults=batch)
        result = env.run(
            until=env.process(vcpu.run_trace(trace, tail_think_us=1.0))
        )
        seen.append(_observe(env, handler, device, result))
    assert seen[0] == seen[1]


@settings(max_examples=40, deadline=None)
@given(file_contents, accesses)
def test_batched_uffd_faults_match_event_path(file_pages, raw):
    # Every page is userfaultfd-registered (REAP's out-of-working-set
    # situation), exercising the synchronous delegation twin.
    trace = _trace(raw, FILE_PAGES)
    seen = []
    delegated = []
    for batch in (False, True):
        env, handler, device = _build_uffd(file_pages)
        vcpu = VCpu(env, handler, batch_faults=batch)
        result = env.run(
            until=env.process(vcpu.run_trace(trace, tail_think_us=1.0))
        )
        seen.append(_observe(env, handler, device, result))
        delegated.append(handler.uffd.delegated_faults)
    assert seen[0] == seen[1]
    assert delegated[0] == delegated[1]
