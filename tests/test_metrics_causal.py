"""End-to-end causal tracing: event canon, merge determinism, and
the cross-shard byte-identity contract under an armed fault plan.

The headline test is the ISSUE's satellite: a 4-host run with a
device brownout, a host crash + reboot, and a latent snapshot
corruption, traced at ``shards=1`` and ``shards=2``, must serialize
to byte-identical causal trace documents — and the document must
contain at least one invocation whose story combines a retry, a
redispatch, and a hedge pair.
"""

import json

import pytest

from repro.cluster import ClusterConfig, ClusterSimulator, ShardedClusterSimulator
from repro.faults import FaultPlan
from repro.faults.recovery import (
    HedgePolicy,
    HealthPolicy,
    RecoveryPolicy,
    RetryPolicy,
    SheddingPolicy,
)
from repro.fleet.workload import Arrival, ArrivalTrace, FleetFunction
from repro.metrics.causal import (
    CAUSAL_SCHEMA,
    CausalRecorder,
    CausalTracer,
    ROUTER_SRC,
    TraceContext,
    TraceEvent,
    find_invocations,
    invocation_kinds,
    render_invocation,
)


# -- primitives ---------------------------------------------------------


def test_recorder_stamps_monotone_sequence():
    rec = CausalRecorder(3)
    rec.emit(1, 10.0, "a")
    rec.emit(2, 5.0, "b")
    rec.emit(1, 20.0, "c")
    assert [(e.src, e.seq) for e in rec.events] == [(3, 0), (3, 1), (3, 2)]


def test_recorder_drain_clears_but_sequence_continues():
    rec = CausalRecorder(0)
    rec.emit(1, 1.0, "a")
    first = rec.drain()
    rec.emit(1, 2.0, "b")
    second = rec.drain()
    assert [e.seq for e in first] == [0]
    assert [e.seq for e in second] == [1]
    assert rec.events == []


def test_detail_is_key_sorted_and_canonical():
    rec = CausalRecorder(0)
    rec.emit(1, 1.0, "e", zebra=1, alpha="x", mid=[1, 2])
    (event,) = rec.events
    assert event.detail == (("alpha", "x"), ("mid", (1, 2)), ("zebra", 1))
    # Same kwargs in another order produce an equal event (same seq
    # position aside).
    other = CausalRecorder(0)
    other.emit(1, 1.0, "e", mid=(1, 2), alpha="x", zebra=1)
    assert other.events[0] == event


def test_detail_rejects_unpicklable_values():
    rec = CausalRecorder(0)
    with pytest.raises(TypeError):
        rec.emit(1, 1.0, "e", bad={"a": 1})


def test_event_field_names_usable_as_detail_keys():
    # ``kind=`` / ``t_us=`` as *detail* must not collide with the
    # emit signature (positional-only markers).
    rec = CausalRecorder(0)
    rec.emit(1, 1.0, "start", kind="warm", src="somewhere")
    assert rec.events[0].kind == "start"
    assert dict(rec.events[0].detail) == {"kind": "warm", "src": "somewhere"}


def test_trace_context_routes_to_recorder():
    rec = CausalRecorder(2)
    ctx = TraceContext(rec, inv_id=7)
    ctx.emit(3.0, "dispatch", host="host2")
    assert rec.events[0].inv_id == 7
    assert rec.events[0].src == 2


def test_document_merge_is_stable_across_emitter_packing():
    # The same per-source event streams fed to two tracers in
    # different interleavings must render identical documents.
    events = [
        TraceEvent(1, 5.0, 0, 0, "a"),
        TraceEvent(1, 5.0, ROUTER_SRC, 0, "b"),
        TraceEvent(1, 2.0, 1, 0, "c"),
        TraceEvent(2, 1.0, 0, 1, "d"),
    ]
    one = CausalTracer()
    one.register(1, "f0", 0.0)
    one.register(2, "f1", 0.5)
    one.extend(events)
    two = CausalTracer()
    two.register(2, "f1", 0.5)
    two.register(1, "f0", 0.0)
    for event in reversed(events):
        two.extend([event])
    assert one.to_json() == two.to_json()
    doc = one.document()
    assert doc["schema"] == CAUSAL_SCHEMA
    assert invocation_kinds(doc, 1) == ["c", "b", "a"]  # (t, src, seq)


def test_render_invocation_is_readable():
    tracer = CausalTracer()
    tracer.register(1, "f0", 0.0)
    tracer.extend([TraceEvent(1, 1500.0, ROUTER_SRC, 0, "route", (("host", "host1"),))])
    text = render_invocation(tracer.document(), 1)
    assert "[router] route host=host1" in text
    with pytest.raises(KeyError):
        render_invocation(tracer.document(), 99)


# -- the armed cross-shard byte-identity contract -----------------------


def _storm_inputs():
    fleet = [
        FleetFunction(name=f"f{i}", profile_name="json", mean_interarrival_us=1e6)
        for i in range(3)
    ]
    arrivals = [
        Arrival(time_us=i * 100_000.0, function=f"f{i % 3}") for i in range(80)
    ]
    trace = ArrivalTrace(arrivals=arrivals, duration_us=80 * 100_000.0)
    plan = FaultPlan.from_dict(
        {
            "device_faults": [
                {
                    "scope": "*",
                    "start_us": 500_000.0,
                    "duration_us": 6_000_000.0,
                    "latency_factor": 40.0,
                    "error_rate": 0.4,
                }
            ],
            "host_crashes": [
                {
                    "host": "host1",
                    "at_us": 1_000_000.0,
                    "reboot_after_us": 2_000_000.0,
                }
            ],
            "corruptions": [
                {"host": "host2", "function": "f0", "at_us": 200_000.0}
            ],
        }
    )
    recovery = RecoveryPolicy(
        retry=RetryPolicy(enabled=True),
        hedge=HedgePolicy(
            enabled=True, min_samples=1, floor_us=5_000.0, percentile=50.0
        ),
        health=HealthPolicy(enabled=True),
        shedding=SheddingPolicy(max_queue_depth=64, degraded_queue_depth=16),
        deadline_us=30_000_000.0,
    )
    config = ClusterConfig(num_hosts=4, seed=7, recovery=recovery)
    return fleet, trace, plan, config


def _traced_run(shards):
    fleet, trace, plan, config = _storm_inputs()
    causal = CausalTracer()
    simulator = ShardedClusterSimulator(fleet, config, shards=shards)
    report = simulator.run(trace, fault_plan=plan, causal=causal)
    return report, causal


def test_cross_shard_trace_merge_is_byte_identical_under_faults():
    report1, causal1 = _traced_run(shards=1)
    report2, causal2 = _traced_run(shards=2)
    assert report1.count() == report2.count() == 80
    assert causal1.to_json() == causal2.to_json()

    doc = causal1.document()
    # Every invocation routed is in the document with its story.
    assert len(doc["invocations"]) == 80
    assert all(inv["events"] for inv in doc["invocations"])
    # The storm exercised the whole vocabulary this test defends.
    kinds = {e["kind"] for inv in doc["invocations"] for e in inv["events"]}
    assert {
        "route",
        "dispatch",
        "attempt",
        "attempt-failed",
        "retry",
        "redispatch",
        "hedge",
        "hedge-cancelled",
        "outcome",
        "phase",
    } <= kinds
    # The satellite's combined story: at least one invocation whose
    # tree contains a failed attempt, a retry, a redispatch, AND a
    # hedge pair — one request surviving both fault and tail recovery.
    combined = find_invocations(doc, "retry", "redispatch", "hedge")
    assert combined, "no invocation combined retry + redispatch + hedge"
    story = invocation_kinds(doc, combined[0])
    assert story.index("attempt-failed") < story.index("retry")
    assert "hedge-cancelled" in story


def test_causal_trace_does_not_perturb_sharded_run():
    fleet, trace, plan, config = _storm_inputs()
    plain = ShardedClusterSimulator(fleet, config, shards=2).run(
        trace, fault_plan=plan
    )
    traced, _ = _traced_run(shards=2)
    assert [
        (s.function, s.time_us, round(s.latency_us, 6)) for s in plain.served
    ] == [
        (s.function, s.time_us, round(s.latency_us, 6)) for s in traced.served
    ]


def test_single_heap_causal_trace_round_trips_through_json():
    fleet, trace, plan, config = _storm_inputs()
    causal = CausalTracer()
    ClusterSimulator(fleet, config).run(trace, fault_plan=plan, causal=causal)
    doc = json.loads(causal.to_json())
    assert doc["schema"] == CAUSAL_SCHEMA
    assert len(doc["invocations"]) == 80
    # Single-heap mode has one emitter — the scheduler itself — so
    # every event carries the router src stamp.
    srcs = {e["src"] for inv in doc["invocations"] for e in inv["events"]}
    assert srcs == {ROUTER_SRC}
    kinds = {e["kind"] for inv in doc["invocations"] for e in inv["events"]}
    assert {"dispatch", "attempt", "retry", "outcome"} <= kinds
